//! Automatic content-summary generation (§4.3.2).
//!
//! "This data is automatically generated, is orders of magnitude smaller
//! than the original contents, and has proven useful in distinguishing
//! the more useful from the less useful sources for a given query." The
//! summary is generated straight from the inverted index: for each field
//! (or for the whole source when field qualification is off), the word
//! list with total postings and document frequency.
//!
//! The flags reflect the engine truthfully: if the engine stems its
//! index, the exported words *are* stems and `Stemming: T`; if the
//! engine eliminates stop words at index time, they are absent and
//! `StopWords: F` — the paper prefers unstemmed/case-preserved words "if
//! possible", and whether that is possible depends on the engine.

use std::collections::BTreeMap;

use starts_index::ANY_FIELD;
use starts_proto::summary::{ContentSummary, SummarySection, TermSummary};
use starts_text::CaseMode;

use crate::source::Source;

/// Generate the content summary for a source.
pub fn generate(source: &Source) -> ContentSummary {
    let engine = source.engine();
    let cfg = engine.analyzer().config();
    let mut sections = Vec::new();
    if source.config().summary_fields_qualified {
        // One section per concrete field, in schema order.
        for fid in engine.schema().concrete_fields() {
            let terms = collect_terms(engine, fid, source.config().summary_max_terms);
            if terms.is_empty() {
                continue;
            }
            let langs = engine.field_languages(fid);
            sections.push(SummarySection {
                field: Some(engine.schema().name(fid).to_string()),
                language: langs.first().cloned(),
                terms,
            });
        }
    } else {
        let terms = collect_terms(engine, ANY_FIELD, source.config().summary_max_terms);
        if !terms.is_empty() {
            sections.push(SummarySection {
                field: None,
                language: None,
                terms,
            });
        }
    }
    ContentSummary {
        stemmed: cfg.stem,
        // Words in the index never include the engine's stop words.
        stop_words_included: cfg.stop_words.is_empty(),
        case_sensitive: cfg.case == CaseMode::Sensitive,
        num_docs: engine.n_docs(),
        sections,
    }
}

fn collect_terms(
    engine: &starts_index::ShardedEngine,
    field: starts_index::FieldId,
    max_terms: usize,
) -> Vec<TermSummary> {
    // BTreeMap gives deterministic (sorted) export order. Shards hold
    // disjoint document subsets, so per-shard postings totals and
    // document frequencies add up to the collection-wide figures.
    let mut stats: BTreeMap<&str, (u64, u32)> = BTreeMap::new();
    for shard in engine.shards() {
        for (term, postings) in shard.index().field_vocabulary(field) {
            let entry = stats.entry(term).or_insert((0, 0));
            entry.0 += postings.total_tf();
            entry.1 += postings.len() as u32;
        }
    }
    let mut terms: Vec<TermSummary> = stats
        .into_iter()
        .map(|(term, (total, df))| TermSummary {
            term: term.to_string(),
            total_postings: Some(total),
            doc_freq: Some(df),
        })
        .collect();
    if max_terms > 0 && terms.len() > max_terms {
        // Keep the highest-df words — the ones that matter for source
        // selection — then restore alphabetical order.
        terms.sort_by(|a, b| b.doc_freq.cmp(&a.doc_freq).then(a.term.cmp(&b.term)));
        terms.truncate(max_terms);
        terms.sort_by(|a, b| a.term.cmp(&b.term));
    }
    terms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SourceConfig;
    use starts_index::Document;
    use starts_text::AnalyzerConfig;

    fn docs() -> Vec<Document> {
        vec![
            Document::new()
                .field("title", "algorithm analysis")
                .field("body-of-text", "algorithm algorithm data"),
            Document::new()
                .field("title", "data structures")
                .field("body-of-text", "algorithm data data"),
        ]
    }

    #[test]
    fn field_qualified_summary() {
        let s = Source::build(SourceConfig::new("S"), &docs());
        let summary = s.content_summary();
        assert_eq!(summary.num_docs, 2);
        assert!(summary.fields_qualified());
        // df("title", "algorithm") = 1; df("body-of-text", "algorithm") = 2.
        assert_eq!(summary.df(Some("title"), "algorithm"), 1);
        assert_eq!(summary.df(Some("body-of-text"), "algorithm"), 2);
        // Total postings of "algorithm" in body = 3.
        let t = summary.lookup(Some("body-of-text"), "algorithm").unwrap();
        assert_eq!(t.total_postings, Some(3));
    }

    #[test]
    fn unqualified_summary() {
        let mut cfg = SourceConfig::new("S");
        cfg.summary_fields_qualified = false;
        let s = Source::build(cfg, &docs());
        let summary = s.content_summary();
        assert!(!summary.fields_qualified());
        assert_eq!(summary.sections.len(), 1);
        // Whole-document df.
        assert_eq!(summary.df(None, "algorithm"), 2);
        assert_eq!(summary.df(None, "data"), 2);
    }

    #[test]
    fn flags_reflect_engine() {
        let mut cfg = SourceConfig::new("S");
        cfg.engine.analyzer = AnalyzerConfig {
            stem: true,
            stop_words: starts_text::StopWordList::none(),
            ..AnalyzerConfig::default()
        };
        let s = Source::build(cfg, &docs());
        let summary = s.content_summary();
        assert!(summary.stemmed);
        assert!(summary.stop_words_included);
        // Stemmed summary contains stems.
        assert!(summary.lookup(Some("title"), "structur").is_some());
    }

    #[test]
    fn truncation_keeps_high_df_terms() {
        let mut cfg = SourceConfig::new("S");
        cfg.summary_fields_qualified = false;
        cfg.summary_max_terms = 2;
        let s = Source::build(cfg, &docs());
        let summary = s.content_summary();
        assert_eq!(summary.total_terms(), 2);
        // algorithm and data (df 2 each) beat analysis/structures (df 1).
        assert!(summary.lookup(None, "algorithm").is_some());
        assert!(summary.lookup(None, "data").is_some());
    }

    #[test]
    fn summary_round_trips_through_soif() {
        let s = Source::build(SourceConfig::new("S"), &docs());
        let summary = s.content_summary();
        let bytes = starts_soif::write_object(&summary.to_soif());
        let back = ContentSummary::from_soif(
            &starts_soif::parse_one(&bytes, starts_soif::ParseMode::Strict).unwrap(),
        )
        .unwrap();
        assert_eq!(back, summary);
    }

    #[test]
    fn summary_is_much_smaller_than_contents() {
        // The §4.3.2 claim, on a corpus with heavy repetition.
        let docs: Vec<Document> = (0..50)
            .map(|i| {
                Document::new().field(
                    "body-of-text",
                    format!("common words repeat here always {} {}", i % 7, i % 3),
                )
            })
            .collect();
        let s = Source::build(SourceConfig::new("S"), &docs);
        let corpus_bytes: usize = (0..50)
            .map(|i| format!("common words repeat here always {} {}", i % 7, i % 3).len())
            .sum();
        let summary_bytes = starts_soif::write_object(&s.content_summary().to_soif()).len();
        assert!(
            summary_bytes < corpus_bytes / 2,
            "summary {summary_bytes} vs corpus {corpus_bytes}"
        );
    }
}
