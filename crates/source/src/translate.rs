//! Translation from protocol ASTs ([`starts_proto::query`]) to the engine
//! IR ([`starts_index`]).
//!
//! This is the boundary between "what STARTS says" and "what a concrete
//! engine executes": protocol fields become engine field names, protocol
//! modifiers become match specifications, weights pass through.

use starts_index::{BoolNode, CmpOp as EngineCmp, RankNode, TermMatch, TermSpec};
use starts_proto::attrs::CmpOp;
use starts_proto::query::{FilterExpr, QTerm, RankExpr, WeightedTerm};
use starts_proto::{Field, Modifier};

/// Translate a protocol term to an engine term spec.
pub fn translate_term(t: &QTerm) -> TermSpec {
    let field = match t.effective_field() {
        Field::Any => None,
        f => Some(f.name().to_string()),
    };
    let mut spec = TermSpec {
        field,
        term: t.value.text.clone(),
        matches: Vec::new(),
        cmp: None,
    };
    for m in &t.modifiers {
        match m {
            Modifier::Cmp(op) => spec.cmp = Some(translate_cmp(*op)),
            Modifier::Stem => spec.matches.push(TermMatch::Stem),
            Modifier::Phonetic => spec.matches.push(TermMatch::Phonetic),
            Modifier::Thesaurus => spec.matches.push(TermMatch::Thesaurus),
            Modifier::RightTruncation => spec.matches.push(TermMatch::RightTrunc),
            Modifier::LeftTruncation => spec.matches.push(TermMatch::LeftTrunc),
            Modifier::CaseSensitive => spec.matches.push(TermMatch::CaseSensitive),
            // Modifiers from other attribute sets have no engine
            // equivalent; the rewrite stage should have removed them, and
            // an engine that still sees one "freely interprets" it as
            // absent.
            Modifier::Other(_) => {}
        }
    }
    spec
}

fn translate_cmp(op: CmpOp) -> EngineCmp {
    match op {
        CmpOp::Lt => EngineCmp::Lt,
        CmpOp::Le => EngineCmp::Le,
        CmpOp::Eq => EngineCmp::Eq,
        CmpOp::Ge => EngineCmp::Ge,
        CmpOp::Gt => EngineCmp::Gt,
        CmpOp::Ne => EngineCmp::Ne,
    }
}

/// Translate a filter expression to the engine's Boolean IR.
pub fn translate_filter(e: &FilterExpr) -> BoolNode {
    match e {
        FilterExpr::Term(t) => BoolNode::Term(translate_term(t)),
        FilterExpr::And(a, b) => BoolNode::and(translate_filter(a), translate_filter(b)),
        FilterExpr::Or(a, b) => BoolNode::or(translate_filter(a), translate_filter(b)),
        FilterExpr::AndNot(a, b) => BoolNode::and_not(translate_filter(a), translate_filter(b)),
        FilterExpr::Prox(l, spec, r) => BoolNode::Prox {
            left: translate_term(l),
            right: translate_term(r),
            distance: spec.distance,
            ordered: spec.ordered,
        },
    }
}

fn translate_weighted(t: &WeightedTerm) -> RankNode {
    RankNode::Term {
        spec: translate_term(&t.term),
        weight: t.effective_weight(),
    }
}

/// Translate a ranking expression to the engine's ranking IR.
pub fn translate_ranking(e: &RankExpr) -> RankNode {
    match e {
        RankExpr::Term(t) => translate_weighted(t),
        RankExpr::List(items) => RankNode::List(items.iter().map(translate_ranking).collect()),
        RankExpr::And(a, b) => RankNode::And(vec![translate_ranking(a), translate_ranking(b)]),
        RankExpr::Or(a, b) => RankNode::Or(vec![translate_ranking(a), translate_ranking(b)]),
        RankExpr::AndNot(a, b) => RankNode::AndNot(
            Box::new(translate_ranking(a)),
            Box::new(translate_ranking(b)),
        ),
        RankExpr::Prox(l, spec, r) => RankNode::Prox {
            left: Box::new(translate_weighted(l)),
            right: Box::new(translate_weighted(r)),
            distance: spec.distance,
            ordered: spec.ordered,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starts_proto::query::{parse_filter, parse_ranking};

    #[test]
    fn term_translation() {
        let f = parse_filter(r#"(title stem "databases")"#).unwrap();
        let FilterExpr::Term(t) = &f else { panic!() };
        let spec = translate_term(t);
        assert_eq!(spec.field.as_deref(), Some("title"));
        assert_eq!(spec.term, "databases");
        assert_eq!(spec.matches, vec![TermMatch::Stem]);
        assert_eq!(spec.cmp, None);
    }

    #[test]
    fn any_field_translates_to_none() {
        let f = parse_filter(r#""databases""#).unwrap();
        let FilterExpr::Term(t) = &f else { panic!() };
        assert_eq!(translate_term(t).field, None);
    }

    #[test]
    fn cmp_translation() {
        let f = parse_filter(r#"(date-last-modified >= "1996-01-01")"#).unwrap();
        let FilterExpr::Term(t) = &f else { panic!() };
        let spec = translate_term(t);
        assert_eq!(spec.cmp, Some(EngineCmp::Ge));
        assert!(spec.matches.is_empty());
    }

    #[test]
    fn filter_tree_shape_preserved() {
        let f = parse_filter(r#"((("a") or ("b")) and-not ("c" prox[2,F] "d"))"#).unwrap();
        let b = translate_filter(&f);
        let BoolNode::AndNot(l, r) = b else { panic!() };
        assert!(matches!(*l, BoolNode::Or(_, _)));
        let BoolNode::Prox {
            distance, ordered, ..
        } = *r
        else {
            panic!()
        };
        assert_eq!(distance, 2);
        assert!(!ordered);
    }

    #[test]
    fn ranking_weights_pass_through() {
        let r = parse_ranking(r#"list(("x" 0.7) "y")"#).unwrap();
        let RankNode::List(items) = translate_ranking(&r) else {
            panic!()
        };
        let RankNode::Term { weight, .. } = &items[0] else {
            panic!()
        };
        assert_eq!(*weight, 0.7);
        let RankNode::Term { weight, .. } = &items[1] else {
            panic!()
        };
        assert_eq!(*weight, 1.0);
    }

    #[test]
    fn other_modifier_silently_ignored() {
        let f = parse_filter(r#"(title fuzzy "x")"#).unwrap();
        let FilterExpr::Term(t) = &f else { panic!() };
        assert!(translate_term(t).matches.is_empty());
    }
}
