//! Property-based tests for the source layer: the rewrite/actual-query
//! mechanism is total, idempotent, and only ever emits what the source
//! declared it supports.

use proptest::prelude::*;
use starts_index::Document;
use starts_proto::attrs::CmpOp;
use starts_proto::query::{FilterExpr, ProxSpec, QTerm, RankExpr, WeightedTerm};
use starts_proto::{Field, LString, Modifier, Query};
use starts_source::rewrite::rewrite_query;
use starts_source::{vendors, Source};

const WORDS: &[&str] = &["alpha", "beta", "gamma", "delta", "the", "databases"];

fn arb_field() -> impl Strategy<Value = Option<Field>> {
    prop_oneof![
        Just(None),
        Just(Some(Field::Title)),
        Just(Some(Field::Author)),
        Just(Some(Field::BodyOfText)),
        Just(Some(Field::DocumentText)),
        Just(Some(Field::FreeFormText)),
        Just(Some(Field::Linkage)),
        Just(Some(Field::Other("abstract".to_string()))),
    ]
}

fn arb_modifiers() -> impl Strategy<Value = Vec<Modifier>> {
    proptest::collection::vec(
        prop_oneof![
            Just(Modifier::Stem),
            Just(Modifier::Phonetic),
            Just(Modifier::Thesaurus),
            Just(Modifier::CaseSensitive),
            Just(Modifier::RightTruncation),
            Just(Modifier::Cmp(CmpOp::Gt)),
        ],
        0..3,
    )
}

fn arb_term() -> impl Strategy<Value = QTerm> {
    (arb_field(), arb_modifiers(), 0..WORDS.len()).prop_map(|(field, modifiers, w)| QTerm {
        field,
        modifiers,
        value: LString::plain(WORDS[w]),
    })
}

fn arb_filter() -> impl Strategy<Value = FilterExpr> {
    let leaf = arb_term().prop_map(FilterExpr::Term);
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| FilterExpr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| FilterExpr::or(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| FilterExpr::and_not(a, b)),
            (arb_term(), arb_term()).prop_map(|(l, r)| FilterExpr::Prox(
                l,
                ProxSpec {
                    distance: 2,
                    ordered: true
                },
                r
            )),
        ]
    })
}

fn arb_ranking() -> impl Strategy<Value = RankExpr> {
    proptest::collection::vec(arb_term(), 1..5).prop_map(|terms| {
        RankExpr::List(
            terms
                .into_iter()
                .map(|t| RankExpr::Term(WeightedTerm::plain(t)))
                .collect(),
        )
    })
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        proptest::option::of(arb_filter()),
        proptest::option::of(arb_ranking()),
        any::<bool>(),
    )
        .prop_map(|(filter, ranking, drop_stop_words)| Query {
            filter,
            ranking,
            drop_stop_words,
            ..Query::default()
        })
}

fn corpus() -> Vec<Document> {
    vec![
        Document::new()
            .field("title", "alpha beta")
            .field("author", "Gamma Delta")
            .field("body-of-text", "the databases alpha gamma")
            .field("date-last-modified", "1996-05-01")
            .field("linkage", "http://x/1"),
        Document::new()
            .field("title", "databases delta")
            .field("author", "Alpha Author")
            .field("body-of-text", "beta beta gamma")
            .field("date-last-modified", "1995-01-01")
            .field("linkage", "http://x/2"),
    ]
}

fn term_supported(meta: &starts_proto::SourceMetadata, t: &QTerm) -> bool {
    meta.supports_field(&t.effective_field())
        && t.modifiers.iter().all(|m| meta.supports_modifier(m))
}

proptest! {
    /// Rewriting is idempotent: the actual query, rewritten again at the
    /// same source, is unchanged (the actual query is a fixed point).
    #[test]
    fn rewrite_is_idempotent(q in arb_query()) {
        for cfg in vendors::fleet() {
            let source = Source::build(cfg, &corpus());
            let stop = |w: &str| source.engine().analyzer().is_stop_word(w);
            let can_disable = source
                .engine()
                .analyzer()
                .config()
                .can_disable_stop_words;
            let once = rewrite_query(&q, source.metadata(), &stop, can_disable);
            let again_query = Query {
                filter: once.filter.clone(),
                ranking: once.ranking.clone(),
                ..q.clone()
            };
            let twice = rewrite_query(&again_query, source.metadata(), &stop, can_disable);
            prop_assert_eq!(&once.filter, &twice.filter, "{}", source.id());
            prop_assert_eq!(&once.ranking, &twice.ranking, "{}", source.id());
        }
    }

    /// Every term surviving the rewrite is declared supported by the
    /// source's exported metadata — the actual query never promises more
    /// than the capabilities.
    #[test]
    fn actual_query_only_contains_supported_terms(q in arb_query()) {
        for cfg in vendors::fleet() {
            let source = Source::build(cfg, &corpus());
            let results = source.execute(&q);
            let meta = source.metadata();
            if let Some(f) = &results.actual_filter {
                for t in f.terms() {
                    prop_assert!(
                        term_supported(meta, t),
                        "{}: unsupported term {t:?} in actual filter",
                        source.id()
                    );
                }
            }
            if let Some(r) = &results.actual_ranking {
                for wt in r.terms() {
                    prop_assert!(
                        term_supported(meta, &wt.term),
                        "{}: unsupported term in actual ranking",
                        source.id()
                    );
                }
            }
        }
    }

    /// Execution is total: any query yields a well-formed, wire-safe
    /// result at every vendor.
    #[test]
    fn execute_total_and_wire_safe(q in arb_query()) {
        for cfg in vendors::fleet() {
            let source = Source::build(cfg, &corpus());
            let results = source.execute(&q);
            // Result documents never exceed the corpus and always carry
            // linkage.
            prop_assert!(results.documents.len() <= 2);
            for d in &results.documents {
                prop_assert!(d.linkage().is_some());
            }
            // The stream round-trips.
            let bytes = results.to_soif_stream();
            let back = starts_proto::QueryResults::from_soif_stream(&bytes).unwrap();
            prop_assert_eq!(back, results);
        }
    }

    /// Capability monotonicity: a source that supports everything
    /// returns an actual query with at least as many terms as any
    /// restricted vendor.
    #[test]
    fn capable_sources_keep_more(q in arb_query()) {
        let full = Source::build(vendors::okapi("Full"), &corpus());
        let narrow = Source::build(vendors::bolt("Narrow"), &corpus());
        let count = |r: &starts_proto::QueryResults| {
            r.actual_filter.as_ref().map(|f| f.terms().len()).unwrap_or(0)
                + r.actual_ranking.as_ref().map(|e| e.terms().len()).unwrap_or(0)
        };
        // Only comparable when stop lists do not interfere: Bolt's
        // aggressive list also removes terms. Restrict to queries whose
        // words are not in Bolt's list.
        let uses_stop_words = q
            .all_terms()
            .iter()
            .any(|t| starts_text::StopWordList::english_aggressive().contains(&t.value.text));
        prop_assume!(!uses_stop_words);
        let qf = full.execute(&q);
        let qn = narrow.execute(&q);
        prop_assert!(count(&qf) >= count(&qn));
    }
}
