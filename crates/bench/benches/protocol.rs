//! Protocol-layer micro-benchmarks: query-language parsing/printing,
//! SOIF encode/decode, and the ZDSR bridge.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use starts_proto::query::{parse_filter, parse_ranking, print_filter, print_ranking};
use starts_proto::{AnswerSpec, Field, Query};
use starts_soif::{parse_one, write_object, ParseMode};

const FILTER: &str = r#"(((author "Ullman") and (title stem "databases")) or ((body-of-text "retrieval") and-not (date-last-modified < "1995-01-01")))"#;
const RANKING: &str = r#"list((body-of-text "distributed" 0.7) (body-of-text "databases" 0.3) ("metasearch" 0.5) (title "protocol"))"#;

fn example_query() -> Query {
    Query {
        filter: Some(parse_filter(FILTER).unwrap()),
        ranking: Some(parse_ranking(RANKING).unwrap()),
        answer: AnswerSpec {
            fields: vec![Field::Title, Field::Author],
            min_doc_score: 0.5,
            max_documents: 20,
            ..AnswerSpec::default()
        },
        ..Query::default()
    }
}

fn bench_query_language(c: &mut Criterion) {
    c.bench_function("parse_filter/nested", |b| {
        b.iter(|| parse_filter(black_box(FILTER)).unwrap())
    });
    c.bench_function("parse_ranking/weighted_list", |b| {
        b.iter(|| parse_ranking(black_box(RANKING)).unwrap())
    });
    let f = parse_filter(FILTER).unwrap();
    let r = parse_ranking(RANKING).unwrap();
    c.bench_function("print_filter/nested", |b| {
        b.iter(|| print_filter(black_box(&f)))
    });
    c.bench_function("print_ranking/weighted_list", |b| {
        b.iter(|| print_ranking(black_box(&r)))
    });
}

fn bench_soif(c: &mut Criterion) {
    let q = example_query();
    c.bench_function("soif/encode_query", |b| {
        b.iter(|| write_object(black_box(&q.to_soif())))
    });
    let bytes = write_object(&q.to_soif());
    c.bench_function("soif/parse_query_object", |b| {
        b.iter(|| parse_one(black_box(&bytes), ParseMode::Strict).unwrap())
    });
    let obj = parse_one(&bytes, ParseMode::Strict).unwrap();
    c.bench_function("soif/decode_query", |b| {
        b.iter(|| Query::from_soif(black_box(&obj)).unwrap())
    });
}

fn bench_zdsr(c: &mut Criterion) {
    let f = parse_filter(
        r#"((author "Ullman") and ((title stem "databases") or (body-of-text "retrieval")))"#,
    )
    .unwrap();
    c.bench_function("zdsr/to_pqf", |b| {
        b.iter(|| starts_zdsr::to_pqf(black_box(&f)).unwrap())
    });
    let pqf = starts_zdsr::to_pqf(&f).unwrap();
    c.bench_function("zdsr/from_pqf", |b| {
        b.iter(|| starts_zdsr::from_pqf(black_box(&pqf)).unwrap())
    });
}

criterion_group!(benches, bench_query_language, bench_soif, bench_zdsr);
criterion_main!(benches);
