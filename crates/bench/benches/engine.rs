//! Engine-layer micro-benchmarks: index construction, Boolean and
//! ranked evaluation, term statistics, content-summary generation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use starts_bench::standard_corpus;
use starts_corpus::{generate_corpus, CorpusConfig};
use starts_index::{BoolNode, DocId, Document, Engine, EngineConfig, RankNode, TermSpec};
use starts_source::{Source, SourceConfig};

fn docs_of_size(n: usize) -> Vec<Document> {
    generate_corpus(&CorpusConfig {
        n_sources: 1,
        docs_per_source: n,
        seed: 8080,
        ..CorpusConfig::default()
    })
    .sources
    .remove(0)
    .docs
}

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    for n in [100usize, 500, 1000] {
        let docs = docs_of_size(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &docs, |b, docs| {
            b.iter(|| Engine::build(black_box(docs), EngineConfig::default()))
        });
    }
    group.finish();
}

fn bench_eval(c: &mut Criterion) {
    let corpus = standard_corpus();
    let engine = Engine::build(&corpus.all_docs(), EngineConfig::default());
    let and = BoolNode::and(
        BoolNode::Term(TermSpec::any("w0001")),
        BoolNode::Term(TermSpec::any("w0002")),
    );
    c.bench_function("eval/boolean_and", |b| {
        b.iter(|| engine.eval_filter(black_box(&and)))
    });
    let or = BoolNode::or(
        BoolNode::Term(TermSpec::any("w0001")),
        BoolNode::Term(TermSpec::any("w0002")),
    );
    c.bench_function("eval/boolean_or", |b| {
        b.iter(|| engine.eval_filter(black_box(&or)))
    });
    let prox = BoolNode::Prox {
        left: TermSpec::any("w0001"),
        right: TermSpec::any("w0002"),
        distance: 3,
        ordered: true,
    };
    c.bench_function("eval/prox_3_ordered", |b| {
        b.iter(|| engine.eval_filter(black_box(&prox)))
    });
    let ranked = RankNode::List(vec![
        RankNode::term(TermSpec::fielded("body-of-text", "w0001")),
        RankNode::term(TermSpec::fielded("body-of-text", "w0002")),
        RankNode::term(TermSpec::fielded("body-of-text", "w0005")),
    ]);
    c.bench_function("eval/ranked_list_3_terms", |b| {
        b.iter(|| engine.eval_ranking(black_box(&ranked)))
    });
    let stem = BoolNode::Term(TermSpec::any("w0001").with(starts_index::TermMatch::Stem));
    c.bench_function("eval/stem_vocab_scan", |b| {
        b.iter(|| engine.eval_filter(black_box(&stem)))
    });
    c.bench_function("eval/term_stats", |b| {
        let spec = TermSpec::fielded("body-of-text", "w0001");
        b.iter(|| engine.term_stats(black_box(DocId(0)), black_box(&spec)))
    });
}

fn bench_summary(c: &mut Criterion) {
    let docs = docs_of_size(500);
    let source = Source::build(SourceConfig::new("Bench"), &docs);
    c.bench_function("summary/generate_500_docs", |b| {
        b.iter(|| source.content_summary())
    });
    let summary = source.content_summary();
    c.bench_function("summary/encode_soif", |b| {
        b.iter(|| starts_soif::write_object(black_box(&summary.to_soif())))
    });
}

criterion_group!(benches, bench_index_build, bench_eval, bench_summary);
criterion_main!(benches);
