//! Metasearch-layer benchmarks: source selection over a large catalog,
//! merge-strategy throughput, and the end-to-end search pipeline.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use starts_bench::{standard_corpus, standard_workload, wire_and_discover};
use starts_meta::merge::{
    Merger, NormalizedMerge, RawScoreMerge, RoundRobinMerge, SourceResult, TfIdfMerge, TfMerge,
};
use starts_meta::metasearcher::{MetaConfig, Metasearcher};
use starts_meta::select::{BGloss, Cori, GGlossSum, Selector};
use starts_net::{SimNet, StartsClient};

fn bench_selection(c: &mut Criterion) {
    let corpus = standard_corpus();
    let net = SimNet::new();
    let catalog = wire_and_discover(&net, &corpus);
    let terms: Vec<(Option<&str>, &str)> = vec![
        (Some("body-of-text"), "t0x001"),
        (Some("body-of-text"), "t0x002"),
    ];
    let mut group = c.benchmark_group("select_12_sources");
    let selectors: Vec<(&str, Box<dyn Selector>)> = vec![
        ("bGlOSS", Box::new(BGloss)),
        ("gGlOSS", Box::new(GGlossSum)),
        ("CORI", Box::new(Cori::default())),
    ];
    for (name, selector) in &selectors {
        group.bench_with_input(BenchmarkId::from_parameter(name), selector, |b, s| {
            b.iter(|| s.rank(black_box(&catalog), black_box(&terms)))
        });
    }
    group.finish();
}

fn gather_inputs() -> Vec<SourceResult> {
    let corpus = standard_corpus();
    let net = SimNet::new();
    wire_and_discover(&net, &corpus);
    let client = StartsClient::new(&net);
    let workload = standard_workload(&corpus);
    let gq = &workload.queries[0];
    corpus
        .sources
        .iter()
        .map(|s| {
            let metadata = client
                .fetch_metadata(&format!("starts://{}/metadata", s.id.to_lowercase()))
                .unwrap();
            let results = client
                .query(
                    &format!("starts://{}/query", s.id.to_lowercase()),
                    &gq.query,
                )
                .unwrap();
            SourceResult {
                metadata,
                results,
                source_weight: 1.0,
            }
        })
        .collect()
}

fn bench_merging(c: &mut Criterion) {
    let inputs = gather_inputs();
    let sizes: Vec<u64> = vec![80; 12];
    let tfidf = TfIdfMerge::from_inputs(&inputs, &sizes);
    let mut group = c.benchmark_group("merge_12_sources");
    let strategies: Vec<(&str, &dyn Merger)> = vec![
        ("raw", &RawScoreMerge),
        ("normalized", &NormalizedMerge),
        ("round_robin", &RoundRobinMerge),
        ("tf", &TfMerge),
        ("tfidf", &tfidf),
    ];
    for (name, merger) in strategies {
        group.bench_function(name, |b| b.iter(|| merger.merge(black_box(&inputs))));
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let corpus = standard_corpus();
    let net = SimNet::new();
    let catalog = wire_and_discover(&net, &corpus);
    let workload = standard_workload(&corpus);
    let meta = Metasearcher::new(
        &net,
        catalog,
        MetaConfig {
            max_sources: 3,
            ..MetaConfig::default()
        },
    );
    let query = &workload.queries[0].query;
    c.bench_function("metasearch/end_to_end_3_sources", |b| {
        b.iter(|| meta.search(black_box(query)))
    });
}

criterion_group!(benches, bench_selection, bench_merging, bench_end_to_end);
criterion_main!(benches);
