//! A minimal JSON value parser for the bench artifacts.
//!
//! The bench binaries hand-roll their JSON output (the workspace has no
//! serde), so the regression gate hand-rolls the matching reader. It
//! covers exactly the grammar those artifacts use — objects, arrays,
//! strings, numbers (including negatives and decimals), booleans,
//! null — and nothing exotic.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; bench artifacts stay well within `f64` precision.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving member order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document; `None` on any syntax error or
    /// trailing garbage.
    pub fn parse(text: &str) -> Option<Json> {
        let mut c = Cursor {
            b: text.as_bytes(),
            i: 0,
        };
        c.skip_ws();
        let v = c.value()?;
        c.skip_ws();
        (c.i == c.b.len()).then_some(v)
    }

    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn str_(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn bool_(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
}

impl Cursor<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Option<()> {
        (self.peek() == Some(c)).then(|| self.i += 1)
    }

    fn lit(&mut self, word: &str) -> Option<()> {
        let end = self.i + word.len();
        if self.b.get(self.i..end) == Some(word.as_bytes()) {
            self.i = end;
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<Json> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Json::Str),
            b't' => self.lit("true").map(|_| Json::Bool(true)),
            b'f' => self.lit("false").map(|_| Json::Bool(false)),
            b'n' => self.lit("null").map(|_| Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn object(&mut self) -> Option<Json> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Some(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek()? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Some(Json::Obj(members));
                }
                _ => return None,
            }
        }
    }

    fn array(&mut self) -> Option<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Some(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Some(Json::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.i += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.b.get(self.i + 1..self.i + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.i += 4;
                        }
                        _ => return None,
                    }
                    self.i += 1;
                }
                // Multi-byte UTF-8 sequences pass through untouched.
                _ => {
                    let start = self.i;
                    while self.peek().is_some_and(|c| c != b'"' && c != b'\\') {
                        self.i += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.b[start..self.i]).ok()?);
                }
            }
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()?
            .parse()
            .ok()
            .map(Json::Num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shapes_bench_artifacts_use() {
        let j = Json::parse(
            r#"{"bench": "x15", "smoke": true, "qps": 123.5, "neg": -4,
                "rows": [{"shards": 1}, {"shards": 2}], "nothing": null}"#,
        )
        .expect("parse");
        assert_eq!(j.get("bench").and_then(Json::str_), Some("x15"));
        assert_eq!(j.get("smoke").and_then(Json::bool_), Some(true));
        assert_eq!(j.get("qps").and_then(Json::num), Some(123.5));
        assert_eq!(j.get("neg").and_then(Json::num), Some(-4.0));
        let rows = j.get("rows").and_then(Json::arr).expect("rows");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("shards").and_then(Json::num), Some(2.0));
        assert_eq!(j.get("nothing"), Some(&Json::Null));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn real_artifacts_parse() {
        for text in [
            include_str!("../../../BENCH_hotpath.json"),
            include_str!("../../../BENCH_shard.json"),
            include_str!("../../../BENCH_prune.json"),
        ] {
            let j = Json::parse(text).expect("checked-in artifact parses");
            assert!(j.get("bench").and_then(Json::str_).is_some());
        }
    }

    #[test]
    fn rejects_garbage_and_trailing_text() {
        assert_eq!(Json::parse("{\"a\": }"), None);
        assert_eq!(Json::parse("{} trailing"), None);
        assert_eq!(Json::parse("{\"a\": 1,}"), None);
        assert_eq!(Json::parse(""), None);
    }

    #[test]
    fn string_escapes_resolve() {
        let j = Json::parse(r#""a\tbA\\\"""#).expect("parse");
        assert_eq!(j.str_(), Some("a\tbA\\\""));
    }
}
