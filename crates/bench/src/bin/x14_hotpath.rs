//! X14 — the top-k hot path, measured (beyond the paper's artifacts).
//!
//! STARTS callers always bound their answer (`max-documents`, §4.1.3),
//! yet the original evaluator scored and fully sorted every candidate
//! before truncating. This experiment measures what the bounded
//! pipeline buys at each layer:
//!
//! * **engine-naive** — the reference evaluator
//!   (`Engine::eval_ranking_naive`): repeated two-way unions, one
//!   tree-walk per candidate document, full sort, truncate;
//! * **engine-topk** — the term-at-a-time fast path
//!   (`Engine::eval_ranking_top_k`): leaves resolved once, k-way
//!   candidate merge, bounded heap selection;
//! * **source** — the full STARTS execution pipeline (parse →
//!   translate → execute → render) with `max-documents = k`;
//! * **federated** — a metasearcher fan-out over the simulated network
//!   with bounded rank merging.
//!
//! The Zipf-distributed query workload mirrors real term frequencies:
//! most queries contain at least one very common word, which is
//! exactly the regime where scoring everything hurts.
//!
//! Writes `BENCH_hotpath.json` (override with `--out PATH`); pass
//! `--smoke` for a seconds-scale CI run on the standard corpus, and
//! `--explain` to print one federated query's cost tree (EXPLAIN
//! profile) after the measurements.

use std::time::Instant;

use starts_bench::{
    header, machine_parallelism, print_table, provenance_note, section, standard_corpus,
    wire_and_discover, zipf_workload, BenchArgs,
};
use starts_corpus::{generate_corpus, CorpusConfig, GeneratedCorpus};
use starts_index::{Engine, EngineConfig, PruneMode, RankNode, TermSpec};
use starts_meta::metasearcher::{MetaConfig, Metasearcher};
use starts_net::SimNet;
use starts_proto::query::ast::{QTerm, RankExpr};
use starts_proto::{AnswerSpec, Field, Query};
use starts_source::{Source, SourceConfig};

/// Result-list bound for every path (the ISSUE's `max-documents ≤ 20`
/// regime).
const K: usize = 10;

fn main() {
    let args = BenchArgs::parse();
    let smoke = args.smoke;
    let out_path = args.out_or("BENCH_hotpath.json");
    let n_queries = if smoke { 60 } else { 400 };

    header("X14  top-k hot path: naive walk vs bounded term-at-a-time pipeline");
    let corpus = if smoke {
        standard_corpus()
    } else {
        // A larger corpus than the standard one: the hot path's win
        // grows with candidate-set size, so measure where it matters.
        generate_corpus(&CorpusConfig {
            n_sources: 12,
            docs_per_source: 400,
            n_topics: 4,
            background_vocab: 1500,
            topic_vocab: 100,
            doc_len: (25, 90),
            topic_skew: 0.35,
            bilingual_fraction: 0.0,
            seed: 19970526,
        })
    };
    let terms = zipf_workload(&corpus, n_queries, 1997);
    println!(
        "corpus: {} sources, {} docs; workload: {} Zipf queries; k = {K}",
        corpus.sources.len(),
        corpus.total_docs(),
        terms.len()
    );

    // Engine paths: one engine over the combined corpus. Time the build
    // too — the indexing rate is part of the artifact (see
    // docs/performance.md).
    let docs = corpus.all_docs();
    let build_start = Instant::now();
    let engine = Engine::build(&docs, EngineConfig::default());
    let build_docs_per_s = docs.len() as f64 / build_start.elapsed().as_secs_f64().max(1e-12);
    println!(
        "index build: {build_docs_per_s:.0} docs/s over {} docs",
        docs.len()
    );
    let naive = measure(&terms, |t| {
        let node = rank_node(t);
        let mut hits = engine.eval_ranking_naive(&node);
        hits.truncate(K);
        hits.len()
    });
    let topk = measure(&terms, |t| {
        let node = rank_node(t);
        engine.eval_ranking_top_k(&node, Some(K)).len()
    });
    // The same bounded pipeline with dynamic pruning disabled — the
    // topk-vs-noprune delta is what the score-upper-bound skip buys
    // (X16 measures it in depth).
    let engine_noprune = Engine::build(
        &docs,
        EngineConfig {
            prune: PruneMode::Off,
            ..EngineConfig::default()
        },
    );
    let topk_noprune = measure(&terms, |t| {
        let node = rank_node(t);
        engine_noprune.eval_ranking_top_k(&node, Some(K)).len()
    });

    // Source path: the full STARTS pipeline on one combined source.
    let source = Source::build(SourceConfig::new("Hot"), &docs);
    let source_path = measure(&terms, |t| source.execute(&starts_query(t)).documents.len());

    // Federated path: fan-out + bounded merge over the simulated net.
    let net = SimNet::new();
    let catalog = wire_and_discover(&net, &corpus);
    let meta = Metasearcher::new(
        &net,
        catalog,
        MetaConfig {
            max_results: K,
            ..MetaConfig::default()
        },
    );
    let federated = measure(&terms, |t| meta.search(&starts_query(t)).merged.len());

    if args.explain {
        // EXPLAIN one representative query: the full federated cost
        // tree (client stages, per-source fan-out, host-side stages
        // echoed back over the wire) plus its critical path.
        section("EXPLAIN: federated cost profile for one query");
        let profile = meta.search(&starts_query(&terms[0])).profile;
        println!("{}", profile.render());
        println!("critical path: {}", profile.critical_path_summary());
    }

    let speedup = topk.qps / naive.qps.max(1e-9);
    section("throughput and latency per path");
    print_table(
        &["path", "QPS", "p50 µs", "p95 µs", "p99 µs"],
        &[
            naive.row("engine-naive"),
            topk.row("engine-topk"),
            topk_noprune.row("engine-topk (prune off)"),
            source_path.row("source"),
            federated.row("federated"),
        ],
    );
    println!();
    println!(
        "engine fast path speedup at k={K}: {speedup:.2}x \
         (naive {:.0} QPS -> top-k {:.0} QPS)",
        naive.qps, topk.qps
    );

    let json = render_json(
        smoke,
        &corpus,
        n_queries,
        build_docs_per_s,
        &naive,
        &topk,
        &topk_noprune,
        &source_path,
        &federated,
    );
    std::fs::write(&out_path, json).expect("write BENCH_hotpath.json");
    println!("wrote {out_path}");
}

/// Per-path timing summary.
struct PathStats {
    qps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

impl PathStats {
    fn row(&self, name: &str) -> Vec<String> {
        vec![
            name.to_string(),
            format!("{:.0}", self.qps),
            format!("{:.1}", self.p50_us),
            format!("{:.1}", self.p95_us),
            format!("{:.1}", self.p99_us),
        ]
    }

    fn json(&self) -> String {
        format!(
            "{{\"qps\": {:.1}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}}}",
            self.qps, self.p50_us, self.p95_us, self.p99_us
        )
    }
}

/// Time one closure over the whole workload (after a short warmup) and
/// summarize per-query latency.
fn measure(terms: &[Vec<String>], mut run: impl FnMut(&[String]) -> usize) -> PathStats {
    for t in terms.iter().take(5) {
        run(t); // warmup: touch caches, fault in lazily-built state
    }
    let mut lat_us: Vec<f64> = Vec::with_capacity(terms.len());
    let total = Instant::now();
    for t in terms {
        let start = Instant::now();
        std::hint::black_box(run(t));
        lat_us.push(start.elapsed().as_secs_f64() * 1e6);
    }
    let elapsed = total.elapsed().as_secs_f64();
    lat_us.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        let idx = ((lat_us.len() - 1) as f64 * p).round() as usize;
        lat_us[idx]
    };
    PathStats {
        qps: terms.len() as f64 / elapsed.max(1e-12),
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
    }
}

/// The engine-level ranking expression for a term list.
fn rank_node(terms: &[String]) -> RankNode {
    RankNode::List(
        terms
            .iter()
            .map(|t| RankNode::term(TermSpec::fielded("body-of-text", t)))
            .collect(),
    )
}

/// The STARTS query for a term list, bounded to `K` documents.
fn starts_query(terms: &[String]) -> Query {
    Query {
        ranking: Some(RankExpr::list_of(
            terms
                .iter()
                .map(|t| QTerm::fielded(Field::BodyOfText, t.clone())),
        )),
        answer: AnswerSpec {
            fields: vec![Field::Title],
            max_documents: K,
            ..AnswerSpec::default()
        },
        ..Query::default()
    }
}

/// Hand-rolled JSON artifact (schema documented in
/// `docs/performance.md`).
#[allow(clippy::too_many_arguments)]
fn render_json(
    smoke: bool,
    corpus: &GeneratedCorpus,
    n_queries: usize,
    build_docs_per_s: f64,
    naive: &PathStats,
    topk: &PathStats,
    topk_noprune: &PathStats,
    source: &PathStats,
    federated: &PathStats,
) -> String {
    let parallelism = machine_parallelism();
    let note = provenance_note(
        parallelism,
        "the engine speedup is machine-independent but absolute QPS is not",
    );
    format!(
        "{{\n  \"bench\": \"x14_hotpath\",\n  \"note\": \"{note}\",\n  \
         \"smoke\": {smoke},\n  \"k\": {K},\n  \
         \"queries\": {n_queries},\n  \"machine_parallelism\": {parallelism},\n  \
         \"corpus\": {{\"sources\": {}, \"docs\": {}}},\n  \
         \"build_docs_per_s\": {build_docs_per_s:.0},\n  \
         \"paths\": {{\n    \"engine_naive\": {},\n    \"engine_topk\": {},\n    \
         \"engine_topk_noprune\": {},\n    \
         \"source\": {},\n    \"federated\": {}\n  }},\n  \
         \"engine_speedup\": {:.2}\n}}\n",
        corpus.sources.len(),
        corpus.total_docs(),
        naive.json(),
        topk.json(),
        topk_noprune.json(),
        source.json(),
        federated.json(),
        topk.qps / naive.qps.max(1e-9),
    )
}
