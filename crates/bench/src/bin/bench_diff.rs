//! `bench_diff` — the CI perf-regression gate.
//!
//! Compares a fresh bench JSON artifact against a checked-in baseline
//! and exits nonzero when the gate fails:
//!
//! ```text
//! bench_diff --baseline BENCH_hotpath.json --current fresh.json [--tolerance 0.15]
//! ```
//!
//! When the two artifacts share provenance (`machine_parallelism` and
//! `smoke` both match), every `qps` metric must stay within the
//! relative tolerance of the baseline. When they don't — the usual
//! case for a checked-in baseline from a developer container vs a CI
//! runner — the gate degrades to invariant checks on the fresh run
//! (see `starts_bench::diff` for the full policy).

use starts_bench::diff::{diff, DEFAULT_QPS_TOLERANCE};
use starts_bench::json::Json;

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let baseline_path = match starts_bench::arg_value("--baseline") {
        Some(p) => p,
        None => return usage("missing --baseline"),
    };
    let current_path = match starts_bench::arg_value("--current") {
        Some(p) => p,
        None => return usage("missing --current"),
    };
    let tolerance = match starts_bench::arg_value("--tolerance") {
        Some(t) => match t.parse::<f64>() {
            Ok(t) if (0.0..1.0).contains(&t) => t,
            _ => return usage("--tolerance must be a fraction in [0, 1)"),
        },
        None => DEFAULT_QPS_TOLERANCE,
    };

    let baseline = match load(&baseline_path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            return 2;
        }
    };
    let current = match load(&current_path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            return 2;
        }
    };

    match diff(&baseline, &current, tolerance) {
        Ok(report) => {
            print!("{}", report.render());
            if report.passed() {
                println!("PASS ({} vs {})", current_path, baseline_path);
                0
            } else {
                println!("FAIL ({} vs {})", current_path, baseline_path);
                1
            }
        }
        Err(e) => {
            eprintln!("bench_diff: {e}");
            2
        }
    }
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).ok_or_else(|| format!("{path}: not valid JSON"))
}

fn usage(err: &str) -> i32 {
    eprintln!("bench_diff: {err}");
    eprintln!("usage: bench_diff --baseline BENCH_x.json --current fresh.json [--tolerance 0.15]");
    2
}
