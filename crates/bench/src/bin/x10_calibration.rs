//! X10 — black-box score calibration via SampleDatabaseResults (§4.2).
//!
//! Every source publishes the results of fixed queries over a fixed
//! sample collection. Fitting an affine map between two sources' scores
//! on the *same sample documents* recovers their scale relationship —
//! without ever learning the proprietary algorithms, exactly as §4.2
//! proposes. The experiment prints the fitted map matrix and shows that
//! calibrated merging repairs the raw-score disaster.

use starts_bench::{header, print_table, section};
use starts_corpus::{generate_corpus, CorpusConfig};
use starts_meta::calibrate::fit_score_map;
use starts_meta::eval::mean;
use starts_meta::merge::{Merger, RawScoreMerge, SourceResult};
use starts_net::host::wire_source;
use starts_net::{LinkProfile, SimNet, StartsClient};
use starts_proto::query::parse_ranking;
use starts_proto::Query;
use starts_source::{sample::sample_results, vendors, Source, SourceConfig};

fn main() {
    header("X10  black-box calibration from SampleDatabaseResults");
    let configs: Vec<SourceConfig> = vec![
        vendors::acme("Acme"),
        vendors::bolt("Bolt"),
        vendors::okapi("Okapi"),
        vendors::rankonly("Plain"),
    ];

    section("fitted affine maps into Acme's [0,1] scale (from samples)");
    let reference = sample_results(&configs[0]);
    let mut rows = Vec::new();
    let mut maps = Vec::new();
    for cfg in &configs {
        let samples = sample_results(cfg);
        let map = fit_score_map(&samples, &reference).expect("shared sample collection");
        rows.push(vec![
            cfg.id.clone(),
            format!("{:.6}", map.alpha),
            format!("{:.4}", map.beta),
            format!("{:.3}", map.correlation),
            map.n.to_string(),
        ]);
        maps.push(map);
    }
    print_table(&["source", "alpha", "beta", "corr", "pairs"], &rows);
    println!();
    println!(
        "   Bolt's alpha ≈ 1/1000 exposes its score-scale; Okapi/Plain get sensible\n\
         compressions — all inferred from published sample results alone."
    );

    section("calibrated merging vs raw merging on live data (disjoint slices)");
    // Each vendor indexes its own slice of one collection. The reference
    // order is a single global engine over ALL documents (the metasearch
    // ideal). Raw merging lets Bolt's 1000-scale slice capture the top;
    // calibrated scores are mutually comparable.
    let corpus = generate_corpus(&CorpusConfig {
        n_sources: 4,
        docs_per_source: 40,
        n_topics: 1,
        topic_skew: 0.2,
        seed: 2001,
        ..CorpusConfig::default()
    });
    let net = SimNet::new();
    for (cfg, slice) in configs.iter().zip(&corpus.sources) {
        let mut c = cfg.clone();
        c.base_url = format!("starts://{}", c.id.to_lowercase());
        wire_source(&net, Source::build(c, &slice.docs), LinkProfile::default());
    }
    let global =
        starts_index::Engine::build(&corpus.all_docs(), starts_index::EngineConfig::default());
    let client = StartsClient::new(&net);
    let mut raw_tau = Vec::new();
    let mut cal_tau = Vec::new();
    for word in ["w0002", "w0004", "w0007", "w0010", "w0015", "w0001"] {
        let query = Query {
            ranking: Some(parse_ranking(&format!(r#"list((body-of-text "{word}"))"#)).unwrap()),
            ..Query::default()
        };
        let mut raws = Vec::new();
        let mut cals = Vec::new();
        for (cfg, map) in configs.iter().zip(&maps) {
            let metadata = client
                .fetch_metadata(&format!("starts://{}/metadata", cfg.id.to_lowercase()))
                .unwrap();
            let results = client
                .query(&format!("starts://{}/query", cfg.id.to_lowercase()), &query)
                .unwrap();
            let mut calibrated = results.clone();
            for d in &mut calibrated.documents {
                if let Some(s) = d.raw_score {
                    d.raw_score = Some(map.apply(s));
                }
            }
            raws.push(SourceResult {
                metadata: metadata.clone(),
                results,
                source_weight: 1.0,
            });
            cals.push(SourceResult {
                metadata,
                results: calibrated,
                source_weight: 1.0,
            });
        }
        // The global reference ranking for this query.
        let rank_ir = starts_source::translate::translate_ranking(query.ranking.as_ref().unwrap());
        let reference: Vec<String> = global
            .eval_ranking(&rank_ir)
            .into_iter()
            .filter_map(|(doc, _)| {
                global
                    .index()
                    .doc_field(doc, global.index().schema().get("linkage")?)
                    .map(str::to_string)
            })
            .collect();
        let tau = |merged: Vec<starts_meta::MergedDoc>| -> f64 {
            let ranked: Vec<String> = merged.into_iter().map(|d| d.linkage).collect();
            starts_meta::eval::kendall_tau(&ranked, &reference)
        };
        raw_tau.push(tau(RawScoreMerge.merge(&raws)));
        cal_tau.push(tau(RawScoreMerge.merge(&cals)));
    }
    println!(
        "   rank correlation (Kendall tau) of the merged list against a single\n\
         global engine over all documents:"
    );
    println!("     raw scores       : {:.3}", mean(&raw_tau));
    println!("     calibrated scores: {:.3}", mean(&cal_tau));
    assert!(
        mean(&cal_tau) > mean(&raw_tau),
        "calibration should recover a scale-comparable merged order"
    );

    section("verdict");
    println!(
        "   sample-database results make sources calibratable as black boxes — the\n\
         mechanism §4.2 proposed for engines that cannot export statistics."
    );
    starts_bench::BenchArgs::parse().finish(net.registry());
}
