//! X5 — Examples 1–12, regenerated: prints our canonical encodings of
//! every worked example in the paper, with a byte-count audit comparing
//! the paper's hand-computed SOIF lengths against exact ones.

use starts_bench::{header, print_table, section};
use starts_proto::query::{
    parse_filter, parse_ranking, print_filter, print_ranking, AnswerSpec, SortKey,
};
use starts_proto::{Field, Query, Resource};
use starts_soif::write_object;

fn main() {
    header("X5  Examples 1-12 — regenerated encodings + byte-count audit");

    section("Example 1: filter + ranking expression");
    let f = parse_filter(r#"((author "Ullman") and (title "databases"))"#).unwrap();
    let r =
        parse_ranking(r#"list((body-of-text "distributed") (body-of-text "databases"))"#).unwrap();
    println!("   filter : {}", print_filter(&f));
    println!("   ranking: {}", print_ranking(&r));

    section("Example 2: stem modifier");
    println!(
        "   {}",
        print_filter(&parse_filter(r#"(title stem "databases")"#).unwrap())
    );

    section("Example 3: proximity");
    println!(
        "   {}",
        print_filter(&parse_filter(r#"("t1" prox[3,T] "t2")"#).unwrap())
    );

    section("Example 4: fuzzy operators vs list");
    println!(
        "   R1 = {}",
        print_ranking(&parse_ranking(r#"("distributed" and "databases")"#).unwrap())
    );
    println!(
        "   R2 = {}",
        print_ranking(&parse_ranking(r#"list("distributed" "databases")"#).unwrap())
    );
    println!("   with term weights 0.3/0.8: R1 = min = 0.3; R2 = 0.5*0.3+0.5*0.8 = 0.55");

    section("Example 5: weighted terms");
    println!(
        "   {}",
        print_ranking(&parse_ranking(r#"list(("distributed" 0.7) ("databases" 0.3))"#).unwrap())
    );

    section("Example 6: the @SQuery object (exact bytes)");
    let query = Query {
        filter: Some(parse_filter(r#"((author "Ullman") and (title stem "databases"))"#).unwrap()),
        ranking: Some(
            parse_ranking(r#"list((body-of-text "distributed") (body-of-text "databases"))"#)
                .unwrap(),
        ),
        answer: AnswerSpec {
            fields: vec![Field::Title, Field::Author],
            sort_by: vec![SortKey::score_descending()],
            min_doc_score: 0.5,
            max_documents: 10,
        },
        ..Query::default()
    };
    print!(
        "{}",
        String::from_utf8_lossy(&write_object(&query.to_soif()))
    );

    section("byte-count audit: paper's hand counts vs exact counts");
    let audit: Vec<(&str, &str, usize, &str)> = vec![
        (
            "Ex6 FilterExpression",
            r#"((author "Ullman") and (title stem "databases"))"#,
            48,
            "48",
        ),
        (
            "Ex6 RankingExpression",
            r#"list((body-of-text "distributed") (body-of-text "databases"))"#,
            61,
            "61",
        ),
        ("Ex6 Version", "STARTS 1.0", 10, "10"),
        ("Ex6 AnswerFields", "title author", 12, "12"),
        (
            "Ex8 ActualRankingExpression",
            r#"(body-of-text "databases")"#,
            26,
            "26",
        ),
        (
            "Ex8 linkage",
            "http://www-db.stanford.edu/~ullman/pub/dood.ps",
            46,
            "47 (paper off by one)",
        ),
        (
            "Ex8 title",
            "A Comparison Between Deductive and Object-Oriented Database Systems",
            67,
            "68 (paper off by one)",
        ),
        (
            "Ex10 FieldsSupported",
            "[basic-1 author]",
            16,
            "17 (paper off by one)",
        ),
        ("Ex10 ModifiersSupported", "{basic-1 phonetics}", 19, "19"),
        (
            "Ex10 FieldModifierCombinations",
            "([basic-1 author] {basic-1 phonetics})",
            38,
            "39 (paper off by one)",
        ),
        ("Ex10 ScoreRange", "0.0 1.0", 7, "7"),
        (
            "Ex10 date-changed",
            "1996-03-31",
            10,
            "9 (paper off by one)",
        ),
        (
            "Ex10 content-summary-linkage",
            "ftp://www-db.stanford.edu/cont_sum.txt",
            38,
            "38",
        ),
        ("Ex11 NumDocs", "892", 3, "3"),
        ("Ex11 Language", "en-US", 5, "5"),
    ];
    let rows: Vec<Vec<String>> = audit
        .iter()
        .map(|(what, value, exact, paper)| {
            assert_eq!(value.len(), *exact, "{what}");
            vec![what.to_string(), exact.to_string(), paper.to_string()]
        })
        .collect();
    print_table(&["attribute", "exact bytes", "paper says"], &rows);

    section("Example 12: the @SResource object");
    let resource = Resource::new([
        (
            "Source-1".to_string(),
            "ftp://www.stanford.edu/source_1".to_string(),
        ),
        (
            "Source-2".to_string(),
            "ftp://www.stanford.edu/source_2".to_string(),
        ),
    ]);
    print!(
        "{}",
        String::from_utf8_lossy(&write_object(&resource.to_soif()))
    );
    println!();
    println!(
        "verdict: all arithmetically-consistent counts reproduced exactly; 5 counts in the\n\
         paper's camera-ready examples are off by one (documented in EXPERIMENTS.md)."
    );
    starts_bench::BenchArgs::parse().finish(starts_obs::Registry::global());
}
