//! X6 — source selection from content summaries (§3.3, §4.3.2, refs
//! [7, 8]): how much of the relevant material do the top-n selected
//! sources hold, per selection strategy, as n grows?
//!
//! The paper's claim: automatically generated summaries, "orders of
//! magnitude smaller than the original contents", have "proven useful in
//! distinguishing the more useful from the less useful sources for a
//! given query". Expected shape (from GlOSS/gGlOSS): summary-based
//! selectors reach high merit coverage with 1–3 of 12 sources, while
//! query-blind selection needs most of them.

use starts_bench::{
    header, print_table, section, standard_corpus, standard_workload, wire_and_discover,
};
use starts_meta::eval::{mean, selection_recall};
use starts_meta::metasearcher::Metasearcher;
use starts_meta::savvy::PastPerformance;
use starts_meta::select::{BGloss, BySize, Cori, CostAware, GGlossSum, Selector};
use starts_net::{LinkProfile, SimNet};

fn main() {
    header("X6  source selection effectiveness (merit coverage R_n vs n)");
    let corpus = standard_corpus();
    let workload = standard_workload(&corpus);
    let net = SimNet::new();
    let mut catalog = wire_and_discover(&net, &corpus);
    // Give sources heterogeneous link profiles: every third source is
    // slow and priced (a Dialog-like service), the rest are free.
    for (i, entry) in catalog.entries.iter_mut().enumerate() {
        entry.link = if i % 3 == 0 {
            LinkProfile {
                latency_ms: 900,
                cost_per_query: 2.0,
            }
        } else {
            LinkProfile {
                latency_ms: 60,
                cost_per_query: 0.0,
            }
        };
    }

    // The SavvySearch-style learned selector (§5) trains on the first
    // half of the workload: for each training query, it observes how
    // many relevant documents each source would have yielded.
    let savvy = PastPerformance::new();
    let split = workload.queries.len() / 2;
    for gq in &workload.queries[..split] {
        for (si, count) in gq.relevant_by_source.iter().enumerate() {
            savvy.record(&catalog.entries[si].id, &gq.terms, *count as usize);
        }
    }
    let selectors: Vec<(&str, Box<dyn Selector>)> = vec![
        ("bGlOSS", Box::new(BGloss)),
        ("gGlOSS-Sum", Box::new(GGlossSum)),
        ("CORI", Box::new(Cori::default())),
        ("by-size", Box::new(BySize)),
        (
            "cost-aware gGlOSS",
            Box::new(CostAware {
                inner: GGlossSum,
                lambda: 1.0,
                mu: 1.0,
            }),
        ),
        ("past-performance", Box::new(savvy)),
    ];

    section(&format!(
        "mean merit coverage over {} queries, {} sources, by number selected",
        workload.queries.len(),
        corpus.sources.len()
    ));
    let ns = [1usize, 2, 3, 4, 6, 12];
    let mut rows = Vec::new();
    let mut best_at_2 = 0.0f64;
    let mut size_at_2 = 0.0f64;
    for (name, selector) in &selectors {
        let mut row = vec![name.to_string()];
        for &n in &ns {
            let mut cov = Vec::new();
            for gq in &workload.queries {
                let owned = Metasearcher::selection_terms(&gq.query);
                let terms: Vec<(Option<&str>, &str)> = owned
                    .iter()
                    .map(|(f, t)| (f.as_deref(), t.as_str()))
                    .collect();
                let chosen: Vec<usize> = selector
                    .rank(&catalog, &terms)
                    .into_iter()
                    .take(n)
                    .map(|(i, _)| i)
                    .collect();
                cov.push(selection_recall(&chosen, &gq.relevant_by_source));
            }
            let m = mean(&cov);
            if n == 2 {
                if *name == "gGlOSS-Sum" {
                    best_at_2 = m;
                }
                if *name == "by-size" {
                    size_at_2 = m;
                }
            }
            row.push(format!("{:.3}", m));
        }
        rows.push(row);
    }
    let mut columns = vec!["selector"];
    let labels: Vec<String> = ns.iter().map(|n| format!("n={n}")).collect();
    columns.extend(labels.iter().map(String::as_str));
    print_table(&columns, &rows);

    section("cost of the selected wave (n=3): mean latency and fees");
    for (name, selector) in &selectors {
        let mut lat = Vec::new();
        let mut fee = Vec::new();
        for gq in &workload.queries {
            let owned = Metasearcher::selection_terms(&gq.query);
            let terms: Vec<(Option<&str>, &str)> = owned
                .iter()
                .map(|(f, t)| (f.as_deref(), t.as_str()))
                .collect();
            let chosen: Vec<usize> = selector
                .rank(&catalog, &terms)
                .into_iter()
                .take(3)
                .map(|(i, _)| i)
                .collect();
            lat.push(
                chosen
                    .iter()
                    .map(|&i| f64::from(catalog.entries[i].link.latency_ms))
                    .fold(0.0, f64::max),
            );
            fee.push(
                chosen
                    .iter()
                    .map(|&i| catalog.entries[i].link.cost_per_query)
                    .sum::<f64>(),
            );
        }
        println!(
            "   {:<18} wave latency {:>6.0} ms   fees ${:>5.2}",
            name,
            mean(&lat),
            mean(&fee)
        );
    }

    section("verdict");
    println!(
        "   gGlOSS coverage with 2/12 sources: {best_at_2:.3}; query-blind by-size: {size_at_2:.3}."
    );
    assert!(
        best_at_2 > size_at_2 + 0.25,
        "summary-based selection must clearly beat query-blind selection"
    );
    println!("   shape matches GlOSS (refs [7,8]): summaries suffice to pick the right sources.");
    starts_bench::BenchArgs::parse().finish(net.registry());
}
