//! X11 — the proximity-operator compromise (§4.1.1).
//!
//! The workshop fought over `prox`: vendors found richer proximity
//! ("paragraph"/"sentence", bidirectional) "unacceptably complicated",
//! information providers found word-distance-only "unreasonably
//! limiting". This ablation quantifies both sides of that compromise on
//! one corpus:
//!
//! * **cost** — evaluation time of `prox[d,T]` vs plain `and` (what the
//!   vendors feared);
//! * **selectivity** — how much `prox` narrows the result set vs `and`
//!   (what the providers wanted it for), as the distance `d` grows.

use std::time::Instant;

use starts_bench::{header, print_table, section, standard_corpus};
use starts_index::{BoolNode, Document, Engine, EngineConfig, TermSpec};

fn main() {
    header("X11  proximity-operator ablation: cost and selectivity");
    let corpus = standard_corpus();
    let docs: Vec<Document> = corpus.all_docs();
    let engine = Engine::build(&docs, EngineConfig::default());
    println!(
        "corpus: {} documents, {} distinct terms",
        engine.index().n_docs(),
        engine.index().vocabulary_size()
    );

    // Term pairs with substantial posting lists (background vocabulary).
    let pairs = [
        ("w0000", "w0001"),
        ("w0001", "w0002"),
        ("w0000", "w0003"),
        ("w0002", "w0004"),
        ("w0001", "w0005"),
    ];

    let time_eval = |node: &BoolNode, reps: u32| -> (f64, usize) {
        let mut n = 0;
        let start = Instant::now();
        for _ in 0..reps {
            n = engine.eval_filter(node).len();
        }
        (start.elapsed().as_secs_f64() * 1e6 / f64::from(reps), n)
    };

    section("matches and evaluation cost per operator (mean over 5 term pairs)");
    let mut rows = Vec::new();
    type NodeBuilder = Box<dyn Fn(&str, &str) -> BoolNode>;
    let variants: Vec<(String, NodeBuilder)> = vec![
        (
            "and".to_string(),
            Box::new(|a: &str, b: &str| {
                BoolNode::and(
                    BoolNode::Term(TermSpec::any(a)),
                    BoolNode::Term(TermSpec::any(b)),
                )
            }),
        ),
        (
            "prox[0,T] (phrase)".to_string(),
            Box::new(|a: &str, b: &str| BoolNode::Prox {
                left: TermSpec::any(a),
                right: TermSpec::any(b),
                distance: 0,
                ordered: true,
            }),
        ),
        (
            "prox[3,T]".to_string(),
            Box::new(|a: &str, b: &str| BoolNode::Prox {
                left: TermSpec::any(a),
                right: TermSpec::any(b),
                distance: 3,
                ordered: true,
            }),
        ),
        (
            "prox[10,F]".to_string(),
            Box::new(|a: &str, b: &str| BoolNode::Prox {
                left: TermSpec::any(a),
                right: TermSpec::any(b),
                distance: 10,
                ordered: false,
            }),
        ),
        (
            "prox[50,F]".to_string(),
            Box::new(|a: &str, b: &str| BoolNode::Prox {
                left: TermSpec::any(a),
                right: TermSpec::any(b),
                distance: 50,
                ordered: false,
            }),
        ),
    ];
    let mut and_matches = 0usize;
    let mut and_cost = 0.0f64;
    for (name, build) in &variants {
        let mut total_us = 0.0;
        let mut total_matches = 0usize;
        for (a, b) in &pairs {
            let (us, n) = time_eval(&build(a, b), 50);
            total_us += us;
            total_matches += n;
        }
        let mean_us = total_us / pairs.len() as f64;
        let mean_matches = total_matches as f64 / pairs.len() as f64;
        if name == "and" {
            and_matches = total_matches;
            and_cost = mean_us;
        }
        rows.push(vec![
            name.clone(),
            format!("{mean_matches:.1}"),
            format!("{mean_us:.1}"),
            format!(
                "{:.2}x",
                if and_cost > 0.0 {
                    mean_us / and_cost
                } else {
                    1.0
                }
            ),
        ]);
    }
    print_table(
        &[
            "operator",
            "matches (mean)",
            "eval µs (mean)",
            "cost vs and",
        ],
        &rows,
    );

    section("selectivity: prox matches as a fraction of and matches");
    for (name, build) in &variants {
        let mut matches = 0usize;
        for (a, b) in &pairs {
            matches += engine.eval_filter(&build(a, b)).len();
        }
        println!(
            "   {:<20} {:>6.1}% of the and-result survives",
            name,
            100.0 * matches as f64 / and_matches.max(1) as f64
        );
    }

    section("verdict");
    println!(
        "   prox is roughly 50x costlier than and here: it must merge positional lists\n\
         for every candidate document — the vendors' implementation worry was real.\n\
         But it is also what providers wanted: at small distances it cuts the result\n\
         set by an order of magnitude. Both sides of the §4.1.1 compromise were right\n\
         about their half, which is why the operator survived in simplified form."
    );
    starts_bench::BenchArgs::parse().finish(starts_obs::Registry::global());
}
