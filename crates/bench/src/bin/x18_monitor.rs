//! X18 — continuous monitoring under an injected source degradation.
//!
//! STARTS §3.4 assumes the metasearcher continuously tracks source
//! quality; this experiment drives the whole monitoring loop — health
//! board → `MetricStore` time series → SLO burn rates → alert state
//! machine → selector demotion — through a three-phase Zipf workload:
//!
//! 1. **healthy** — every source answers; the monitor must stay silent
//!    (no alert events at all: the no-flapping guarantee);
//! 2. **degraded** — one source's query endpoint is replaced with a
//!    garbage responder (the `tests/failure_injection.rs` move); its
//!    per-source error-rate SLO must walk pending → firing, and the
//!    `HealthAware` selector demotes it to the probe floor;
//! 3. **recovery** — the source is re-wired healthy; the probes the
//!    floor kept sending drain the error window and the alert resolves.
//!
//! Time is a `ManualClock` advanced one step per query, so every run
//! of this binary produces the same alert timeline on any machine.
//!
//! Writes `BENCH_monitor.json` (override with `--out PATH`). Pass
//! `--smoke` for the CI run (smaller phases + hard assertions on the
//! alert lifecycle), `--alerts-jsonl PATH` to append the structured
//! alert event log, and `--live` for a top-style terminal dashboard
//! (sparkline series, SLO status, firing alerts) rendered as the
//! workload runs.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use starts_bench::{
    header, machine_parallelism, print_table, provenance_note, section, standard_corpus,
    wire_and_discover, zipf_workload, BenchArgs,
};
use starts_meta::metasearcher::{MetaConfig, Metasearcher};
use starts_meta::select::{GGlossSum, HealthAware};
use starts_net::host::wire_source;
use starts_net::{LinkProfile, SimNet, StartsClient};
use starts_obs::monitor::{
    AnomalyConfig, Aspect, ManualClock, Monitor, MonitorConfig, SloOp, SloSpec, StoreConfig,
};
use starts_obs::HealthBoard;
use starts_proto::query::ast::{QTerm, RankExpr};
use starts_proto::{AnswerSpec, Field, Query};
use starts_source::{Source, SourceConfig};

/// One simulated second per query: the monitor samples every query.
const STEP_MS: u64 = 1_000;

fn main() {
    let args = BenchArgs::parse();
    let smoke = args.smoke;
    let out_path = args.out_or("BENCH_monitor.json");
    // (healthy, degraded, recovery) workload sizes.
    let (n_healthy, n_degraded, n_recovery) = if smoke { (30, 12, 25) } else { (200, 60, 80) };

    header("X18  continuous monitoring: SLO burn-rate alerts under injected degradation");
    let corpus = standard_corpus();
    let victim = corpus.sources[0].id.clone();
    let workload = zipf_workload(&corpus, n_healthy + n_degraded + n_recovery, 19970526);
    println!(
        "corpus: {} sources, {} docs; workload: {} Zipf queries \
         (healthy {n_healthy} / degraded {n_degraded} / recovery {n_recovery}); victim: {victim}",
        corpus.sources.len(),
        corpus.total_docs(),
        workload.len(),
    );

    // Deterministic time: the clock advances one step per query, so the
    // alert timeline is identical on every machine.
    let clock = Arc::new(ManualClock::new(0));
    let board = Arc::new(HealthBoard::with_clock(8, 60_000, clock.clone()));
    let monitor = Arc::new(Monitor::new(MonitorConfig {
        store: StoreConfig {
            step_ms: STEP_MS,
            retention: 512,
        },
        // One objective: per-source error rate below 1%, burn-rate
        // windows sized for the 8-outcome health board above.
        slos: vec![SloSpec {
            short_window: 3,
            long_window: 6,
            for_ms: 2_000,
            ..SloSpec::new(
                "source-error-rate",
                "health.error_rate",
                &[("source", "*")],
                Aspect::Value,
                SloOp::Lt,
                0.01,
            )
        }],
        anomaly: AnomalyConfig::default(),
        clock: clock.clone(),
        log_path: None,
        events_kept: 512,
    }));
    if let Some(path) = &args.alerts_jsonl {
        let _ = std::fs::remove_file(path); // fresh log per run
        monitor.set_log(PathBuf::from(path));
    }

    // Install the monitor before wiring: /alerts endpoints capture it.
    let net = SimNet::new();
    net.set_monitor(Arc::clone(&monitor));
    let catalog = wire_and_discover(&net, &corpus);
    let n_sources = corpus.sources.len();
    let meta = Metasearcher::new(
        &net,
        catalog,
        MetaConfig {
            selector: Box::new(HealthAware::with_monitor(
                GGlossSum,
                Arc::clone(&board),
                Arc::clone(&monitor),
            )),
            // Query every source each wave: the firing victim is
            // demoted in rank but keeps receiving the probes that let
            // its error window drain and the alert resolve.
            max_sources: n_sources,
            health: Arc::clone(&board),
            ..MetaConfig::default()
        },
    );
    let client = StartsClient::new(&net);
    let alerts_url = format!("starts://{}/alerts", corpus.sources[1].id.to_lowercase());

    let run_phase = |phase: &str, queries: &[Vec<String>]| -> PhaseStats {
        let mut victim_rank_sum = 0usize;
        let start = Instant::now();
        for (i, terms) in queries.iter().enumerate() {
            clock.advance(STEP_MS);
            let resp = meta.search(&starts_query(terms));
            victim_rank_sum += resp
                .selected
                .iter()
                .position(|s| s == &victim)
                .unwrap_or(n_sources);
            if args.live {
                render_live(&monitor, phase, i + 1, queries.len(), &victim);
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
        }
        PhaseStats {
            queries: queries.len(),
            qps: queries.len() as f64 / start.elapsed().as_secs_f64().max(1e-12),
            mean_victim_rank: victim_rank_sum as f64 / queries.len().max(1) as f64,
            events_total: monitor.events_total(),
            firing: monitor.firing().len(),
        }
    };

    // Phase 1: healthy. The monitor must not make a sound.
    let healthy = run_phase("healthy", &workload[..n_healthy]);
    if smoke {
        assert_eq!(
            healthy.events_total,
            0,
            "healthy phase emitted alert events: {:?}",
            monitor.recent_events()
        );
        assert_eq!(healthy.firing, 0, "healthy phase has firing alerts");
    }

    // Phase 2: the victim's query endpoint starts answering garbage.
    net.register(
        format!("starts://{}/query", victim.to_lowercase()),
        LinkProfile::default(),
        Arc::new(|_: &[u8]| b"HTTP/1.0 500 Internal Server Error".to_vec()),
    );
    let degraded = run_phase("degraded", &workload[n_healthy..n_healthy + n_degraded]);
    let fired = monitor.is_source_firing(&victim);
    let wire_firing = client
        .fetch_alerts(&alerts_url)
        .map(|a| a.firing().len())
        .unwrap_or(0);
    if smoke {
        assert!(fired, "degradation did not fire: {:?}", monitor.alerts());
        assert!(wire_firing > 0, "firing alert not visible via /alerts");
    }

    // Phase 3: re-wire the victim healthy; probes drain the window.
    let s = &corpus.sources[0];
    wire_source(
        &net,
        Source::build(SourceConfig::new(&s.id), &s.docs),
        LinkProfile::default(),
    );
    let recovery = run_phase("recovery", &workload[n_healthy + n_degraded..]);
    let resolved = monitor.recent_events().iter().any(|e| {
        e.state == starts_obs::AlertState::Resolved && e.source.as_deref() == Some(&*victim)
    });
    if smoke {
        assert!(
            resolved,
            "alert never resolved after recovery: {:?}",
            monitor.recent_events()
        );
        assert_eq!(
            recovery.firing,
            0,
            "alerts still firing after recovery: {:?}",
            monitor.firing()
        );
    }

    section("phases");
    print_table(
        &[
            "phase",
            "queries",
            "QPS",
            "victim mean rank",
            "events so far",
            "firing at end",
        ],
        &[
            healthy.row("healthy"),
            degraded.row("degraded"),
            recovery.row("recovery"),
        ],
    );
    println!();
    println!("{}", monitor.summary_line());
    println!(
        "victim {victim}: fired={fired} resolved={resolved} \
         (mean selection rank healthy {:.1} -> degraded {:.1})",
        healthy.mean_victim_rank, degraded.mean_victim_rank
    );
    section("alert timeline");
    for e in monitor.recent_events() {
        println!(
            "  t={:>4}s  {:<8}  {}{}  value={:.2}",
            e.ts_ms / 1_000,
            e.state.name(),
            e.alert,
            e.source
                .as_deref()
                .map(|s| format!(" [{s}]"))
                .unwrap_or_default(),
            e.value,
        );
    }

    let json = render_json(
        smoke, &healthy, &degraded, &recovery, &monitor, fired, resolved,
    );
    std::fs::write(&out_path, json).expect("write BENCH_monitor.json");
    println!("wrote {out_path}");
    if let Some(path) = &args.alerts_jsonl {
        println!("alert events appended to {path}");
    }
    args.finish(net.registry());
}

/// Per-phase summary.
struct PhaseStats {
    queries: usize,
    qps: f64,
    mean_victim_rank: f64,
    events_total: u64,
    firing: usize,
}

impl PhaseStats {
    fn row(&self, name: &str) -> Vec<String> {
        vec![
            name.to_string(),
            self.queries.to_string(),
            format!("{:.0}", self.qps),
            format!("{:.1}", self.mean_victim_rank),
            self.events_total.to_string(),
            self.firing.to_string(),
        ]
    }

    fn json(&self) -> String {
        format!(
            "{{\"queries\": {}, \"qps\": {:.1}, \"mean_victim_rank\": {:.1}, \
             \"events_total\": {}, \"firing\": {}}}",
            self.queries, self.qps, self.mean_victim_rank, self.events_total, self.firing
        )
    }
}

/// The STARTS query for a term list.
fn starts_query(terms: &[String]) -> Query {
    Query {
        ranking: Some(RankExpr::list_of(
            terms
                .iter()
                .map(|t| QTerm::fielded(Field::BodyOfText, t.clone())),
        )),
        answer: AnswerSpec {
            fields: vec![Field::Title],
            max_documents: 10,
            ..AnswerSpec::default()
        },
        ..Query::default()
    }
}

/// Map the last `width` points of a series onto ▁▂▃▄▅▆▇█.
fn spark(values: &[f64], width: usize) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let tail = &values[values.len().saturating_sub(width)..];
    if tail.is_empty() {
        return String::new();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in tail {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = (hi - lo).max(1e-12);
    tail.iter()
        .map(|&v| BLOCKS[(((v - lo) / span) * 7.0).round() as usize])
        .collect()
}

/// One dashboard frame: clear the terminal, then sparklines, SLO
/// status, and the firing list.
fn render_live(monitor: &Monitor, phase: &str, done: usize, total: usize, victim: &str) {
    const WIDTH: usize = 48;
    print!("\x1b[2J\x1b[H");
    println!(
        "X18 live  phase={phase} ({done}/{total})   {}",
        monitor.summary_line()
    );
    println!();
    let series = [
        ("searches/s", "meta.searches", Vec::new(), Aspect::Rate),
        (
            "victim err",
            "health.error_rate",
            vec![("source", victim)],
            Aspect::Value,
        ),
        (
            "victim score",
            "health.score",
            vec![("source", victim)],
            Aspect::Value,
        ),
    ];
    for (label, metric, labels, aspect) in series {
        let pts = monitor.store().series(metric, &labels, aspect);
        let values: Vec<f64> = pts.iter().map(|p| p.value).collect();
        let latest = values.last().copied().unwrap_or(0.0);
        println!(
            "  {label:<12} {:<WIDTH$} {latest:.2}",
            spark(&values, WIDTH)
        );
    }
    println!();
    println!("  SLOs:");
    for s in monitor.slo_status() {
        println!(
            "    {:<18} {:<6} burn {:>6.1}/{:>6.1}  {}",
            s.slo,
            s.source.as_deref().unwrap_or("-"),
            s.burn_short,
            s.burn_long,
            if s.breaching { "BREACHING" } else { "ok" },
        );
    }
    let firing = monitor.firing();
    println!();
    if firing.is_empty() {
        println!("  firing: none");
    } else {
        println!("  firing:");
        for a in firing {
            println!(
                "    {} [{}] since t={}s (value {:.2})",
                a.name,
                a.source.as_deref().unwrap_or("-"),
                a.since_ms / 1_000,
                a.value,
            );
        }
    }
}

/// Hand-rolled JSON artifact (gated in CI by `bench_diff`).
fn render_json(
    smoke: bool,
    healthy: &PhaseStats,
    degraded: &PhaseStats,
    recovery: &PhaseStats,
    monitor: &Monitor,
    fired: bool,
    resolved: bool,
) -> String {
    let parallelism = machine_parallelism();
    let note = provenance_note(
        parallelism,
        "the alert timeline is clock-deterministic; absolute QPS is not",
    );
    format!(
        "{{\n  \"bench\": \"x18_monitor\",\n  \"note\": \"{note}\",\n  \
         \"smoke\": {smoke},\n  \"machine_parallelism\": {parallelism},\n  \
         \"qps\": {:.1},\n  \
         \"phases\": {{\n    \"healthy\": {},\n    \"degraded\": {},\n    \
         \"recovery\": {}\n  }},\n  \
         \"events_total\": {},\n  \"fired\": {fired},\n  \"resolved\": {resolved}\n}}\n",
        healthy.qps,
        healthy.json(),
        degraded.json(),
        recovery.json(),
        monitor.events_total(),
    )
}
