//! X7 — rank merging quality (§3.2, §4.2, Examples 8–9).
//!
//! Heterogeneous vendors (incompatible score scales) index topical
//! slices of one corpus; each merge strategy combines their per-query
//! results and is scored against generator-known relevance, plus rank
//! correlation against the "single combined source" reference ranking
//! the metasearcher is supposed to emulate (§1).
//!
//! Expected shape: raw-score merging collapses (the Vendor-K sources
//! capture the top ranks); TermStats-based strategies (Example 9 tf,
//! global tf–idf) and range normalization recover most of the
//! single-source quality.

use starts_bench::{header, print_table, section, standard_corpus, standard_workload};
use starts_index::{Document, Engine, EngineConfig};
use starts_meta::eval::{kendall_tau, mean, precision_at_k, recall_at_k};
use starts_meta::merge::{
    Merger, NormalizedMerge, RawScoreMerge, RoundRobinMerge, SourceResult, TfIdfMerge, TfMerge,
    WeightedMerge,
};
use starts_net::host::wire_source;
use starts_net::{LinkProfile, SimNet, StartsClient};
use starts_source::{vendors, Source, SourceConfig};

fn main() {
    header("X7  rank merging quality across heterogeneous vendors");
    let corpus = standard_corpus();
    let workload = standard_workload(&corpus);
    let net = SimNet::new();
    // Rotate vendor personalities over the topical sources.
    let personalities: Vec<fn(&str) -> SourceConfig> =
        vec![vendors::acme, vendors::bolt, vendors::okapi];
    for (i, s) in corpus.sources.iter().enumerate() {
        let mut cfg = personalities[i % personalities.len()](&s.id);
        cfg.id = s.id.clone();
        cfg.name = s.id.clone();
        cfg.base_url = format!("starts://{}", s.id.to_lowercase());
        wire_source(&net, Source::build(cfg, &s.docs), LinkProfile::default());
    }
    // The reference: one engine over ALL documents (the "illusion of a
    // single combined document source", §1).
    let all_docs: Vec<Document> = corpus.all_docs();
    let global = Engine::build(&all_docs, EngineConfig::default());

    let client = StartsClient::new(&net);
    let sizes: Vec<u64> = corpus.sources.iter().map(|s| s.docs.len() as u64).collect();

    let mut rows: Vec<Vec<String>> = Vec::new();
    let names = [
        "raw-score",
        "range-normalized",
        "round-robin",
        "termstats-tf",
        "termstats-tfidf",
        "belief-weighted",
    ];
    let mut metrics: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> =
        (0..names.len()).map(|_| (vec![], vec![], vec![])).collect();

    for gq in &workload.queries {
        // Fan out to every source.
        let mut inputs = Vec::new();
        for s in &corpus.sources {
            let metadata = client
                .fetch_metadata(&format!("starts://{}/metadata", s.id.to_lowercase()))
                .unwrap();
            let results = client
                .query(
                    &format!("starts://{}/query", s.id.to_lowercase()),
                    &gq.query,
                )
                .unwrap();
            inputs.push(SourceResult {
                metadata,
                results,
                source_weight: 1.0,
            });
        }
        // Reference ranking from the single global engine.
        let rank_ir = starts_source::translate::translate_ranking(
            gq.query.ranking.as_ref().expect("workload queries rank"),
        );
        let reference: Vec<String> = global
            .eval_ranking(&rank_ir)
            .into_iter()
            .filter_map(|(doc, _)| {
                global
                    .index()
                    .doc_field(doc, global.index().schema().get("linkage")?)
                    .map(str::to_string)
            })
            .collect();

        let tfidf = TfIdfMerge::from_inputs(&inputs, &sizes);
        let strategies: Vec<&dyn Merger> = vec![
            &RawScoreMerge,
            &NormalizedMerge,
            &RoundRobinMerge,
            &TfMerge,
            &tfidf,
            &WeightedMerge,
        ];
        for (mi, merger) in strategies.iter().enumerate() {
            let merged = merger.merge(&inputs);
            let ranked: Vec<String> = merged.into_iter().map(|d| d.linkage).collect();
            metrics[mi]
                .0
                .push(precision_at_k(&ranked, &gq.relevant, 10));
            metrics[mi].1.push(recall_at_k(&ranked, &gq.relevant, 30));
            metrics[mi].2.push(kendall_tau(&ranked, &reference));
        }
    }

    for (name, (p, r, t)) in names.iter().zip(&metrics) {
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", mean(p)),
            format!("{:.3}", mean(r)),
            format!("{:.3}", mean(t)),
        ]);
    }
    section(&format!(
        "mean over {} queries, {} sources (vendors rotated acme/bolt/okapi)",
        workload.queries.len(),
        corpus.sources.len()
    ));
    print_table(
        &["merge strategy", "P@10", "R@30", "tau vs single-source"],
        &rows,
    );

    section("verdict");
    let p10 = |name: &str| -> f64 {
        let i = names.iter().position(|n| *n == name).unwrap();
        mean(&metrics[i].0)
    };
    println!(
        "   raw-score P@10 = {:.3}; best statistics-based = {:.3}",
        p10("raw-score"),
        p10("termstats-tfidf")
            .max(p10("termstats-tf"))
            .max(p10("range-normalized")),
    );
    assert!(
        p10("termstats-tfidf").max(p10("termstats-tf")) >= p10("raw-score"),
        "TermStats merging must not lose to raw scores"
    );
    println!(
        "   shape matches §3.2/Example 9: scores alone are incomparable; the exported\n\
         statistics are what make meaningful merging possible."
    );
    starts_bench::BenchArgs::parse().finish(net.registry());
}
