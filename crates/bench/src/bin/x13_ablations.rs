//! X13 — ablations of the reproduction's own design choices (beyond the
//! paper's artifacts; DESIGN.md §6).
//!
//! Three engineering decisions in this implementation correspond to
//! latitude the paper deliberately left to implementers. Each ablation
//! flips one choice and measures the consequence:
//!
//! 1. **Fuzzy vs. flattened ranking operators** — §4.1.1 allows a source
//!    to interpret Boolean-like ranking operators as fuzzy connectives or
//!    to "simply ignore" them (Example 4). Does it matter?
//! 2. **Stemming at index time vs. query-time vocabulary scan** — the
//!    `Stem` modifier can be served by a stemmed index (O(1) lookup) or
//!    by scanning the vocabulary (no index commitment). Cost vs.
//!    flexibility.
//! 3. **Field-qualified vs. flat content summaries** — §4.3.2 prefers
//!    field-qualified word lists "if possible". What does qualification
//!    buy source selection, and what does it cost in bytes?

use std::time::Instant;

use starts_bench::{header, print_table, section, standard_corpus};
use starts_corpus::generate_workload;
use starts_index::{BoolNode, Engine, EngineConfig, TermMatch, TermSpec};
use starts_meta::catalog::{Catalog, CatalogEntry};
use starts_meta::eval::{mean, selection_recall};
use starts_meta::metasearcher::Metasearcher;
use starts_meta::select::{GGlossSum, Selector};
use starts_net::LinkProfile;
use starts_proto::query::parse_ranking;
use starts_proto::SourceMetadata;
use starts_source::{Source, SourceConfig};
use starts_text::AnalyzerConfig;

fn main() {
    header("X13  design-choice ablations (implementation latitude the paper left open)");
    ablation_fuzzy_ops();
    ablation_stemming();
    ablation_summary_fields();
}

/// 1. Fuzzy vs flattened ranking operators (Example 4's two readings).
fn ablation_fuzzy_ops() {
    section("1. fuzzy ranking operators vs flatten-to-list (Example 4)");
    let corpus = standard_corpus();
    let docs = corpus.all_docs();
    let fuzzy = Engine::build(
        &docs,
        EngineConfig {
            fuzzy_ranking_ops: true,
            ..EngineConfig::default()
        },
    );
    let flat = Engine::build(
        &docs,
        EngineConfig {
            fuzzy_ranking_ops: false,
            ..EngineConfig::default()
        },
    );
    // Query shape where the interpretations diverge: and-queries over
    // terms with asymmetric frequencies.
    let queries = [
        r#"((body-of-text "w0001") and (body-of-text "w0050"))"#,
        r#"((body-of-text "w0002") and (body-of-text "t0x001"))"#,
        r#"((body-of-text "w0000") or (body-of-text "w0100"))"#,
    ];
    let mut rows = Vec::new();
    for q in &queries {
        let expr = parse_ranking(q).unwrap();
        let ir = starts_source::translate::translate_ranking(&expr);
        let rf = fuzzy.eval_ranking(&ir);
        let rl = flat.eval_ranking(&ir);
        // How much do the two engines' rankings agree on their top 10?
        let top = |r: &[(starts_index::DocId, f64)]| -> Vec<u32> {
            r.iter().take(10).map(|(d, _)| d.0).collect()
        };
        let tf = top(&rf);
        let tl = top(&rl);
        let overlap = tf.iter().filter(|d| tl.contains(d)).count();
        rows.push(vec![
            q.chars().take(48).collect::<String>(),
            rf.len().to_string(),
            rl.len().to_string(),
            format!("{overlap}/10"),
        ]);
    }
    print_table(
        &[
            "ranking expression",
            "fuzzy hits",
            "flat hits",
            "top-10 overlap",
        ],
        &rows,
    );
    println!(
        "   `and` under fuzzy semantics scores only co-occurring docs above zero;\n\
         flattened-to-list scores any doc with either term — both behaviours are\n\
         protocol-legal, which is exactly why the actual query must be reported."
    );
}

/// 2. Stemming at index time vs query-time vocabulary scan.
fn ablation_stemming() {
    section("2. stem support: stemmed index (direct lookup) vs vocabulary scan");
    let corpus = standard_corpus();
    let docs = corpus.all_docs();
    let stemmed_index = Engine::build(
        &docs,
        EngineConfig {
            analyzer: AnalyzerConfig {
                stem: true,
                ..AnalyzerConfig::default()
            },
            ..EngineConfig::default()
        },
    );
    let plain_index = Engine::build(&docs, EngineConfig::default());
    let query = BoolNode::Term(TermSpec::any("w0001").with(TermMatch::Stem));
    let time = |engine: &Engine| -> (f64, usize) {
        let mut n = 0;
        let start = Instant::now();
        for _ in 0..30 {
            n = engine.eval_filter(&query).len();
        }
        (start.elapsed().as_secs_f64() * 1e6 / 30.0, n)
    };
    let (us_direct, n_direct) = time(&stemmed_index);
    let (us_scan, n_scan) = time(&plain_index);
    print_table(
        &["strategy", "matches", "eval µs"],
        &[
            vec![
                "stemmed index (lookup)".to_string(),
                n_direct.to_string(),
                format!("{us_direct:.1}"),
            ],
            vec![
                "plain index (vocab scan)".to_string(),
                n_scan.to_string(),
                format!("{us_scan:.1}"),
            ],
        ],
    );
    println!(
        "   the stemmed index answers stem queries ~{:.0}x faster, but commits the\n\
         whole index (and its content summary!) to stems — the flexibility/cost\n\
         trade every vendor at the workshop weighed.",
        (us_scan / us_direct.max(1e-9)).max(1.0)
    );
}

/// 3. Field-qualified vs flat summaries for source selection.
fn ablation_summary_fields() {
    section("3. content summaries: field-qualified vs flat (§4.3.2 \"if possible\")");
    let corpus = standard_corpus();
    let workload = generate_workload(
        &corpus,
        &starts_corpus::WorkloadConfig {
            n_queries: 30,
            ..starts_corpus::WorkloadConfig::default()
        },
    );
    let mut rows = Vec::new();
    for qualified in [true, false] {
        let mut catalog = Catalog::default();
        let mut bytes = 0u64;
        for s in &corpus.sources {
            let mut cfg = SourceConfig::new(&s.id);
            cfg.summary_fields_qualified = qualified;
            let src = Source::build(cfg, &s.docs);
            let summary = src.content_summary();
            bytes += starts_soif::write_object(&summary.to_soif()).len() as u64;
            catalog.entries.push(CatalogEntry {
                id: s.id.clone(),
                metadata_url: String::new(),
                metadata: SourceMetadata {
                    source_id: s.id.clone(),
                    ..SourceMetadata::default()
                },
                summary,
                sample_results: Vec::new(),
                link: LinkProfile::default(),
            });
        }
        let mut cov = Vec::new();
        for gq in &workload.queries {
            let owned = Metasearcher::selection_terms(&gq.query);
            let terms: Vec<(Option<&str>, &str)> = owned
                .iter()
                .map(|(f, t)| (f.as_deref(), t.as_str()))
                .collect();
            let chosen: Vec<usize> = GGlossSum
                .rank(&catalog, &terms)
                .into_iter()
                .take(2)
                .map(|(i, _)| i)
                .collect();
            cov.push(selection_recall(&chosen, &gq.relevant_by_source));
        }
        rows.push(vec![
            if qualified { "field-qualified" } else { "flat" }.to_string(),
            format!("{:.1}", bytes as f64 / 1024.0),
            format!("{:.3}", mean(&cov)),
        ]);
    }
    print_table(
        &["summary style", "total KB", "merit coverage (n=2)"],
        &rows,
    );
    println!(
        "   field qualification costs bytes (words repeat per field) and here buys\n\
         little coverage — the workload queries one field. It pays off for fielded\n\
         workloads (title-only queries against title-section statistics); the paper's\n\
         \"if possible\" hedge is the right default."
    );
    starts_bench::BenchArgs::parse().finish(starts_obs::Registry::global());
}
