//! X3 — the §4.1.1 modifier table, regenerated, plus the live
//! `ModifiersSupported` matrix of the vendor fleet and a behavioural
//! check that each advertised modifier actually changes matching.

use starts_bench::{header, mark, print_table, section};
use starts_index::Document;
use starts_proto::attrs::BASIC1_MODIFIERS;
use starts_proto::query::parse_filter;
use starts_proto::{Modifier, Query};
use starts_source::{vendors, Source};

fn main() {
    header("X3  §4.1.1 modifier table (Basic-1) — paper table, regenerated");
    let rows: Vec<Vec<String>> = BASIC1_MODIFIERS
        .iter()
        .map(|(label, representative, new)| {
            vec![
                label.to_string(),
                representative.default_behaviour().to_string(),
                if *new { "Yes" } else { "No" }.to_string(),
            ]
        })
        .collect();
    print_table(&["Modifier", "Default", "New?"], &rows);

    section("live support matrix: ModifiersSupported across the vendor fleet");
    let docs = vec![
        Document::new()
            .field("title", "Database Systems")
            .field("author", "Ullman")
            .field("body-of-text", "databases and database design")
            .field("linkage", "http://x/1"),
        Document::new()
            .field("title", "The Who: a History")
            .field("author", "Ulman") // phonetic variant
            .field("body-of-text", "rock music history")
            .field("linkage", "http://x/2"),
    ];
    let sources: Vec<Source> = vendors::fleet()
        .into_iter()
        .map(|cfg| Source::build(cfg, &docs))
        .collect();
    let mut columns: Vec<&str> = vec!["Modifier"];
    let ids: Vec<String> = sources.iter().map(|s| s.id().to_string()).collect();
    columns.extend(ids.iter().map(String::as_str));
    let rows: Vec<Vec<String>> = BASIC1_MODIFIERS
        .iter()
        .map(|(label, representative, _)| {
            let mut row = vec![label.to_string()];
            for s in &sources {
                row.push(mark(s.metadata().supports_modifier(representative)));
            }
            row
        })
        .collect();
    print_table(&columns, &rows);

    section("behavioural check: the stem modifier changes the result set");
    for s in &sources {
        let plain = Query::filter_only(parse_filter(r#"(title "databases")"#).unwrap());
        let stemmed = Query::filter_only(parse_filter(r#"(title stem "databases")"#).unwrap());
        let n_plain = s.execute(&plain).documents.len();
        let n_stem = s.execute(&stemmed).documents.len();
        let supports = s.metadata().supports_modifier(&Modifier::Stem);
        println!(
            "   {:<13} supports stem: {:<3}  plain \"databases\": {}  stem \"databases\": {}",
            s.id(),
            mark(supports),
            n_plain,
            n_stem
        );
        if supports {
            assert!(
                n_stem >= n_plain,
                "{}: stemming must not shrink the result set",
                s.id()
            );
        }
    }
    starts_bench::BenchArgs::parse().finish(starts_obs::Registry::global());
}
