//! X17 — concurrent serving throughput (beyond the paper's artifacts).
//!
//! The scoped metasearcher executes one query at a time; the serving
//! layer (`starts-serve`) runs the same pipeline stages under fixed
//! worker pools with singleflight, caching, hedging, and deadlines.
//! Two experiments:
//!
//! * **scaling** — N concurrent clients hammer one [`Server`] (cache
//!   and hedging off, so every query pays the full wave): QPS and
//!   per-request p50/p95/p99 versus client count, plus a direct
//!   [`Metasearcher`] run as the single-caller reference. On a
//!   multi-core machine QPS grows with client count; on a single core
//!   the curve is flat and the artifact's `machine_parallelism` field
//!   says so.
//! * **hedged tail** — the network is paced into real time and one
//!   source is made a straggler (400 simulated ms against 50 for the
//!   rest) with a fast replica wired beside it. With hedging off every
//!   query waits for the straggler; with hedging on the health-derived
//!   delay fires a backup to the replica and the tail collapses.
//!
//! Writes `BENCH_concurrency.json` (override with `--out PATH`); pass
//! `--smoke` for a seconds-scale CI run.

use std::collections::HashMap;
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use starts_bench::{
    header, machine_parallelism, print_table, provenance_note, section, standard_corpus,
    wire_and_discover, zipf_workload, BenchArgs,
};
use starts_corpus::{generate_corpus, CorpusConfig, GeneratedCorpus};
use starts_meta::catalog::Catalog;
use starts_meta::metasearcher::{MetaConfig, Metasearcher};
use starts_net::{host::wire_source, LinkProfile, SimNet, StartsClient};
use starts_proto::query::ast::{QTerm, RankExpr};
use starts_proto::{AnswerSpec, Field, Query};
use starts_serve::{HedgeConfig, ServeConfig, Server};
use starts_source::{Source, SourceConfig};

/// Result-list bound, matching the X14 hot-path regime.
const K: usize = 10;

/// Client count for the hedged-tail experiment.
const HEDGE_CLIENTS: usize = 4;

/// Pacing for the hedged-tail experiment: 50µs of wall time per
/// simulated millisecond (the straggler's 400 sim ms → 20ms wall).
const HEDGE_PACING: u64 = 50;

fn main() {
    let args = BenchArgs::parse();
    let smoke = args.smoke;
    let out_path = args.out_or("BENCH_concurrency.json");
    let n_queries = if smoke { 60 } else { 320 };
    let client_counts: &[usize] = if smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };

    header("X17  concurrent serving: executor pool scaling and hedged tails");
    let corpus = if smoke {
        standard_corpus()
    } else {
        generate_corpus(&CorpusConfig {
            n_sources: 12,
            docs_per_source: 200,
            n_topics: 4,
            background_vocab: 1500,
            topic_vocab: 100,
            doc_len: (25, 90),
            topic_skew: 0.35,
            bilingual_fraction: 0.0,
            seed: 19970526,
        })
    };
    let terms = zipf_workload(&corpus, n_queries, 1997);
    println!(
        "corpus: {} sources, {} docs; workload: {} Zipf queries; k = {K}",
        corpus.sources.len(),
        corpus.total_docs(),
        terms.len()
    );

    // --- Scaling: QPS and latency vs concurrent client count. -------
    let net = Arc::new(SimNet::new());
    let catalog = wire_and_discover(&net, &corpus);

    // Reference: the scoped metasearcher, one caller, no serving layer.
    let meta = Metasearcher::new(
        &net,
        catalog.clone(),
        MetaConfig {
            max_results: K,
            ..MetaConfig::default()
        },
    );
    let direct = {
        for t in terms.iter().take(5) {
            meta.search(&starts_query(t));
        }
        let mut lat = Vec::with_capacity(terms.len());
        let total = Instant::now();
        for t in terms.iter() {
            let start = Instant::now();
            std::hint::black_box(meta.search(&starts_query(t)).merged.len());
            lat.push(start.elapsed().as_secs_f64() * 1e6);
        }
        PathStats::from_latencies(lat, total.elapsed().as_secs_f64())
    };
    drop(meta);

    section("scaling: N clients against one server (cache off, hedge off)");
    let mut scaling: Vec<(usize, PathStats)> = Vec::new();
    for &clients in client_counts {
        let server = Server::new(
            Arc::clone(&net),
            catalog.clone(),
            MetaConfig {
                max_results: K,
                ..MetaConfig::default()
            },
            ServeConfig {
                query_workers: clients,
                queue_capacity: 2 * clients + 16,
                cache_ttl: Duration::ZERO,
                hedge: HedgeConfig {
                    enabled: false,
                    ..HedgeConfig::default()
                },
                ..ServeConfig::default()
            },
        );
        scaling.push((clients, run_clients(&server, &terms, clients)));
    }
    let mut rows: Vec<Vec<String>> = vec![direct.row("direct (no pool)")];
    rows.extend(scaling.iter().map(|(c, s)| {
        s.row(&format!(
            "serve, {c} client{}",
            if *c == 1 { "" } else { "s" }
        ))
    }));
    print_table(&["path", "QPS", "p50 µs", "p95 µs", "p99 µs"], &rows);
    let one_client = &scaling[0].1;
    println!();
    println!(
        "1-client serving overhead vs direct: {:+.1}% QPS",
        (one_client.qps / direct.qps.max(1e-9) - 1.0) * 100.0
    );

    // --- Hedged tail: a straggler source with a fast replica. -------
    section("hedged tail: one 400ms straggler among 50ms sources, fast replica");
    let straggler = corpus.sources[0].id.clone();
    let (hedge_net, hedge_catalog, replicas) = wire_with_straggler(&corpus, &straggler);
    let hedge_terms = zipf_workload(&corpus, if smoke { 40 } else { 160 }, 2026);
    let tail = |hedge_on: bool| -> PathStats {
        hedge_net.set_pacing(HEDGE_PACING);
        let server = Server::new(
            Arc::clone(&hedge_net),
            hedge_catalog.clone(),
            MetaConfig {
                max_results: K,
                max_sources: corpus.sources.len(), // every wave meets the straggler
                ..MetaConfig::default()
            },
            ServeConfig {
                query_workers: HEDGE_CLIENTS,
                // Paced dispatches hold a worker while they sleep; give
                // every in-flight (source, hedge) pair its own worker so
                // queueing doesn't mask the straggler.
                dispatch_workers: 2 * HEDGE_CLIENTS * corpus.sources.len(),
                queue_capacity: 2 * HEDGE_CLIENTS + 16,
                cache_ttl: Duration::ZERO,
                hedge: HedgeConfig {
                    enabled: hedge_on,
                    factor: 0.25,
                    min_delay_ms: 100, // fires at 100 sim ms, well before 400
                },
                replicas: replicas.clone(),
                ..ServeConfig::default()
            },
        );
        let stats = run_clients(&server, &hedge_terms, HEDGE_CLIENTS);
        hedge_net.set_pacing(0);
        stats
    };
    let hedge_off = tail(false);
    let hedge_on = tail(true);
    let snap = hedge_net.registry().snapshot();
    let hedges_launched = snap.counter("serve.hedge.launched", &[("source", &straggler)]);
    let hedge_wins = snap.counter("serve.hedge.wins", &[("source", &straggler)]);
    print_table(
        &["hedging", "QPS", "p50 µs", "p95 µs", "p99 µs"],
        &[hedge_off.row("off"), hedge_on.row("on")],
    );
    println!();
    println!(
        "hedges launched {hedges_launched}, won {hedge_wins}; \
         p95 {:.0}µs -> {:.0}µs",
        hedge_off.p95_us, hedge_on.p95_us
    );

    let json = render_json(
        smoke,
        &corpus,
        n_queries,
        &direct,
        &scaling,
        &hedge_off,
        &hedge_on,
        hedges_launched,
        hedge_wins,
    );
    std::fs::write(&out_path, json).expect("write BENCH_concurrency.json");
    println!("wrote {out_path}");
}

/// Drive `clients` threads over even shares of the workload against one
/// server; aggregate per-request latencies across all threads.
fn run_clients(server: &Server, terms: &[Vec<String>], clients: usize) -> PathStats {
    // Warmup outside the timed window.
    for t in terms.iter().take(5) {
        server.search(&starts_query(t)).expect("warmup query");
    }
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(terms.len()));
    let barrier = Barrier::new(clients);
    let total = Instant::now();
    std::thread::scope(|scope| {
        for chunk in chunks(terms, clients) {
            let (latencies, barrier) = (&latencies, &barrier);
            scope.spawn(move || {
                let mut local = Vec::with_capacity(chunk.len());
                barrier.wait();
                for t in chunk {
                    let start = Instant::now();
                    let outcome = server.search(&starts_query(t)).expect("serve query");
                    std::hint::black_box(outcome.response.merged.len());
                    local.push(start.elapsed().as_secs_f64() * 1e6);
                }
                latencies.lock().expect("latency sink").extend(local);
            });
        }
    });
    let elapsed = total.elapsed().as_secs_f64();
    PathStats::from_latencies(latencies.into_inner().expect("latency sink"), elapsed)
}

/// Split a slice into `n` near-even contiguous chunks (no empties).
fn chunks<T>(items: &[T], n: usize) -> Vec<&[T]> {
    let size = items.len().div_ceil(n.max(1));
    items.chunks(size.max(1)).collect()
}

/// Wire the corpus with one straggler source (400 sim ms) and a fast
/// replica of it; every other source sits behind a 50ms link.
fn wire_with_straggler(
    corpus: &GeneratedCorpus,
    straggler: &str,
) -> (Arc<SimNet>, Catalog, HashMap<String, String>) {
    let net = Arc::new(SimNet::new());
    for s in &corpus.sources {
        let latency_ms = if s.id == straggler { 400 } else { 50 };
        wire_source(
            &net,
            Source::build(SourceConfig::new(&s.id), &s.docs),
            LinkProfile {
                latency_ms,
                cost_per_query: 0.0,
            },
        );
    }
    // The replica: same documents, its own endpoints, a fast link.
    let replica_id = format!("{straggler}-r");
    let replica_docs = &corpus
        .sources
        .iter()
        .find(|s| s.id == straggler)
        .expect("straggler in corpus")
        .docs;
    let replica_url = wire_source(
        &net,
        Source::build(SourceConfig::new(&replica_id), replica_docs),
        LinkProfile {
            latency_ms: 40,
            cost_per_query: 0.0,
        },
    );
    let client = StartsClient::new(&net);
    let mut catalog = Catalog::default();
    for s in &corpus.sources {
        catalog
            .discover_source(
                &client,
                &format!("starts://{}/metadata", s.id.to_lowercase()),
                LinkProfile::default(),
                false,
            )
            .expect("discovery");
    }
    let replicas = HashMap::from([(straggler.to_string(), replica_url)]);
    (net, catalog, replicas)
}

/// Per-run timing summary.
struct PathStats {
    qps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

impl PathStats {
    fn from_latencies(mut lat_us: Vec<f64>, elapsed_s: f64) -> Self {
        let n = lat_us.len();
        lat_us.sort_by(f64::total_cmp);
        let pct = |p: f64| -> f64 {
            let idx = ((n - 1) as f64 * p).round() as usize;
            lat_us[idx]
        };
        PathStats {
            qps: n as f64 / elapsed_s.max(1e-12),
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
        }
    }

    fn row(&self, name: &str) -> Vec<String> {
        vec![
            name.to_string(),
            format!("{:.0}", self.qps),
            format!("{:.1}", self.p50_us),
            format!("{:.1}", self.p95_us),
            format!("{:.1}", self.p99_us),
        ]
    }

    fn json(&self) -> String {
        format!(
            "{{\"qps\": {:.1}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}}}",
            self.qps, self.p50_us, self.p95_us, self.p99_us
        )
    }
}

/// The STARTS query for a term list, bounded to `K` documents.
fn starts_query(terms: &[String]) -> Query {
    Query {
        ranking: Some(RankExpr::list_of(
            terms
                .iter()
                .map(|t| QTerm::fielded(Field::BodyOfText, t.clone())),
        )),
        answer: AnswerSpec {
            fields: vec![Field::Title],
            max_documents: K,
            ..AnswerSpec::default()
        },
        ..Query::default()
    }
}

/// Hand-rolled JSON artifact (schema documented in
/// `docs/performance.md`).
#[allow(clippy::too_many_arguments)]
fn render_json(
    smoke: bool,
    corpus: &GeneratedCorpus,
    n_queries: usize,
    direct: &PathStats,
    scaling: &[(usize, PathStats)],
    hedge_off: &PathStats,
    hedge_on: &PathStats,
    hedges_launched: u64,
    hedge_wins: u64,
) -> String {
    let parallelism = machine_parallelism();
    let note = provenance_note(
        parallelism,
        "QPS scales with client count only when cores are available; \
         the hedged-tail rows are paced (sleep-bound) and stable",
    );
    let scaling_json: Vec<String> = scaling
        .iter()
        .map(|(clients, stats)| {
            format!(
                "{{\"clients\": {clients}, \"qps\": {:.1}, \"p50_us\": {:.1}, \
                 \"p95_us\": {:.1}, \"p99_us\": {:.1}}}",
                stats.qps, stats.p50_us, stats.p95_us, stats.p99_us
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"x17_concurrency\",\n  \"note\": \"{note}\",\n  \
         \"smoke\": {smoke},\n  \"k\": {K},\n  \
         \"queries\": {n_queries},\n  \"machine_parallelism\": {parallelism},\n  \
         \"corpus\": {{\"sources\": {}, \"docs\": {}}},\n  \
         \"direct\": {},\n  \
         \"scaling\": [\n    {}\n  ],\n  \
         \"hedged\": {{\n    \"clients\": {HEDGE_CLIENTS},\n    \
         \"pacing_us_per_ms\": {HEDGE_PACING},\n    \
         \"off\": {},\n    \"on\": {},\n    \
         \"hedges_launched\": {hedges_launched},\n    \
         \"hedge_wins\": {hedge_wins}\n  }}\n}}\n",
        corpus.sources.len(),
        corpus.total_docs(),
        direct.json(),
        scaling_json.join(",\n    "),
        hedge_off.json(),
        hedge_on.json(),
    )
}
