//! X16 — dynamic pruning: score-upper-bound top-k vs exhaustive scoring
//! (beyond the paper's artifacts).
//!
//! The bounded top-k pipeline (X14) still *scores every candidate* and
//! lets the heap discard the losers. Dynamic pruning skips the scoring
//! itself: at build time the engine records, per (field, term), the
//! largest partial score any document can contribute; at query time the
//! leaves are walked in descending-bound order and a document is
//! abandoned the moment its remaining upper bound falls strictly below
//! the top-k threshold. Under sharding the threshold is shared across
//! shards through an atomic cell, so one shard's full heap tightens
//! every other shard's bound check. The results are *bit-identical* to
//! the unpruned path (enforced here by a spot check and exhaustively by
//! `crates/index/tests/prune_properties.rs`).
//!
//! This experiment measures the pruned vs unpruned query path
//! (`PruneMode::Auto` vs `PruneMode::Off`) at shard counts 1 and 4 on
//! the X14 Zipf workload: QPS, p50/p95/p99 latency, and the fraction of
//! candidate documents the bound check discarded without scoring.
//!
//! Writes `BENCH_prune.json` (override with `--out PATH`); pass
//! `--smoke` for a seconds-scale CI run on the standard corpus.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use starts_bench::{
    header, machine_parallelism, print_table, provenance_note, section, standard_corpus, BenchArgs,
};
use starts_corpus::{generate_corpus, CorpusConfig, GeneratedCorpus, Zipf};
use starts_index::{
    EngineConfig, PruneMode, PruneReport, RankNode, SearchOptions, ShardedEngine, TermSpec,
};

/// Result-list bound for every query (the X14 regime).
const K: usize = 10;

/// Shard counts under measurement: the monolithic engine and a fan-out
/// wide enough that threshold sharing matters.
const SHARD_COUNTS: &[usize] = &[1, 4];

fn main() {
    let args = BenchArgs::parse();
    let smoke = args.smoke;
    let out_path = args.out_or("BENCH_prune.json");
    let n_queries = if smoke { 60 } else { 400 };
    let parallelism = machine_parallelism();

    header("X16  dynamic pruning: score-upper-bound top-k vs exhaustive scoring");
    let corpus = if smoke {
        standard_corpus()
    } else {
        generate_corpus(&CorpusConfig {
            n_sources: 12,
            docs_per_source: 400,
            n_topics: 4,
            background_vocab: 1500,
            topic_vocab: 100,
            doc_len: (25, 90),
            topic_skew: 0.35,
            bilingual_fraction: 0.0,
            seed: 19970526,
        })
    };
    let docs = corpus.all_docs();
    let terms = zipf_workload(&corpus, n_queries, 1997);
    println!(
        "corpus: {} docs; workload: {} Zipf queries; k = {K}; \
         machine parallelism: {parallelism}",
        docs.len(),
        terms.len()
    );

    let config = |shards: usize, prune: PruneMode| EngineConfig {
        shards,
        prune,
        ..EngineConfig::default()
    };
    let opts = SearchOptions {
        limit: Some(K),
        ..SearchOptions::default()
    };

    // Baseline for the exactness spot check: monolithic, unpruned.
    let baseline = ShardedEngine::build(&docs, config(1, PruneMode::Off));

    let mut rows = Vec::new();
    let mut stats = Vec::new();
    for &shards in SHARD_COUNTS {
        for prune in [PruneMode::Off, PruneMode::Auto] {
            let engine = ShardedEngine::build(&docs, config(shards, prune));

            // Exactness spot check on the first queries of the
            // workload, and the prune tallies over all of them; the
            // property suite covers exactness exhaustively.
            let mut report = PruneReport::default();
            for (i, t) in terms.iter().enumerate() {
                let node = rank_node(t);
                let (hits, _, r) = engine.search_top_k_observed(None, Some(&node), &opts);
                report.candidates += r.candidates;
                report.skipped_docs += r.skipped_docs;
                report.skipped_leaves += r.skipped_leaves;
                report.threshold_updates += r.threshold_updates;
                if i < 10 {
                    assert_eq!(
                        hits,
                        baseline.search_top_k(None, Some(&node), Some(K)),
                        "pruned top-k diverged at shards={shards} prune={prune:?}"
                    );
                }
            }
            match prune {
                PruneMode::Auto => assert!(
                    report.skipped_docs > 0,
                    "pruning never engaged on the Zipf workload: {report:?}"
                ),
                PruneMode::Off => assert_eq!(report.skipped_docs, 0),
            }
            let pruned_fraction = if report.candidates > 0 {
                report.skipped_docs as f64 / report.candidates as f64
            } else {
                0.0
            };

            let qs = measure(&terms, |t| {
                let node = rank_node(t);
                engine
                    .search_top_k_observed(None, Some(&node), &opts)
                    .0
                    .len()
            });
            rows.push(vec![
                shards.to_string(),
                format!("{prune:?}"),
                format!("{:.0}", qs.qps),
                format!("{:.1}", qs.p50_us),
                format!("{:.1}", qs.p95_us),
                format!("{:.1}", qs.p99_us),
                format!("{:.1}%", pruned_fraction * 100.0),
            ]);
            stats.push(PruneStats {
                shards,
                prune,
                qs,
                pruned_fraction,
                report,
            });
        }
    }

    section("query latency: pruned vs unpruned per shard count");
    print_table(
        &[
            "shards", "prune", "QPS", "p50 µs", "p95 µs", "p99 µs", "pruned",
        ],
        &rows,
    );
    println!();
    for pair in stats.chunks(2) {
        let (off, auto) = (&pair[0], &pair[1]);
        println!(
            "shards={}: prune {:.2}x QPS vs off ({:.0} -> {:.0}), \
             {:.1}% of candidates skipped unscored",
            auto.shards,
            auto.qs.qps / off.qs.qps.max(1e-9),
            off.qs.qps,
            auto.qs.qps,
            auto.pruned_fraction * 100.0
        );
    }

    let json = render_json(smoke, docs.len(), n_queries, parallelism, &stats);
    std::fs::write(&out_path, json).expect("write BENCH_prune.json");
    println!("wrote {out_path}");
}

/// Per-configuration measurements.
struct PruneStats {
    shards: usize,
    prune: PruneMode,
    qs: QueryStats,
    pruned_fraction: f64,
    report: PruneReport,
}

/// Query-side timing summary (the X14 `PathStats` shape).
struct QueryStats {
    qps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

/// Time one closure over the whole workload (after a short warmup) and
/// summarize per-query latency.
fn measure(terms: &[Vec<String>], mut run: impl FnMut(&[String]) -> usize) -> QueryStats {
    for t in terms.iter().take(5) {
        run(t);
    }
    let mut lat_us: Vec<f64> = Vec::with_capacity(terms.len());
    let total = Instant::now();
    for t in terms {
        let start = Instant::now();
        std::hint::black_box(run(t));
        lat_us.push(start.elapsed().as_secs_f64() * 1e6);
    }
    let elapsed = total.elapsed().as_secs_f64();
    lat_us.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        let idx = ((lat_us.len() - 1) as f64 * p).round() as usize;
        lat_us[idx]
    };
    QueryStats {
        qps: terms.len() as f64 / elapsed.max(1e-12),
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
    }
}

/// The same Zipf workload X14 draws: 1–3 words per query, mostly common
/// background vocabulary, sometimes a rare topic word.
fn zipf_workload(corpus: &GeneratedCorpus, n: usize, seed: u64) -> Vec<Vec<String>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bg = Zipf::new(corpus.background.len(), 1.0);
    let topic = Zipf::new(corpus.topics[0].len(), 0.8);
    (0..n)
        .map(|_| {
            let k = rng.gen_range(1..=3);
            (0..k)
                .map(|_| {
                    if rng.gen_bool(0.3) {
                        let t = rng.gen_range(0..corpus.topics.len());
                        corpus.topics[t][topic.sample(&mut rng)].clone()
                    } else {
                        corpus.background[bg.sample(&mut rng)].clone()
                    }
                })
                .collect()
        })
        .collect()
}

/// The engine-level ranking expression for a term list.
fn rank_node(terms: &[String]) -> RankNode {
    RankNode::List(
        terms
            .iter()
            .map(|t| RankNode::term(TermSpec::fielded("body-of-text", t)))
            .collect(),
    )
}

/// Hand-rolled JSON artifact (schema documented in
/// `docs/performance.md`).
fn render_json(
    smoke: bool,
    n_docs: usize,
    n_queries: usize,
    parallelism: usize,
    stats: &[PruneStats],
) -> String {
    let configs: Vec<String> = stats
        .iter()
        .map(|s| {
            format!(
                "    {{\"shards\": {}, \"prune\": \"{:?}\", \"qps\": {:.1}, \
                 \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, \
                 \"pruned_fraction\": {:.4}, \"skipped_docs\": {}, \"candidates\": {}}}",
                s.shards,
                s.prune,
                s.qs.qps,
                s.qs.p50_us,
                s.qs.p95_us,
                s.qs.p99_us,
                s.pruned_fraction,
                s.report.skipped_docs,
                s.report.candidates
            )
        })
        .collect();
    let note = provenance_note(
        parallelism,
        "with fewer cores than shards the fan-out adds overhead pruning must \
         first pay back",
    );
    format!(
        "{{\n  \"bench\": \"x16_prune\",\n  \
         \"note\": \"{note}\",\n  \
         \"smoke\": {smoke},\n  \"k\": {K},\n  \"queries\": {n_queries},\n  \
         \"docs\": {n_docs},\n  \"machine_parallelism\": {parallelism},\n  \
         \"configs\": [\n{}\n  ]\n}}\n",
        configs.join(",\n")
    )
}
