//! X16 — dynamic pruning: Block-Max-WAND top-k vs exhaustive scoring
//! (beyond the paper's artifacts).
//!
//! The bounded top-k pipeline (X14) still *scores every candidate* and
//! lets the heap discard the losers. Block-Max WAND skips the scoring
//! itself: postings live in fixed 128-doc bit-packed blocks (doc-id
//! deltas and tfs frame-of-reference packed at the block's own bit
//! widths) with a per-block score upper bound recorded at build time;
//! at query time doc-sorted cursors select a pivot against the top-k
//! threshold θ and whole blocks whose bound
//! falls strictly below θ are jumped without ever being decoded —
//! including through `and`/`or`/weighted operator *trees*, whose bound
//! is propagated bottom-up per block. Under sharding θ is shared across
//! shards through an atomic cell, so one shard's full heap tightens
//! every other shard's bound check. The results are *bit-identical* to
//! the unpruned path (enforced here by a spot check and exhaustively by
//! `crates/index/tests/prune_properties.rs`).
//!
//! Three workloads stress different skip regimes, each measured with
//! `PruneMode::Auto` vs `PruneMode::Off` at requested shard counts 1
//! and 4. Shard requests resolve under the default adaptive policy, so
//! on a machine with fewer cores than shards the shards=4 rows build
//! fewer physical shards instead of paying fan-out overhead — the two
//! rows then measure the same engine, which is the point:
//!
//! * `zipf` — the X14 mix: 1–3 word flat lists, mostly common words,
//!   sometimes a rare topic word (the historical baseline),
//! * `tree` — operator-tree-heavy: nested `and`/`or`/`and-not` shapes,
//!   every query anchored by a rare topic word so the threshold rises
//!   fast and tree-bound pruning engages,
//! * `long` — long-postings: the most common background words (the
//!   longest lists in the index) paired with one rare anchor, the
//!   workload where leaping undecoded blocks pays most.
//!
//! Reported per configuration: QPS, p50/p95/p99 latency, the fraction
//! of candidate postings skipped unscored, and the number of whole
//! blocks jumped without decoding. The artifact also records raw block
//! decode throughput (`decode_mints_per_s`, millions of u32s per
//! second streamed out of the bit-packed frames) and the postings
//! footprint per field class: the default build that keeps the
//! positional arena for `prox`, and a `PositionsMode::None` build
//! where search runs off the blocks alone.
//!
//! Writes `BENCH_prune.json` (override with `--out PATH`); pass
//! `--smoke` for a seconds-scale CI run on the standard corpus.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use starts_bench::{
    decode_mints_per_s, header, machine_parallelism, print_table, provenance_note, section,
    standard_corpus, BenchArgs,
};
use starts_corpus::{generate_corpus, CorpusConfig, GeneratedCorpus, Zipf};
use starts_index::{
    EngineConfig, PositionsMode, PruneMode, PruneReport, RankNode, SearchOptions, ShardedEngine,
    TermSpec,
};

/// Result-list bound for every query (the X14 regime).
const K: usize = 10;

/// Shard counts under measurement: the monolithic engine and a fan-out
/// wide enough that threshold sharing matters.
const SHARD_COUNTS: &[usize] = &[1, 4];

fn main() {
    let args = BenchArgs::parse();
    let smoke = args.smoke;
    let out_path = args.out_or("BENCH_prune.json");
    let n_queries = if smoke { 60 } else { 400 };
    let parallelism = machine_parallelism();

    header("X16  dynamic pruning: Block-Max-WAND top-k vs exhaustive scoring");
    let corpus = if smoke {
        standard_corpus()
    } else {
        generate_corpus(&CorpusConfig {
            n_sources: 12,
            docs_per_source: 400,
            n_topics: 4,
            background_vocab: 1500,
            topic_vocab: 100,
            doc_len: (25, 90),
            topic_skew: 0.35,
            bilingual_fraction: 0.0,
            seed: 19970526,
        })
    };
    let docs = corpus.all_docs();
    let workloads = [
        Workload {
            name: "zipf",
            queries: zipf_workload(&corpus, n_queries, 1997),
        },
        Workload {
            name: "tree",
            queries: tree_workload(&corpus, n_queries, 4111),
        },
        Workload {
            name: "long",
            queries: long_postings_workload(&corpus, n_queries, 5309),
        },
    ];
    println!(
        "corpus: {} docs; workloads: {} x {} queries; k = {K}; \
         machine parallelism: {parallelism}",
        docs.len(),
        workloads.len(),
        n_queries
    );

    let config = |shards: usize, prune: PruneMode| EngineConfig {
        shards,
        prune,
        ..EngineConfig::default()
    };
    let opts = SearchOptions {
        limit: Some(K),
        ..SearchOptions::default()
    };

    // Baseline for the exactness spot check: monolithic, unpruned.
    let baseline = ShardedEngine::build(&docs, config(1, PruneMode::Off));
    let footprint = baseline.postings_footprint();
    // The positions-free field class: the same corpus with the
    // positional store retired, so search runs off the bit-packed
    // blocks alone. Its footprint shows what a no-`prox` schema pays.
    let no_positions = ShardedEngine::build(
        &docs,
        EngineConfig {
            positions: PositionsMode::None,
            ..config(1, PruneMode::Off)
        },
    );
    let footprint_none = no_positions.postings_footprint();
    let decode_mints = decode_mints_per_s(&baseline, if smoke { 0.2 } else { 1.0 });

    let mut rows = Vec::new();
    let mut stats = Vec::new();
    for workload in &workloads {
        for &shards in SHARD_COUNTS {
            for prune in [PruneMode::Off, PruneMode::Auto] {
                let engine = ShardedEngine::build(&docs, config(shards, prune));

                // Exactness spot check on the first queries of the
                // workload, and the prune tallies over all of them; the
                // property suite covers exactness exhaustively.
                let mut report = PruneReport::default();
                for (i, node) in workload.queries.iter().enumerate() {
                    let (hits, _, r) = engine.search_top_k_observed(None, Some(node), &opts);
                    report.merge(&r);
                    if i < 10 {
                        assert_eq!(
                            hits,
                            baseline.search_top_k(None, Some(node), Some(K)),
                            "pruned top-k diverged at workload={} shards={shards} \
                             prune={prune:?}",
                            workload.name
                        );
                    }
                }
                match prune {
                    PruneMode::Auto => {
                        assert!(
                            report.skipped_docs > 0,
                            "pruning never engaged on the {} workload: {report:?}",
                            workload.name
                        );
                        // Whole-block jumps need lists spanning several
                        // blocks; splitting the corpus across shards can
                        // shrink every list under the 128-doc block size,
                        // so the hard assertion is monolithic-only.
                        if shards == 1 {
                            assert!(
                                report.blocks_skipped > 0,
                                "no whole block was ever jumped on the {} workload: {report:?}",
                                workload.name
                            );
                        }
                    }
                    PruneMode::Off => {
                        assert_eq!(report.skipped_docs, 0);
                        assert_eq!(report.blocks_skipped, 0);
                    }
                }
                let pruned_fraction = if report.candidates > 0 {
                    report.skipped_docs as f64 / report.candidates as f64
                } else {
                    0.0
                };

                let qs = measure(&workload.queries, |node| {
                    engine
                        .search_top_k_observed(None, Some(node), &opts)
                        .0
                        .len()
                });
                rows.push(vec![
                    workload.name.to_string(),
                    shards.to_string(),
                    format!("{prune:?}"),
                    format!("{:.0}", qs.qps),
                    format!("{:.1}", qs.p50_us),
                    format!("{:.1}", qs.p95_us),
                    format!("{:.1}", qs.p99_us),
                    format!("{:.1}%", pruned_fraction * 100.0),
                    report.blocks_skipped.to_string(),
                ]);
                stats.push(PruneStats {
                    workload: workload.name,
                    shards,
                    prune,
                    qs,
                    pruned_fraction,
                    report,
                });
            }
        }
    }

    section("query latency: pruned vs unpruned per workload and shard count");
    print_table(
        &[
            "workload", "shards", "prune", "QPS", "p50 µs", "p95 µs", "p99 µs", "pruned", "blocks",
        ],
        &rows,
    );
    println!();
    for pair in stats.chunks(2) {
        let (off, auto) = (&pair[0], &pair[1]);
        println!(
            "{} shards={}: prune {:.2}x QPS vs off ({:.0} -> {:.0}), \
             {:.1}% of candidate postings skipped, {} blocks jumped undecoded",
            auto.workload,
            auto.shards,
            auto.qs.qps / off.qs.qps.max(1e-9),
            off.qs.qps,
            auto.qs.qps,
            auto.pruned_fraction * 100.0,
            auto.report.blocks_skipped
        );
    }
    println!(
        "postings memory: {} lists, {} postings; {} B positional arena, \
         {} B bit-packed blocks ({} B with positions retired)",
        footprint.lists,
        footprint.postings,
        footprint.positional_bytes,
        footprint.block_bytes,
        footprint_none.block_bytes
    );
    println!("block decode throughput: {decode_mints:.1} M ints/s streaming every list");

    let json = render_json(
        smoke,
        docs.len(),
        n_queries,
        parallelism,
        &footprint,
        &footprint_none,
        decode_mints,
        &stats,
    );
    std::fs::write(&out_path, json).expect("write BENCH_prune.json");
    println!("wrote {out_path}");
}

/// A named query mix.
struct Workload {
    name: &'static str,
    queries: Vec<RankNode>,
}

/// Per-configuration measurements.
struct PruneStats {
    workload: &'static str,
    shards: usize,
    prune: PruneMode,
    qs: QueryStats,
    pruned_fraction: f64,
    report: PruneReport,
}

/// Query-side timing summary (the X14 `PathStats` shape).
struct QueryStats {
    qps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

/// Time one closure over the whole workload (after a short warmup) and
/// summarize per-query latency.
fn measure(queries: &[RankNode], mut run: impl FnMut(&RankNode) -> usize) -> QueryStats {
    for q in queries.iter().take(5) {
        run(q);
    }
    let mut lat_us: Vec<f64> = Vec::with_capacity(queries.len());
    let total = Instant::now();
    for q in queries {
        let start = Instant::now();
        std::hint::black_box(run(q));
        lat_us.push(start.elapsed().as_secs_f64() * 1e6);
    }
    let elapsed = total.elapsed().as_secs_f64();
    lat_us.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        let idx = ((lat_us.len() - 1) as f64 * p).round() as usize;
        lat_us[idx]
    };
    QueryStats {
        qps: queries.len() as f64 / elapsed.max(1e-12),
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
    }
}

/// A term leaf on the `body-of-text` field.
fn leaf(word: &str) -> RankNode {
    RankNode::term(TermSpec::fielded("body-of-text", word))
}

/// A random common background word (Zipf-distributed, low rank = long
/// posting list).
fn bg_word(corpus: &GeneratedCorpus, zipf: &Zipf, rng: &mut StdRng) -> String {
    corpus.background[zipf.sample(rng)].clone()
}

/// A random rare topic word (high scores on few documents — these are
/// what drive the top-k threshold up early).
fn topic_word(corpus: &GeneratedCorpus, zipf: &Zipf, rng: &mut StdRng) -> String {
    let t = rng.gen_range(0..corpus.topics.len());
    corpus.topics[t][zipf.sample(rng)].clone()
}

/// The same Zipf workload X14 draws: 1–3 words per query, mostly common
/// background vocabulary, sometimes a rare topic word.
fn zipf_workload(corpus: &GeneratedCorpus, n: usize, seed: u64) -> Vec<RankNode> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bg = Zipf::new(corpus.background.len(), 1.0);
    let topic = Zipf::new(corpus.topics[0].len(), 0.8);
    (0..n)
        .map(|_| {
            let k = rng.gen_range(1..=3);
            RankNode::List(
                (0..k)
                    .map(|_| {
                        if rng.gen_bool(0.3) {
                            leaf(&topic_word(corpus, &topic, &mut rng))
                        } else {
                            leaf(&bg_word(corpus, &bg, &mut rng))
                        }
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Operator-tree-heavy workload: nested `and`/`or`/`and-not` shapes the
/// block-max evaluator must prune *through* by propagating per-block
/// bounds bottom-up. Every query is anchored by a rare topic word so a
/// few high-scoring documents raise θ early and the common-word
/// subtrees become block-skippable.
fn tree_workload(corpus: &GeneratedCorpus, n: usize, seed: u64) -> Vec<RankNode> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bg = Zipf::new(corpus.background.len(), 1.0);
    let topic = Zipf::new(corpus.topics[0].len(), 0.8);
    (0..n)
        .map(|_| {
            let anchor = leaf(&topic_word(corpus, &topic, &mut rng));
            let a = leaf(&bg_word(corpus, &bg, &mut rng));
            let b = leaf(&bg_word(corpus, &bg, &mut rng));
            let c = leaf(&bg_word(corpus, &bg, &mut rng));
            match rng.gen_range(0..4) {
                0 => RankNode::Or(vec![anchor, RankNode::And(vec![a, b])]),
                1 => RankNode::List(vec![anchor, RankNode::Or(vec![a, b]), c]),
                2 => RankNode::Or(vec![
                    RankNode::List(vec![anchor, a]),
                    RankNode::AndNot(Box::new(b), Box::new(c)),
                ]),
                _ => RankNode::And(vec![
                    RankNode::Or(vec![anchor, a]),
                    RankNode::Or(vec![b, c]),
                ]),
            }
        })
        .collect()
}

/// Long-postings workload: the most common background words — the
/// longest posting lists in the index, spanning the most blocks — with
/// one rare topic anchor. Once the anchor's documents fill the heap,
/// whole blocks of the common lists fall below θ and are jumped
/// without decoding.
fn long_postings_workload(corpus: &GeneratedCorpus, n: usize, seed: u64) -> Vec<RankNode> {
    let mut rng = StdRng::seed_from_u64(seed);
    let topic = Zipf::new(corpus.topics[0].len(), 0.8);
    let head = corpus.background.len().min(8);
    (0..n)
        .map(|_| {
            let k = rng.gen_range(1..=2);
            let mut leaves = vec![leaf(&topic_word(corpus, &topic, &mut rng))];
            for _ in 0..k {
                leaves.push(leaf(&corpus.background[rng.gen_range(0..head)]));
            }
            RankNode::List(leaves)
        })
        .collect()
}

/// Hand-rolled JSON artifact (schema documented in
/// `docs/performance.md`).
#[allow(clippy::too_many_arguments)]
fn render_json(
    smoke: bool,
    n_docs: usize,
    n_queries: usize,
    parallelism: usize,
    footprint: &starts_index::PostingsFootprint,
    footprint_none: &starts_index::PostingsFootprint,
    decode_mints: f64,
    stats: &[PruneStats],
) -> String {
    let configs: Vec<String> = stats
        .iter()
        .map(|s| {
            format!(
                "    {{\"workload\": \"{}\", \"shards\": {}, \"prune\": \"{:?}\", \
                 \"qps\": {:.1}, \
                 \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, \
                 \"pruned_fraction\": {:.4}, \"skipped_docs\": {}, \"candidates\": {}, \
                 \"blocks_skipped\": {}}}",
                s.workload,
                s.shards,
                s.prune,
                s.qs.qps,
                s.qs.p50_us,
                s.qs.p95_us,
                s.qs.p99_us,
                s.pruned_fraction,
                s.report.skipped_docs,
                s.report.candidates,
                s.report.blocks_skipped
            )
        })
        .collect();
    let note = provenance_note(
        parallelism,
        "explicit shard requests resolve adaptively at build time (capped by \
         machine parallelism and corpus size), so a shards=4 row on a narrow \
         machine builds fewer physical shards instead of paying fan-out \
         overhead; postings_bytes_no_positions is the positions-free field \
         class (blocks only)",
    );
    format!(
        "{{\n  \"bench\": \"x16_prune\",\n  \
         \"note\": \"{note}\",\n  \
         \"smoke\": {smoke},\n  \"k\": {K},\n  \"queries\": {n_queries},\n  \
         \"docs\": {n_docs},\n  \"machine_parallelism\": {parallelism},\n  \
         \"decode_mints_per_s\": {decode_mints:.1},\n  \
         \"postings_bytes\": {{\"positional\": {}, \"blocks\": {}}},\n  \
         \"postings_bytes_no_positions\": {{\"positional\": {}, \"blocks\": {}}},\n  \
         \"configs\": [\n{}\n  ]\n}}\n",
        footprint.positional_bytes,
        footprint.block_bytes,
        footprint_none.positional_bytes,
        footprint_none.block_bytes,
        configs.join(",\n")
    )
}
