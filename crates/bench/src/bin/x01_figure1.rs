//! X1 — Figure 1: the metasearch model.
//!
//! "A metasearcher queries a source, and may specify that the query be
//! evaluated at several sources at the same resource." This experiment
//! walks the figure: a client, a resource with two sources, a query sent
//! to Source 1 naming Source 2, and duplicate elimination inside the
//! resource — then verifies the client-side alternative (querying both
//! independently) yields duplicates the client cannot reliably merge.

use starts_bench::{header, section};
use starts_index::Document;
use starts_net::host::{wire_resource, wire_source};
use starts_net::{LinkProfile, SimNet, StartsClient};
use starts_proto::query::parse_ranking;
use starts_proto::{Field, Query};
use starts_source::{ResourceHost, Source, SourceConfig};

fn shared_doc() -> Document {
    Document::new()
        .field("title", "Shared Report on Distributed Databases")
        .field("body-of-text", "databases databases distributed shared")
        .field("linkage", "res://shared/tr-1")
}

fn collection(tag: &str) -> Vec<Document> {
    vec![
        Document::new()
            .field("title", format!("{tag} exclusive study"))
            .field("body-of-text", "databases indexing study".to_string())
            .field("linkage", format!("res://{tag}/a")),
        shared_doc(),
    ]
}

fn main() {
    header("X1  Figure 1 — the metasearch model (resource fan-out + dedup)");
    let net = SimNet::new();
    // The resource of Figure 1 with Source-1 and Source-2.
    wire_resource(
        &net,
        ResourceHost::new(vec![
            Source::build(SourceConfig::new("Source-1"), &collection("s1")),
            Source::build(SourceConfig::new("Source-2"), &collection("s2")),
        ]),
        "starts://resource",
        LinkProfile::default(),
    );
    // The same two collections as independent stand-alone sources.
    let mut solo1 = SourceConfig::new("Solo-1");
    solo1.base_url = "starts://solo-1".to_string();
    let mut solo2 = SourceConfig::new("Solo-2");
    solo2.base_url = "starts://solo-2".to_string();
    wire_source(
        &net,
        Source::build(solo1, &collection("s1")),
        LinkProfile::default(),
    );
    wire_source(
        &net,
        Source::build(solo2, &collection("s2")),
        LinkProfile::default(),
    );

    let client = StartsClient::new(&net);
    let resource = client.fetch_resource("starts://resource").unwrap();
    section("resource exports its source list (§4.3.3)");
    for (id, url) in &resource.sources {
        println!("   {id} -> {url}");
    }

    section("path A: one query to Source-1, naming Source-2 (Figure 1)");
    let query = Query {
        ranking: Some(parse_ranking(r#"list((body-of-text "databases"))"#).unwrap()),
        additional_sources: vec!["Source-2".to_string()],
        ..Query::default()
    };
    let merged = client.query("starts://source-1/query", &query).unwrap();
    println!(
        "   1 request, {} documents returned:",
        merged.documents.len()
    );
    for d in &merged.documents {
        println!(
            "     [{}] {}",
            d.sources.join("+"),
            d.field(&Field::Title).unwrap_or("?")
        );
    }
    let shared = merged
        .documents
        .iter()
        .find(|d| d.linkage() == Some("res://shared/tr-1"))
        .expect("shared doc present");
    println!(
        "   -> the shared report appears ONCE, attributed to {} sources",
        shared.sources.len()
    );
    assert_eq!(shared.sources.len(), 2);
    assert_eq!(merged.documents.len(), 3);

    section("path B: querying the two sources independently (no resource)");
    let plain = Query {
        ranking: Some(parse_ranking(r#"list((body-of-text "databases"))"#).unwrap()),
        ..Query::default()
    };
    let r1 = client.query("starts://solo-1/query", &plain).unwrap();
    let r2 = client.query("starts://solo-2/query", &plain).unwrap();
    let total = r1.documents.len() + r2.documents.len();
    println!(
        "   2 requests, {} + {} = {total} documents, shared report delivered TWICE",
        r1.documents.len(),
        r2.documents.len()
    );
    assert_eq!(total, 4);

    section("verdict");
    println!(
        "   resource-side evaluation saves {} duplicate document(s) and {} request(s),",
        total - merged.documents.len(),
        1
    );
    println!("   matching Figure 1's motivation for in-resource fan-out.");
    starts_bench::BenchArgs::parse().finish(net.registry());
}
