//! X19 — block-decode kernel microbenchmark (beyond the paper's
//! artifacts).
//!
//! Isolates the two layers of the bit-packed block codec that the
//! query benches (X14–X16) only see blended into whole-query latency:
//!
//! * **kernel** — the runtime-dispatched [`unpack_bits`] (AVX2 on
//!   machines that have it) against the always-available scalar
//!   word-parallel kernel, unpacking the same fixed pseudo-random
//!   buffer at every bit width a block header can carry. The two must
//!   agree bit-for-bit — asserted here on every width and
//!   property-tested in `crates/index/tests/block_properties.rs` — so
//!   the only difference the table may show is speed.
//! * **streaming** — every postings list of a built engine decoded
//!   end-to-end (gap prefix sums, tf section, iterator overhead
//!   included): the figure query evaluation actually pays per posting.
//!
//! Writes `BENCH_decode.json` (override with `--out PATH`); pass
//! `--smoke` for the seconds-scale CI run. The artifact's
//! `decode_mints_per_s` is floor-gated by `bench_diff` so a codec
//! regression fails CI before it reaches the query benches.
//!
//! [`unpack_bits`]: starts_index::blocks::unpack_bits

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use starts_bench::{
    decode_mints_per_s, header, machine_parallelism, print_table, provenance_note, section,
    standard_corpus, BenchArgs,
};
use starts_index::blocks::{unpack_bits, unpack_bits_scalar};
use starts_index::{EngineConfig, ShardedEngine};

/// Every bit width worth a row: the dense low widths real doc-gap and
/// tf sections land on, the byte-aligned widths the AVX2 kernel
/// accelerates, and the 32-bit worst case.
const WIDTHS: &[u32] = &[1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 20, 24, 32];

/// Packed input per width: 256 KiB of fixed pseudo-random bytes (plus
/// the 8-byte tail pad the word decoder requires).
const PACKED_BYTES: usize = 256 * 1024;

/// Output values per unpack call, capped so every width reads well
/// inside the packed buffer.
const COUNT: usize = 1 << 16;

fn main() {
    let args = BenchArgs::parse();
    let smoke = args.smoke;
    let out_path = args.out_or("BENCH_decode.json");
    let parallelism = machine_parallelism();
    let min_secs = if smoke { 0.05 } else { 0.25 };

    header("X19  block-decode kernels: dispatched vs scalar, plus streaming");
    let avx2 = avx2_available();
    println!(
        "machine parallelism: {parallelism}; avx2: {}",
        if avx2 { "yes" } else { "no" }
    );

    let mut rng = StdRng::seed_from_u64(0x1997_0526);
    let mut packed = vec![0u8; PACKED_BYTES + 8];
    for b in &mut packed[..PACKED_BYTES] {
        *b = rng.gen();
    }

    let mut rows = Vec::new();
    let mut kernel_json = Vec::new();
    let mut scalar_out = vec![0u32; COUNT];
    let mut dispatched_out = vec![0u32; COUNT];
    for &width in WIDTHS {
        let count = COUNT.min(if width == 0 {
            COUNT
        } else {
            PACKED_BYTES * 8 / width as usize
        });
        let scalar = bench_kernel(min_secs, count, || {
            unpack_bits_scalar(&packed, count, width, &mut scalar_out);
        });
        let dispatched = bench_kernel(min_secs, count, || {
            unpack_bits(&packed, count, width, &mut dispatched_out);
        });
        assert_eq!(
            scalar_out[..count],
            dispatched_out[..count],
            "kernels disagree at width {width}"
        );
        rows.push(vec![
            width.to_string(),
            format!("{scalar:.0}"),
            format!("{dispatched:.0}"),
            format!("{:.2}x", dispatched / scalar.max(1e-9)),
        ]);
        kernel_json.push(format!(
            "    {{\"width\": {width}, \"scalar_mints_per_s\": {scalar:.1}, \
             \"dispatched_mints_per_s\": {dispatched:.1}}}"
        ));
    }
    section("unpack kernels (millions of u32s per second)");
    print_table(&["width", "scalar", "dispatched", "speedup"], &rows);

    // Streaming: a real engine's whole postings store, decoded the way
    // query evaluation decodes it.
    let corpus = standard_corpus();
    let docs = corpus.all_docs();
    let engine = ShardedEngine::build(&docs, EngineConfig::default());
    let streaming = decode_mints_per_s(&engine, if smoke { 0.2 } else { 1.0 });
    section("streaming decode (full lists, prefix sums and iterator included)");
    println!(
        "{} docs, {} B block postings: {streaming:.1} M ints/s",
        docs.len(),
        engine.postings_footprint().block_bytes
    );

    let note = provenance_note(
        parallelism,
        "kernel rows unpack one fixed pseudo-random buffer; streaming decodes \
         a built engine's every postings list end-to-end",
    );
    let json = format!(
        "{{\n  \"bench\": \"x19_decode\",\n  \
         \"note\": \"{note}\",\n  \
         \"smoke\": {smoke},\n  \"machine_parallelism\": {parallelism},\n  \
         \"avx2\": {avx2},\n  \
         \"decode_mints_per_s\": {streaming:.1},\n  \
         \"kernels\": [\n{}\n  ]\n}}\n",
        kernel_json.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write BENCH_decode.json");
    println!("wrote {out_path}");
}

/// Whether the runtime dispatch in `unpack_bits` will pick the AVX2
/// kernel on this machine.
fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Run `op` (which decodes `count` ints per call) until `min_secs` of
/// wall time has accumulated; returns millions of ints per second.
fn bench_kernel(min_secs: f64, count: usize, mut op: impl FnMut()) -> f64 {
    op(); // warm
    let mut calls = 0u64;
    let start = Instant::now();
    loop {
        op();
        calls += 1;
        if start.elapsed().as_secs_f64() >= min_secs {
            break;
        }
    }
    (calls * count as u64) as f64 / start.elapsed().as_secs_f64().max(1e-12) / 1e6
}
