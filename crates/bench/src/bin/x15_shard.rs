//! X15 — sharded engine: parallel index build and fan-out top-k
//! (beyond the paper's artifacts).
//!
//! The monolithic engine builds its index and answers every query on
//! one thread. The sharded engine partitions the documents across N
//! shards, builds the per-shard indexes concurrently, and answers
//! `search_top_k` by fanning out to all shards and k-way-merging the
//! per-shard sorted lists — with global collection statistics, so the
//! merged top-k is *bit-identical* to the monolithic answer (enforced
//! here by a spot check and exhaustively by
//! `crates/index/tests/shard_properties.rs`).
//!
//! This experiment measures what sharding buys at each shard count
//! (1/2/4/8): index build rate in docs/s, and query QPS with p50/p95/p99
//! latency at k = 10 on the same Zipf workload X14 uses. The artifact
//! records `machine_parallelism`: on a single-core machine the parallel
//! build cannot beat the monolithic one — the numbers then show the
//! fan-out overhead, which is exactly what a deployment on such a
//! machine would pay.
//!
//! Writes `BENCH_shard.json` (override with `--out PATH`); pass
//! `--smoke` for a seconds-scale CI run on the standard corpus.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use starts_bench::{
    header, machine_parallelism, print_table, provenance_note, section, standard_corpus, BenchArgs,
};
use starts_corpus::{generate_corpus, CorpusConfig, GeneratedCorpus, Zipf};
use starts_index::{EngineConfig, RankNode, ShardPolicy, ShardedEngine, TermSpec};

/// Result-list bound for every query (the X14 regime).
const K: usize = 10;

/// Shard counts under measurement; 1 is the monolithic baseline.
const SHARD_COUNTS: &[usize] = &[1, 2, 4, 8];

fn main() {
    let args = BenchArgs::parse();
    let smoke = args.smoke;
    let out_path = args.out_or("BENCH_shard.json");
    let n_queries = if smoke { 60 } else { 400 };
    let parallelism = machine_parallelism();

    header("X15  sharded engine: parallel build + fan-out top-k vs monolithic");
    let corpus = if smoke {
        standard_corpus()
    } else {
        generate_corpus(&CorpusConfig {
            n_sources: 12,
            docs_per_source: 400,
            n_topics: 4,
            background_vocab: 1500,
            topic_vocab: 100,
            doc_len: (25, 90),
            topic_skew: 0.35,
            bilingual_fraction: 0.0,
            seed: 19970526,
        })
    };
    let docs = corpus.all_docs();
    let terms = zipf_workload(&corpus, n_queries, 1997);
    println!(
        "corpus: {} docs; workload: {} Zipf queries; k = {K}; \
         machine parallelism: {parallelism}",
        docs.len(),
        terms.len()
    );
    if parallelism < *SHARD_COUNTS.last().unwrap() {
        println!(
            "note: only {parallelism} hardware thread(s) available — shard counts \
             beyond that measure fan-out overhead, not speedup"
        );
    }

    // Exact policy: this experiment exists to measure what each
    // *physical* shard count costs, so the adaptive coalescing that
    // deployments get by default is deliberately switched off here.
    let config = |shards: usize| EngineConfig {
        shards,
        shard_policy: ShardPolicy::Exact,
        ..EngineConfig::default()
    };

    // Baseline for the exactness spot check.
    let baseline = ShardedEngine::build(&docs, config(1));

    let mut rows = Vec::new();
    let mut stats = Vec::new();
    for &shards in SHARD_COUNTS {
        let build_start = Instant::now();
        let engine = ShardedEngine::build(&docs, config(shards));
        let build_s = build_start.elapsed().as_secs_f64().max(1e-12);
        let build_docs_per_s = docs.len() as f64 / build_s;

        // Exactness spot check on the first queries of the workload;
        // the property suite covers this exhaustively.
        for t in terms.iter().take(10) {
            let node = rank_node(t);
            assert_eq!(
                engine.search_top_k(None, Some(&node), Some(K)),
                baseline.search_top_k(None, Some(&node), Some(K)),
                "sharded top-k diverged from monolithic at shards={shards}"
            );
        }

        let qs = measure(&terms, |t| {
            let node = rank_node(t);
            engine.search_top_k(None, Some(&node), Some(K)).len()
        });
        rows.push(vec![
            shards.to_string(),
            format!("{build_docs_per_s:.0}"),
            format!("{:.0}", qs.qps),
            format!("{:.1}", qs.p50_us),
            format!("{:.1}", qs.p95_us),
            format!("{:.1}", qs.p99_us),
        ]);
        stats.push(ShardStats {
            shards,
            build_s,
            build_docs_per_s,
            qs,
        });
    }

    section("build rate and query latency per shard count");
    print_table(
        &[
            "shards",
            "build docs/s",
            "QPS",
            "p50 µs",
            "p95 µs",
            "p99 µs",
        ],
        &rows,
    );
    println!();
    let base_build = stats[0].build_docs_per_s;
    for s in &stats[1..] {
        println!(
            "shards={}: build {:.2}x vs monolithic, query p95 {:.1} µs vs {:.1} µs",
            s.shards,
            s.build_docs_per_s / base_build.max(1e-9),
            s.qs.p95_us,
            stats[0].qs.p95_us
        );
    }

    let json = render_json(smoke, &docs.len(), n_queries, parallelism, &stats);
    std::fs::write(&out_path, json).expect("write BENCH_shard.json");
    println!("wrote {out_path}");
}

/// Per-shard-count measurements.
struct ShardStats {
    shards: usize,
    build_s: f64,
    build_docs_per_s: f64,
    qs: QueryStats,
}

/// Query-side timing summary (the X14 `PathStats` shape).
struct QueryStats {
    qps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

/// Time one closure over the whole workload (after a short warmup) and
/// summarize per-query latency.
fn measure(terms: &[Vec<String>], mut run: impl FnMut(&[String]) -> usize) -> QueryStats {
    for t in terms.iter().take(5) {
        run(t);
    }
    let mut lat_us: Vec<f64> = Vec::with_capacity(terms.len());
    let total = Instant::now();
    for t in terms {
        let start = Instant::now();
        std::hint::black_box(run(t));
        lat_us.push(start.elapsed().as_secs_f64() * 1e6);
    }
    let elapsed = total.elapsed().as_secs_f64();
    lat_us.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        let idx = ((lat_us.len() - 1) as f64 * p).round() as usize;
        lat_us[idx]
    };
    QueryStats {
        qps: terms.len() as f64 / elapsed.max(1e-12),
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
    }
}

/// The same Zipf workload X14 draws: 1–3 words per query, mostly common
/// background vocabulary, sometimes a rare topic word.
fn zipf_workload(corpus: &GeneratedCorpus, n: usize, seed: u64) -> Vec<Vec<String>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bg = Zipf::new(corpus.background.len(), 1.0);
    let topic = Zipf::new(corpus.topics[0].len(), 0.8);
    (0..n)
        .map(|_| {
            let k = rng.gen_range(1..=3);
            (0..k)
                .map(|_| {
                    if rng.gen_bool(0.3) {
                        let t = rng.gen_range(0..corpus.topics.len());
                        corpus.topics[t][topic.sample(&mut rng)].clone()
                    } else {
                        corpus.background[bg.sample(&mut rng)].clone()
                    }
                })
                .collect()
        })
        .collect()
}

/// The engine-level ranking expression for a term list.
fn rank_node(terms: &[String]) -> RankNode {
    RankNode::List(
        terms
            .iter()
            .map(|t| RankNode::term(TermSpec::fielded("body-of-text", t)))
            .collect(),
    )
}

/// Hand-rolled JSON artifact (schema documented in
/// `docs/performance.md`).
fn render_json(
    smoke: bool,
    n_docs: &usize,
    n_queries: usize,
    parallelism: usize,
    stats: &[ShardStats],
) -> String {
    let shards: Vec<String> = stats
        .iter()
        .map(|s| {
            format!(
                "    {{\"shards\": {}, \"build_s\": {:.4}, \"build_docs_per_s\": {:.0}, \
                 \"qps\": {:.1}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}}}",
                s.shards,
                s.build_s,
                s.build_docs_per_s,
                s.qs.qps,
                s.qs.p50_us,
                s.qs.p95_us,
                s.qs.p99_us
            )
        })
        .collect();
    let note = provenance_note(
        parallelism,
        "with one core the parallel build cannot beat monolithic and multi-shard \
         rows show fan-out overhead, not speedup",
    );
    format!(
        "{{\n  \"bench\": \"x15_shard\",\n  \
         \"note\": \"{note}\",\n  \"smoke\": {smoke},\n  \"k\": {K},\n  \
         \"queries\": {n_queries},\n  \"docs\": {n_docs},\n  \
         \"machine_parallelism\": {parallelism},\n  \"shards\": [\n{}\n  ]\n}}\n",
        shards.join(",\n")
    )
}
