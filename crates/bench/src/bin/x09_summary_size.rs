//! X9 — content-summary compression (§4.3.2).
//!
//! The paper: summaries are "automatically generated … orders of
//! magnitude smaller than the original contents, and … useful in
//! distinguishing the more useful from the less useful sources". This
//! experiment measures the summary-to-corpus size ratio as collections
//! grow, and the selection quality retained when summaries are truncated
//! to their top-df words.

use starts_bench::{header, print_table, section};
use starts_corpus::{generate_corpus, generate_workload, CorpusConfig, WorkloadConfig};
use starts_meta::catalog::{Catalog, CatalogEntry};
use starts_meta::eval::{mean, selection_recall};
use starts_meta::metasearcher::Metasearcher;
use starts_meta::select::{GGlossSum, Selector};
use starts_net::LinkProfile;
use starts_proto::SourceMetadata;
use starts_source::{Source, SourceConfig};

fn corpus_bytes(corpus: &starts_corpus::GeneratedCorpus) -> u64 {
    corpus
        .sources
        .iter()
        .flat_map(|s| s.docs.iter())
        .map(|d| d.byte_size() as u64)
        .sum()
}

fn main() {
    header("X9  content summaries: size vs usefulness (§4.3.2)");
    section("summary-to-corpus ratio as collections grow");
    let mut rows = Vec::new();
    for docs_per_source in [50usize, 200, 800] {
        let corpus = generate_corpus(&CorpusConfig {
            n_sources: 4,
            docs_per_source,
            n_topics: 2,
            seed: 404,
            ..CorpusConfig::default()
        });
        let total = corpus_bytes(&corpus);
        let summary_bytes: u64 = corpus
            .sources
            .iter()
            .map(|s| {
                let src = Source::build(SourceConfig::new(&s.id), &s.docs);
                starts_soif::write_object(&src.content_summary().to_soif()).len() as u64
            })
            .sum();
        rows.push(vec![
            format!("{}", corpus.total_docs()),
            format!("{:.1}", total as f64 / 1024.0),
            format!("{:.1}", summary_bytes as f64 / 1024.0),
            format!("{:.1}x", total as f64 / summary_bytes as f64),
        ]);
    }
    print_table(
        &["documents", "corpus KB", "summaries KB", "compression"],
        &rows,
    );
    println!();
    println!(
        "   the ratio grows with collection size (vocabulary grows sublinearly in\n\
         text size) — the paper's \"orders of magnitude\" holds asymptotically."
    );

    section("selection quality vs summary truncation (top-df words kept)");
    let corpus = generate_corpus(&CorpusConfig {
        n_sources: 8,
        docs_per_source: 150,
        n_topics: 4,
        seed: 405,
        ..CorpusConfig::default()
    });
    let workload = generate_workload(
        &corpus,
        &WorkloadConfig {
            n_queries: 30,
            ..WorkloadConfig::default()
        },
    );
    let mut rows = Vec::new();
    for max_terms in [0usize, 2000, 500, 100, 25] {
        // Build catalog entries straight from truncated summaries.
        let mut catalog = Catalog::default();
        let mut bytes = 0u64;
        for s in &corpus.sources {
            let mut cfg = SourceConfig::new(&s.id);
            cfg.summary_fields_qualified = false;
            cfg.summary_max_terms = max_terms;
            let src = Source::build(cfg, &s.docs);
            let summary = src.content_summary();
            bytes += starts_soif::write_object(&summary.to_soif()).len() as u64;
            catalog.entries.push(CatalogEntry {
                id: s.id.clone(),
                metadata_url: String::new(),
                metadata: SourceMetadata {
                    source_id: s.id.clone(),
                    ..SourceMetadata::default()
                },
                summary,
                sample_results: Vec::new(),
                link: LinkProfile::default(),
            });
        }
        let mut cov = Vec::new();
        for gq in &workload.queries {
            let owned = Metasearcher::selection_terms(&gq.query);
            let terms: Vec<(Option<&str>, &str)> = owned
                .iter()
                .map(|(f, t)| (f.as_deref(), t.as_str()))
                .collect();
            let chosen: Vec<usize> = GGlossSum
                .rank(&catalog, &terms)
                .into_iter()
                .take(2)
                .map(|(i, _)| i)
                .collect();
            cov.push(selection_recall(&chosen, &gq.relevant_by_source));
        }
        rows.push(vec![
            if max_terms == 0 {
                "full".to_string()
            } else {
                max_terms.to_string()
            },
            format!("{:.1}", bytes as f64 / 1024.0),
            format!("{:.3}", mean(&cov)),
        ]);
    }
    print_table(
        &["words/source", "summaries KB", "merit coverage (n=2)"],
        &rows,
    );

    section("verdict");
    println!(
        "   summaries stay useful under heavy truncation: topic-bearing words have\n\
         high df and survive, which is why GlOSS works off such small objects."
    );
    starts_bench::BenchArgs::parse().finish(starts_obs::Registry::global());
}
