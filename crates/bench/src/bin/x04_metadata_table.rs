//! X4 — the §4.3.1 "MBasic-1" source-metadata attribute table,
//! regenerated, with a conformance audit of every vendor's actual
//! `@SMetaAttributes` export.

use starts_bench::{header, print_table, section};
use starts_proto::conformance::{check_metadata, MBASIC1_ATTRS};
use starts_source::{vendors, Source};

fn main() {
    header("X4  §4.3.1 metadata attribute table (MBasic-1) — regenerated");
    let rows: Vec<Vec<String>> = MBASIC1_ATTRS
        .iter()
        .map(|(name, required, new)| {
            vec![
                name.to_string(),
                if *required { "Yes" } else { "No" }.to_string(),
                if *new { "Yes" } else { "No" }.to_string(),
            ]
        })
        .collect();
    print_table(&["Field", "Required?", "New?"], &rows);
    println!();
    println!(
        "{} attributes, {} required, {} new vs Z39.50 Exp-1/GILS",
        MBASIC1_ATTRS.len(),
        MBASIC1_ATTRS.iter().filter(|(_, r, _)| *r).count(),
        MBASIC1_ATTRS.iter().filter(|(_, _, n)| *n).count()
    );

    section("conformance audit of the vendor fleet");
    for cfg in vendors::fleet() {
        let source = Source::build(cfg, &[]);
        let violations = check_metadata(source.metadata());
        let m = source.metadata();
        println!(
            "   {:<13} parts={:<2} range={:>3}..{:<8} ranker={:<8} violations={}",
            source.id(),
            m.query_parts_supported.as_str(),
            m.score_range.0,
            if m.score_range.1.is_finite() {
                format!("{}", m.score_range.1)
            } else {
                "inf".to_string()
            },
            if m.ranking_algorithm_id.is_empty() {
                "-"
            } else {
                &m.ranking_algorithm_id
            },
            violations.len()
        );
        assert!(violations.is_empty(), "{:?}", violations);
    }
    println!();
    println!("all fleet members export conformant MBasic-1 metadata.");
    starts_bench::BenchArgs::parse().finish(starts_obs::Registry::global());
}
