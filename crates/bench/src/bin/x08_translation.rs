//! X8 — query translation across capability-limited engines (§3.1, §4.1,
//! refs [3, 4]).
//!
//! Three client strategies face the heterogeneous fleet:
//!
//! * **verbatim** — send the query as-is; each source drops what it
//!   cannot do (the STARTS server-side rewrite);
//! * **per-source** — the metasearcher adapts per capability: folds
//!   ranking into Boolean for filter-only engines, expands `stem` from
//!   the content summary for engines without stemming;
//! * **LCD** — strip to the least common denominator first (§5's early
//!   metasearchers).
//!
//! Expected shape: per-source ≥ verbatim ≫ LCD in both answered-query
//! rate and recall.

use starts_bench::{header, print_table, section, standard_corpus, standard_workload};
use starts_meta::adapt::{adapt_query, least_common_denominator};
use starts_meta::eval::{mean, recall_at_k};
use starts_meta::merge::{Merger, NormalizedMerge, SourceResult};
use starts_net::host::wire_source;
use starts_net::{LinkProfile, SimNet, StartsClient};
use starts_proto::{Query, SourceMetadata};
use starts_source::{vendors, Source, SourceConfig};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Verbatim,
    PerSource,
    Lcd,
}

fn main() {
    header("X8  query translation: verbatim vs per-source adaptation vs LCD");
    let corpus = standard_corpus();
    let workload = standard_workload(&corpus);
    let net = SimNet::new();
    // The harshest mix: a boolean-only Glimpse, a rank-only site, and a
    // stemming BM25 engine share the corpus slices.
    let personalities: Vec<fn(&str) -> SourceConfig> = vec![
        vendors::glimpse,
        vendors::rankonly,
        vendors::okapi,
        vendors::acme,
    ];
    for (i, s) in corpus.sources.iter().enumerate() {
        let mut cfg = personalities[i % personalities.len()](&s.id);
        cfg.id = s.id.clone();
        cfg.name = s.id.clone();
        cfg.base_url = format!("starts://{}", s.id.to_lowercase());
        wire_source(&net, Source::build(cfg, &s.docs), LinkProfile::default());
    }
    let client = StartsClient::new(&net);
    // Gather metadata + summaries once (the §3.4 periodic crawl).
    let mut meta: Vec<(SourceMetadata, starts_proto::summary::ContentSummary)> = Vec::new();
    for s in &corpus.sources {
        let m = client
            .fetch_metadata(&format!("starts://{}/metadata", s.id.to_lowercase()))
            .unwrap();
        let cs = client.fetch_summary(&m.content_summary_linkage).unwrap();
        meta.push((m, cs));
    }

    let mut rows = Vec::new();
    for (label, mode) in [
        ("verbatim", Mode::Verbatim),
        ("per-source", Mode::PerSource),
        ("LCD", Mode::Lcd),
    ] {
        let mut answered = Vec::new();
        let mut recall = Vec::new();
        let mut kept_terms = Vec::new();
        for gq in &workload.queries {
            let all_meta: Vec<&SourceMetadata> = meta.iter().map(|(m, _)| m).collect();
            let lcd = least_common_denominator(&gq.query, &all_meta);
            let mut inputs = Vec::new();
            let mut sources_with_docs = 0usize;
            for (i, s) in corpus.sources.iter().enumerate() {
                let q: Query = match mode {
                    Mode::Verbatim => gq.query.clone(),
                    Mode::PerSource => adapt_query(&gq.query, &meta[i].0, &meta[i].1),
                    Mode::Lcd => lcd.clone(),
                };
                kept_terms.push(q.all_terms().len() as f64);
                let results = client
                    .query(&format!("starts://{}/query", s.id.to_lowercase()), &q)
                    .unwrap();
                if !results.documents.is_empty() {
                    sources_with_docs += 1;
                }
                inputs.push(SourceResult {
                    metadata: meta[i].0.clone(),
                    results,
                    source_weight: 1.0,
                });
            }
            answered.push(sources_with_docs as f64 / corpus.sources.len() as f64);
            let merged = NormalizedMerge.merge(&inputs);
            let ranked: Vec<String> = merged.into_iter().map(|d| d.linkage).collect();
            recall.push(recall_at_k(&ranked, &gq.relevant, 30));
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", mean(&answered)),
            format!("{:.3}", mean(&recall)),
            format!("{:.2}", mean(&kept_terms)),
        ]);
    }
    section(&format!(
        "{} queries over {} sources (glimpse/rankonly/okapi/acme rotation)",
        workload.queries.len(),
        corpus.sources.len()
    ));
    print_table(
        &[
            "strategy",
            "sources answering",
            "R@30 after merge",
            "terms sent (mean)",
        ],
        &rows,
    );

    section("verdict");
    let get = |i: usize, j: usize| rows[i][j].parse::<f64>().unwrap();
    let (verb_r, per_r, lcd_r) = (get(0, 2), get(1, 2), get(2, 2));
    println!(
        "   per-source adaptation R@30 = {per_r:.3}  >=  verbatim {verb_r:.3}  >  LCD {lcd_r:.3}"
    );
    assert!(per_r >= verb_r - 1e-9);
    assert!(verb_r >= lcd_r);
    println!(
        "   matches §4.1.1's warning: the least-common-denominator interface loses\n\
         capability even at sources that could have done more."
    );
    starts_bench::BenchArgs::parse().finish(net.registry());
}
