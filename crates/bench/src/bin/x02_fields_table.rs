//! X2 — the §4.1.1 "Basic-1" field table, regenerated from the
//! implementation, plus the live support matrix of the simulated vendor
//! fleet (what `FieldsSupported` actually exports).

use starts_bench::{header, mark, print_table, section};
use starts_proto::attrs::BASIC1_FIELDS;
use starts_source::{vendors, Source};

fn main() {
    header("X2  §4.1.1 field table (Basic-1) — paper table, regenerated");
    let rows: Vec<Vec<String>> = BASIC1_FIELDS
        .iter()
        .map(|(field, required, new)| {
            vec![
                field.table_name().to_string(),
                if *required { "Yes" } else { "No" }.to_string(),
                if *new { "Yes" } else { "No" }.to_string(),
            ]
        })
        .collect();
    print_table(&["Field", "Required?", "New?"], &rows);

    section("live support matrix: FieldsSupported across the vendor fleet");
    let sources: Vec<Source> = vendors::fleet()
        .into_iter()
        .map(|cfg| Source::build(cfg, &[]))
        .collect();
    let mut columns: Vec<&str> = vec!["Field"];
    let ids: Vec<String> = sources.iter().map(|s| s.id().to_string()).collect();
    columns.extend(ids.iter().map(String::as_str));
    let rows: Vec<Vec<String>> = BASIC1_FIELDS
        .iter()
        .map(|(field, _, _)| {
            let mut row = vec![field.table_name().to_string()];
            for s in &sources {
                row.push(mark(s.metadata().supports_field(field)));
            }
            row
        })
        .collect();
    print_table(&columns, &rows);
    println!();
    println!(
        "required fields (Title, Date/time-last-modified, Any, Linkage) are supported by\n\
         every source — the protocol's minimum; optional fields vary per vendor."
    );
    starts_bench::BenchArgs::parse().finish(starts_obs::Registry::global());
}
