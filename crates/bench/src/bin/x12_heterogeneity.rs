//! X12 — stemming / stop-word / tokenizer heterogeneity (§3.1).
//!
//! The same query sent to engines that differ ONLY in their text
//! pipeline returns different result sets; this experiment quantifies
//! the overlap (Jaccard) between the vendors' answers over the same
//! document collection, and replays the paper's two concrete anecdotes:
//! the "The Who" stop-word trap and the "Z39.50" tokenizer litmus test.

use std::collections::HashSet;

use starts_bench::{header, print_table, section};
use starts_proto::query::parse_ranking;
use starts_proto::Query;
use starts_source::{vendors, Source};

fn result_set(source: &Source, query: &Query) -> HashSet<String> {
    source
        .execute_traced(query, Some(starts_obs::Registry::global()))
        .documents
        .iter()
        .filter_map(|d| d.linkage().map(str::to_string))
        .collect()
}

fn jaccard(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    inter / union
}

fn main() {
    header("X12  text-pipeline heterogeneity: same docs, same query, different answers");
    section("mean pairwise Jaccard overlap of result sets (8 pipeline-sensitive queries)");
    // The synthetic corpus vocabulary is pipeline-neutral, so we overlay
    // a handcrafted English collection whose matching depends on
    // stemming, stop lists, case and tokenization.
    let english: Vec<starts_index::Document> = vec![
        (
            "e1",
            "Databases for distributed systems",
            "distributed databases replicate data across database sites",
        ),
        (
            "e2",
            "A database survey",
            "the database survey covers storage engines and indexing",
        ),
        (
            "e3",
            "The Who discography",
            "the who and their albums from the sixties",
        ),
        (
            "e4",
            "State-of-the-art retrieval",
            "state-of-the-art methods for text retrieval and ranking",
        ),
        (
            "e5",
            "Z39.50 in libraries",
            "searching library catalogs with Z39.50 clients",
        ),
        (
            "e6",
            "Compiling queries",
            "compilers translate queries into execution plans",
        ),
        (
            "e7",
            "UNIX system tools",
            "UNIX tools for indexing and searching files",
        ),
        (
            "e8",
            "Ranking algorithms",
            "ranked retrieval algorithms score documents by relevance",
        ),
    ]
    .into_iter()
    .map(|(id, title, body)| {
        starts_index::Document::new()
            .field("title", title)
            .field("body-of-text", body)
            .field("linkage", format!("http://eng/{id}"))
    })
    .collect();
    let sources: Vec<Source> = vendors::fleet()
        .into_iter()
        .filter(|c| c.query_parts.supports_ranking())
        .map(|cfg| Source::build(cfg, &english))
        .collect();
    let ids: Vec<String> = sources.iter().map(|s| s.id().to_string()).collect();
    let queries = [
        r#"list((body-of-text "database"))"#, // singular vs plural: stemming
        r#"list((body-of-text "databases"))"#,
        r#"list((body-of-text "the"))"#,              // stop word
        r#"list((body-of-text "state-of-the-art"))"#, // tokenizer joiners
        r#"list((body-of-text "Z39.50"))"#,           // tokenizer separators
        r#"list((body-of-text "UNIX"))"#,             // case
        r#"list((body-of-text "compiler"))"#,         // morphology (compilers)
        r#"list((body-of-text "ranked"))"#,           // morphology (ranking)
    ];
    let mut overlap = vec![vec![0.0f64; sources.len()]; sources.len()];
    for q in &queries {
        let query = Query {
            ranking: Some(parse_ranking(q).unwrap()),
            ..Query::default()
        };
        let sets: Vec<HashSet<String>> = sources.iter().map(|s| result_set(s, &query)).collect();
        for i in 0..sets.len() {
            for j in 0..sets.len() {
                overlap[i][j] += jaccard(&sets[i], &sets[j]) / queries.len() as f64;
            }
        }
    }
    let mut columns: Vec<&str> = vec![""];
    columns.extend(ids.iter().map(String::as_str));
    let rows: Vec<Vec<String>> = overlap
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let mut r = vec![ids[i].clone()];
            r.extend(row.iter().map(|v| format!("{v:.2}")));
            r
        })
        .collect();
    print_table(&columns, &rows);
    println!();
    println!(
        "   diagonal = 1; off-diagonal < 1 quantifies §3.1's query-language problem:\n\
         identical queries over identical documents disagree because of pipelines."
    );

    section("anecdote 1: \"The Who\" (stop words, §3.1)");
    let who_docs = vec![
        starts_index::Document::new()
            .field("title", "The Who: Live at Leeds")
            .field("body-of-text", "the who rock band live album")
            .field("linkage", "http://music/who"),
        starts_index::Document::new()
            .field("title", "Unrelated Database Text")
            .field("body-of-text", "indexing and retrieval")
            .field("linkage", "http://cs/db"),
    ];
    let query = Query {
        ranking: Some(parse_ranking(r#"list("the" "who")"#).unwrap()),
        drop_stop_words: false, // the client asks to keep stop words
        ..Query::default()
    };
    for cfg in [
        vendors::acme("Acme"),
        vendors::bolt("Bolt"),
        vendors::okapi("Okapi"),
    ] {
        let source = Source::build(cfg, &who_docs);
        let meta = source.metadata();
        let results = source.execute(&query);
        println!(
            "   {:<6} TurnOffStopWords={}  stop list={:<3}  actual terms kept={}  hits={}",
            source.id(),
            if meta.turn_off_stop_words { "T" } else { "F" },
            meta.stop_word_list.len(),
            results
                .actual_ranking
                .as_ref()
                .map(|r| r.terms().len())
                .unwrap_or(0),
            results.documents.len()
        );
    }
    println!(
        "   only the engine with no stop list (Okapi) can serve the query at all —\n\
         and STARTS metadata tells the metasearcher so in advance."
    );

    section("anecdote 2: \"Z39.50\" (tokenizers, §4.3.1)");
    let z_docs = vec![starts_index::Document::new()
        .field("title", "The Z39.50 protocol")
        .field("body-of-text", "searching with Z39.50 over libraries")
        .field("linkage", "http://lib/z3950")];
    let query = Query {
        ranking: Some(parse_ranking(r#"list((body-of-text "Z39.50"))"#).unwrap()),
        ..Query::default()
    };
    for cfg in [
        vendors::acme("Acme"),
        vendors::bolt("Bolt"),
        vendors::okapi("Okapi"),
    ] {
        let source = Source::build(cfg, &z_docs);
        let tokenizer = source.metadata().tokenizer_id_list[0].0.clone();
        let hits = source.execute(&query).documents.len();
        println!(
            "   {:<6} TokenizerIDList={:<8} query \"Z39.50\" hits={}",
            source.id(),
            tokenizer,
            hits
        );
    }
    println!(
        "   the named tokenizer id predicts the behaviour — the metasearcher learns it\n\
         once per tokenizer, as §4.3.1 prescribes."
    );
    starts_bench::BenchArgs::parse().finish(starts_obs::Registry::global());
}
