//! The perf-regression gate behind the `bench_diff` binary.
//!
//! Compares a freshly-generated bench JSON artifact against a
//! checked-in baseline (`BENCH_hotpath.json` / `BENCH_shard.json` /
//! `BENCH_prune.json`). The comparison is **provenance-aware**: raw
//! QPS numbers only mean something when both runs came from the same
//! kind of machine doing the same kind of run, so
//!
//! * when `machine_parallelism` and `smoke` match, every `qps` and
//!   `decode_mints_per_s` field (and `engine_speedup`, when present)
//!   must stay within a relative tolerance of the baseline — a
//!   throughput drop past the tolerance fails the gate;
//! * otherwise the gate degrades to **invariant checks** on the fresh
//!   run alone: every `qps` and `decode_mints_per_s` must be positive,
//!   `engine_speedup` must not dip below 1, pruning rows marked
//!   `"prune": "Auto"` must actually prune (`pruned_fraction > 0`),
//!   and monolithic (`"shards": 1`) Auto rows that report
//!   `blocks_skipped` must have jumped at least one whole block
//!   undecoded (sharding can shrink every posting list under the block
//!   size, so multi-shard rows are exempt).
//!
//! Postings memory is gated in **both** modes: byte counts under a
//! `postings_bytes*` object are machine-independent, so whenever both
//! artifacts carry them the fresh run may not grow any of them past
//! [`MEM_GROWTH_TOLERANCE`] over the baseline — a memory-diet
//! regression fails even on an incomparable machine.
//!
//! Latency percentiles are deliberately not gated — they are far
//! noisier than throughput on shared CI machines.

use crate::json::Json;

/// Relative QPS drop tolerated before the gate fails (same-provenance
/// mode). 0.15 means a fresh run may be up to 15% slower than the
/// baseline; an injected 20% regression fails.
pub const DEFAULT_QPS_TOLERANCE: f64 = 0.15;

/// Relative growth tolerated in any `postings_bytes*` figure before the
/// gate fails. Byte counts are deterministic per corpus, so the slack
/// only absorbs deliberate small format changes — a fresh run may not
/// grow a footprint past 10% over the baseline.
pub const MEM_GROWTH_TOLERANCE: f64 = 0.10;

/// One comparison (or invariant) the gate evaluated.
#[derive(Debug)]
pub struct Check {
    /// What was checked, e.g. `paths/engine_topk/qps`.
    pub name: String,
    /// Whether it passed.
    pub ok: bool,
    /// Human-readable numbers behind the verdict.
    pub detail: String,
}

/// The gate's full verdict for one baseline/current pair.
#[derive(Debug)]
pub struct DiffReport {
    /// The shared `bench` name of the two artifacts.
    pub bench: String,
    /// Whether the two runs share provenance (same machine
    /// parallelism, same smoke mode) and were compared numerically.
    pub comparable: bool,
    /// Every check evaluated, in order.
    pub checks: Vec<Check>,
}

impl DiffReport {
    /// True when every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }

    /// Render the verdict as an aligned plain-text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "bench {}: {} mode\n",
            self.bench,
            if self.comparable {
                "same provenance — numeric comparison"
            } else {
                "different provenance — invariant checks only"
            }
        ));
        let width = self.checks.iter().map(|c| c.name.len()).max().unwrap_or(0);
        for c in &self.checks {
            out.push_str(&format!(
                "  [{}] {:<width$}  {}\n",
                if c.ok { "ok" } else { "FAIL" },
                c.name,
                c.detail,
            ));
        }
        out
    }
}

/// Compare a fresh artifact against its baseline. `Err` when the two
/// documents are not artifacts of the same bench.
pub fn diff(baseline: &Json, current: &Json, tolerance: f64) -> Result<DiffReport, String> {
    let b_name = baseline
        .get("bench")
        .and_then(Json::str_)
        .ok_or("baseline has no \"bench\" field")?;
    let c_name = current
        .get("bench")
        .and_then(Json::str_)
        .ok_or("current has no \"bench\" field")?;
    if b_name != c_name {
        return Err(format!(
            "bench mismatch: baseline is {b_name}, current is {c_name}"
        ));
    }

    let parallelism = |j: &Json| j.get("machine_parallelism").and_then(Json::num);
    let smoke = |j: &Json| j.get("smoke").and_then(Json::bool_);
    let comparable = parallelism(baseline).is_some()
        && parallelism(baseline) == parallelism(current)
        && smoke(baseline) == smoke(current);

    let mut checks = Vec::new();
    if comparable {
        for key in ["qps", "decode_mints_per_s"] {
            let base_vals = collect_named(baseline, key);
            let cur_vals: Vec<(String, f64)> = collect_named(current, key);
            for (path, base) in &base_vals {
                match cur_vals.iter().find(|(p, _)| p == path) {
                    Some((_, cur)) => {
                        let floor = base * (1.0 - tolerance);
                        checks.push(Check {
                            name: path.clone(),
                            ok: *cur >= floor,
                            detail: format!(
                                "baseline {base:.1}, current {cur:.1} ({:+.1}%), floor {floor:.1}",
                                (cur / base - 1.0) * 100.0
                            ),
                        });
                    }
                    None => checks.push(Check {
                        name: path.clone(),
                        ok: false,
                        detail: "present in baseline, missing in current".to_string(),
                    }),
                }
            }
        }
        let speedups = (
            baseline.get("engine_speedup").and_then(Json::num),
            current.get("engine_speedup").and_then(Json::num),
        );
        if let (Some(base), Some(cur)) = speedups {
            let floor = base * (1.0 - tolerance);
            checks.push(Check {
                name: "engine_speedup".to_string(),
                ok: cur >= floor,
                detail: format!("baseline {base:.2}x, current {cur:.2}x, floor {floor:.2}x"),
            });
        }
    } else {
        for key in ["qps", "decode_mints_per_s"] {
            for (path, v) in collect_named(current, key) {
                checks.push(Check {
                    name: format!("{path} > 0"),
                    ok: v > 0.0,
                    detail: format!("{v:.1}"),
                });
            }
        }
        if let Some(speedup) = current.get("engine_speedup").and_then(Json::num) {
            checks.push(Check {
                name: "engine_speedup >= 1".to_string(),
                ok: speedup >= 1.0,
                detail: format!("{speedup:.2}x"),
            });
        }
        for (path, frac) in auto_prune_fractions(current) {
            checks.push(Check {
                name: format!("{path} prunes"),
                ok: frac > 0.0,
                detail: format!("pruned_fraction {frac:.4}"),
            });
        }
        for (path, blocks) in auto_block_skips(current) {
            checks.push(Check {
                name: format!("{path} skips blocks"),
                ok: blocks > 0.0,
                detail: format!("blocks_skipped {blocks:.0}"),
            });
        }
    }

    // Postings memory: byte counts are deterministic per corpus, so
    // they are gated regardless of machine provenance — but only when
    // both artifacts carry the figure (old baselines predate it).
    let cur_bytes = postings_bytes(current);
    for (path, base) in postings_bytes(baseline) {
        if let Some((_, cur)) = cur_bytes.iter().find(|(p, _)| *p == path) {
            let ceiling = base * (1.0 + MEM_GROWTH_TOLERANCE);
            checks.push(Check {
                name: path,
                ok: *cur <= ceiling,
                detail: format!(
                    "baseline {base:.0} B, current {cur:.0} B ({:+.1}%), ceiling {ceiling:.0} B",
                    if base > 0.0 {
                        (cur / base - 1.0) * 100.0
                    } else {
                        0.0
                    }
                ),
            });
        }
    }

    if checks.is_empty() {
        return Err(format!("no {b_name} metrics found to check"));
    }
    Ok(DiffReport {
        bench: b_name.to_string(),
        comparable,
        checks,
    })
}

/// Every numeric field called `key`, with its slash-separated path.
fn collect_named(j: &Json, key: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk(j, "", &mut |path, k, v| {
        if k == key {
            if let Some(n) = v.num() {
                out.push((join(path, k), n));
            }
        }
    });
    out
}

/// Every numeric leaf under an object keyed `postings_bytes*`
/// (`postings_bytes/positional`, `postings_bytes_no_positions/blocks`,
/// …), with its slash-separated path.
fn postings_bytes(j: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk(j, "", &mut |path, k, v| {
        if path.split('/').any(|seg| seg.starts_with("postings_bytes")) {
            if let Some(n) = v.num() {
                out.push((join(path, k), n));
            }
        }
    });
    out
}

/// `pruned_fraction` of every object configured with `"prune": "Auto"`.
fn auto_prune_fractions(j: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk_objects(j, "", &mut |path, obj| {
        if obj.get("prune").and_then(Json::str_) == Some("Auto") {
            if let Some(frac) = obj.get("pruned_fraction").and_then(Json::num) {
                out.push((path.to_string(), frac));
            }
        }
    });
    out
}

/// `blocks_skipped` of every monolithic (`"shards": 1`) object
/// configured with `"prune": "Auto"` that reports the field. Block-Max
/// WAND must jump whole blocks there; multi-shard rows may legitimately
/// report zero when the per-shard lists fit in a single block.
fn auto_block_skips(j: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk_objects(j, "", &mut |path, obj| {
        if obj.get("prune").and_then(Json::str_) == Some("Auto")
            && obj.get("shards").and_then(Json::num) == Some(1.0)
        {
            if let Some(blocks) = obj.get("blocks_skipped").and_then(Json::num) {
                out.push((path.to_string(), blocks));
            }
        }
    });
    out
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}/{key}")
    }
}

fn walk(j: &Json, path: &str, f: &mut impl FnMut(&str, &str, &Json)) {
    match j {
        Json::Obj(members) => {
            for (k, v) in members {
                f(path, k, v);
                walk(v, &join(path, k), f);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                walk(v, &join(path, &i.to_string()), f);
            }
        }
        _ => {}
    }
}

fn walk_objects(j: &Json, path: &str, f: &mut impl FnMut(&str, &Json)) {
    match j {
        Json::Obj(members) => {
            f(path, j);
            for (k, v) in members {
                walk_objects(v, &join(path, k), f);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                walk_objects(v, &join(path, &i.to_string()), f);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(text: &str) -> Json {
        Json::parse(text).expect("artifact parses")
    }

    /// Multiply every field named `key` by `factor` — an injected
    /// regression.
    fn scale_field(j: &mut Json, key: &str, factor: f64) {
        match j {
            Json::Obj(members) => {
                for (k, v) in members.iter_mut() {
                    if k == key {
                        if let Json::Num(n) = v {
                            *n *= factor;
                        }
                    }
                    scale_field(v, key, factor);
                }
            }
            Json::Arr(items) => items.iter_mut().for_each(|v| scale_field(v, key, factor)),
            _ => {}
        }
    }

    /// Injected throughput regression: scale both gated rate metrics.
    fn scale_qps(j: &mut Json, factor: f64) {
        scale_field(j, "qps", factor);
        scale_field(j, "decode_mints_per_s", factor);
    }

    fn set_top(j: &mut Json, key: &str, value: Json) {
        if let Json::Obj(members) = j {
            for (k, v) in members.iter_mut() {
                if k == key {
                    *v = value;
                    return;
                }
            }
            members.push((key.to_string(), value));
        }
    }

    const ARTIFACTS: [&str; 6] = [
        include_str!("../../../BENCH_hotpath.json"),
        include_str!("../../../BENCH_shard.json"),
        include_str!("../../../BENCH_prune.json"),
        include_str!("../../../BENCH_monitor.json"),
        include_str!("../../../BENCH_concurrency.json"),
        include_str!("../../../BENCH_decode.json"),
    ];

    #[test]
    fn every_baseline_passes_against_itself() {
        for text in ARTIFACTS {
            let j = artifact(text);
            let report = diff(&j, &j, DEFAULT_QPS_TOLERANCE).expect("diff");
            assert!(report.passed(), "self-diff failed:\n{}", report.render());
        }
    }

    #[test]
    fn injected_regression_fails_the_gate() {
        for text in ARTIFACTS {
            let baseline = artifact(text);
            if baseline.get("machine_parallelism").is_none() {
                continue; // provenance-free artifact cannot be gated numerically
            }
            let mut current = baseline.clone();
            scale_qps(&mut current, 0.78); // a 22% QPS drop
            let report = diff(&baseline, &current, DEFAULT_QPS_TOLERANCE).expect("diff");
            assert!(report.comparable);
            assert!(
                !report.passed(),
                "22% regression slipped through:\n{}",
                report.render()
            );
        }
    }

    #[test]
    fn small_wobble_passes_the_gate() {
        let baseline = artifact(ARTIFACTS[2]);
        let mut current = baseline.clone();
        scale_qps(&mut current, 0.95); // 5% slower: within tolerance
        let report = diff(&baseline, &current, DEFAULT_QPS_TOLERANCE).expect("diff");
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn a_looser_tolerance_admits_a_bigger_drop() {
        // The same 22% drop that fails the default gate passes when the
        // caller opts into `--tolerance 0.30` (noisy shared runners).
        let baseline = artifact(ARTIFACTS[3]);
        let mut current = baseline.clone();
        scale_qps(&mut current, 0.78);
        let strict = diff(&baseline, &current, DEFAULT_QPS_TOLERANCE).expect("diff");
        assert!(!strict.passed(), "{}", strict.render());
        let loose = diff(&baseline, &current, 0.30).expect("diff");
        assert!(loose.passed(), "{}", loose.render());
    }

    #[test]
    fn different_provenance_degrades_to_invariants() {
        let baseline = artifact(ARTIFACTS[2]);
        let mut current = baseline.clone();
        set_top(&mut current, "machine_parallelism", Json::Num(64.0));
        scale_qps(&mut current, 0.5); // huge drop, but incomparable machines
        let report = diff(&baseline, &current, DEFAULT_QPS_TOLERANCE).expect("diff");
        assert!(!report.comparable);
        assert!(report.passed(), "{}", report.render());

        // ... but broken invariants still fail: a non-pruning Auto row.
        let mut broken = current.clone();
        if let Json::Obj(members) = &mut broken {
            if let Some((_, Json::Arr(configs))) = members.iter_mut().find(|(k, _)| k == "configs")
            {
                for cfg in configs.iter_mut() {
                    if cfg.get("prune").and_then(Json::str_) == Some("Auto") {
                        set_top(cfg, "pruned_fraction", Json::Num(0.0));
                    }
                }
            }
        }
        let report = diff(&baseline, &broken, DEFAULT_QPS_TOLERANCE).expect("diff");
        assert!(!report.passed(), "{}", report.render());
    }

    #[test]
    fn monolithic_auto_rows_must_skip_blocks() {
        let baseline = artifact(ARTIFACTS[2]);
        let mut current = baseline.clone();
        set_top(&mut current, "machine_parallelism", Json::Num(64.0));
        // Zero out blocks_skipped everywhere: only the shards=1 Auto
        // rows should trip the gate — multi-shard rows may have lists
        // too short to span multiple blocks.
        let mut zeroed_multi_only = current.clone();
        for (j, multi_only) in [(&mut current, false), (&mut zeroed_multi_only, true)] {
            if let Json::Obj(members) = j {
                if let Some((_, Json::Arr(configs))) =
                    members.iter_mut().find(|(k, _)| k == "configs")
                {
                    for cfg in configs.iter_mut() {
                        let shards = cfg.get("shards").and_then(Json::num);
                        if !multi_only || shards != Some(1.0) {
                            set_top(cfg, "blocks_skipped", Json::Num(0.0));
                        }
                    }
                }
            }
        }
        let report = diff(&baseline, &current, DEFAULT_QPS_TOLERANCE).expect("diff");
        assert!(!report.comparable);
        assert!(!report.passed(), "{}", report.render());
        let report = diff(&baseline, &zeroed_multi_only, DEFAULT_QPS_TOLERANCE).expect("diff");
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn decode_throughput_regression_fails_the_gate() {
        let baseline = artifact(ARTIFACTS[5]);
        let mut current = baseline.clone();
        scale_field(&mut current, "decode_mints_per_s", 0.78); // 22% slower codec
        let report = diff(&baseline, &current, DEFAULT_QPS_TOLERANCE).expect("diff");
        assert!(report.comparable);
        assert!(
            !report.passed(),
            "decode regression slipped through:\n{}",
            report.render()
        );
    }

    #[test]
    fn memory_growth_fails_the_gate_in_both_modes() {
        let baseline = artifact(ARTIFACTS[2]);

        // 20% postings growth on the same machine: QPS untouched, but
        // the footprint ceiling trips.
        let mut bloated = baseline.clone();
        scale_field(&mut bloated, "positional", 1.2);
        let report = diff(&baseline, &bloated, DEFAULT_QPS_TOLERANCE).expect("diff");
        assert!(report.comparable);
        assert!(!report.passed(), "{}", report.render());

        // The same growth on an incomparable machine still fails: byte
        // counts do not depend on core count.
        set_top(&mut bloated, "machine_parallelism", Json::Num(64.0));
        let report = diff(&baseline, &bloated, DEFAULT_QPS_TOLERANCE).expect("diff");
        assert!(!report.comparable);
        assert!(!report.passed(), "{}", report.render());

        // Growth inside the tolerance passes.
        let mut wobble = baseline.clone();
        scale_field(&mut wobble, "positional", 1.05);
        scale_field(&mut wobble, "blocks", 1.05);
        let report = diff(&baseline, &wobble, DEFAULT_QPS_TOLERANCE).expect("diff");
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn mismatched_benches_are_an_error() {
        let a = artifact(ARTIFACTS[0]);
        let b = artifact(ARTIFACTS[1]);
        assert!(diff(&a, &b, DEFAULT_QPS_TOLERANCE).is_err());
    }
}
