//! Shared scaffolding for the STARTS experiment binaries (X1–X12) and
//! Criterion benchmarks.
//!
//! Every experiment binary regenerates one artifact of the paper (a
//! figure, a table, or a claim); DESIGN.md §4 maps them and
//! EXPERIMENTS.md records paper-vs-measured. Binaries print plain-text
//! tables to stdout so their output can be diffed between runs.

use starts_corpus::{
    generate_corpus, generate_workload, CorpusConfig, GeneratedCorpus, Workload, WorkloadConfig,
};
use starts_meta::catalog::Catalog;
use starts_net::{host::wire_source, LinkProfile, SimNet, StartsClient};
use starts_source::{Source, SourceConfig};

/// The standard experiment corpus: 12 sources, 4 topics, moderate skew.
pub fn standard_corpus() -> GeneratedCorpus {
    generate_corpus(&CorpusConfig {
        n_sources: 12,
        docs_per_source: 80,
        n_topics: 4,
        background_vocab: 1500,
        topic_vocab: 100,
        doc_len: (25, 90),
        topic_skew: 0.35,
        bilingual_fraction: 0.0,
        seed: 19970526, // SIGMOD'97 started May 26, 1997 (Tucson, AZ)
    })
}

/// The standard workload over [`standard_corpus`].
pub fn standard_workload(corpus: &GeneratedCorpus) -> Workload {
    generate_workload(
        corpus,
        &WorkloadConfig {
            n_queries: 40,
            terms_per_query: (1, 3),
            max_documents: 30,
            seed: 1996,
        },
    )
}

/// Publish each corpus source with the default (Acme) personality and
/// discover them into a catalog.
/// Honour the `--stats-json` flag that every experiment binary
/// supports: when present on the command line, dump the registry's
/// metric snapshot as a JSON document after the regular output.
pub fn maybe_dump_stats(obs: &starts_obs::Registry) {
    if std::env::args().any(|a| a == "--stats-json") {
        println!("{}", starts_obs::export::json(&obs.snapshot()));
    }
}

/// Read a flag's value from the command line, accepting both
/// `--flag value` and `--flag=value` spellings.
pub fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let prefix = format!("{flag}=");
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            return args.get(i + 1).cloned();
        }
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
    }
    None
}

/// Honour the `--trace-jsonl <path>` flag: when present, dump the
/// registry's recent span events as JSON Lines (one span per line; see
/// `starts_obs::trace::write_jsonl`) to the given path.
pub fn maybe_dump_trace_jsonl(obs: &starts_obs::Registry) {
    if let Some(path) = arg_value("--trace-jsonl") {
        let events = obs.recent_spans();
        match starts_obs::trace::dump_jsonl(&events, std::path::Path::new(&path)) {
            Ok(n) => eprintln!("wrote {n} spans to {path}"),
            Err(e) => eprintln!("--trace-jsonl {path}: {e}"),
        }
    }
}

pub fn wire_and_discover(net: &SimNet, corpus: &GeneratedCorpus) -> Catalog {
    for s in &corpus.sources {
        wire_source(
            net,
            Source::build(SourceConfig::new(&s.id), &s.docs),
            LinkProfile::default(),
        );
    }
    let client = StartsClient::new(net);
    let mut catalog = Catalog::default();
    for s in &corpus.sources {
        catalog
            .discover_source(
                &client,
                &format!("starts://{}/metadata", s.id.to_lowercase()),
                LinkProfile::default(),
                false,
            )
            .expect("discovery");
    }
    catalog
}

/// Print a ruled header line.
pub fn header(title: &str) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// Print a sub-header.
pub fn section(title: &str) {
    println!();
    println!("-- {title}");
}

/// Render a simple aligned table.
pub fn print_table(columns: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(4)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = columns.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Yes/no marker for capability matrices.
pub fn mark(b: bool) -> String {
    if b {
        "yes".to_string()
    } else {
        "-".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_corpus_is_deterministic() {
        let a = standard_corpus();
        let b = standard_corpus();
        assert_eq!(a.total_docs(), b.total_docs());
        assert_eq!(a.sources.len(), 12);
    }

    #[test]
    fn arg_value_reads_both_spellings() {
        // Can't mutate the real argv in a test; exercise the parsing
        // logic through a tiny local replica of the search.
        let find = |args: &[&str], flag: &str| -> Option<String> {
            let prefix = format!("{flag}=");
            for (i, a) in args.iter().enumerate() {
                if *a == flag {
                    return args.get(i + 1).map(|s| s.to_string());
                }
                if let Some(v) = a.strip_prefix(&prefix) {
                    return Some(v.to_string());
                }
            }
            None
        };
        let args = ["x01", "--trace-jsonl", "out.jsonl"];
        assert_eq!(find(&args, "--trace-jsonl").as_deref(), Some("out.jsonl"));
        let args = ["x01", "--trace-jsonl=out2.jsonl"];
        assert_eq!(find(&args, "--trace-jsonl").as_deref(), Some("out2.jsonl"));
        let args = ["x01"];
        assert_eq!(find(&args, "--trace-jsonl"), None);
        // The real parser at least agrees there is no such flag here.
        assert_eq!(arg_value("--definitely-not-passed"), None);
    }

    #[test]
    fn wiring_discovers_all_sources() {
        let corpus = generate_corpus(&CorpusConfig {
            n_sources: 3,
            docs_per_source: 5,
            ..CorpusConfig::default()
        });
        let net = SimNet::new();
        let catalog = wire_and_discover(&net, &corpus);
        assert_eq!(catalog.len(), 3);
    }
}
