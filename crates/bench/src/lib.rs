//! Shared scaffolding for the STARTS experiment binaries (X1–X12) and
//! Criterion benchmarks.
//!
//! Every experiment binary regenerates one artifact of the paper (a
//! figure, a table, or a claim); DESIGN.md §4 maps them and
//! EXPERIMENTS.md records paper-vs-measured. Binaries print plain-text
//! tables to stdout so their output can be diffed between runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use starts_corpus::{
    generate_corpus, generate_workload, CorpusConfig, GeneratedCorpus, Workload, WorkloadConfig,
    Zipf,
};
use starts_meta::catalog::Catalog;
use starts_net::{host::wire_source, LinkProfile, SimNet, StartsClient};
use starts_source::{Source, SourceConfig};

pub mod diff;
pub mod json;

/// The standard experiment corpus: 12 sources, 4 topics, moderate skew.
pub fn standard_corpus() -> GeneratedCorpus {
    generate_corpus(&CorpusConfig {
        n_sources: 12,
        docs_per_source: 80,
        n_topics: 4,
        background_vocab: 1500,
        topic_vocab: 100,
        doc_len: (25, 90),
        topic_skew: 0.35,
        bilingual_fraction: 0.0,
        seed: 19970526, // SIGMOD'97 started May 26, 1997 (Tucson, AZ)
    })
}

/// The standard workload over [`standard_corpus`].
pub fn standard_workload(corpus: &GeneratedCorpus) -> Workload {
    generate_workload(
        corpus,
        &WorkloadConfig {
            n_queries: 40,
            terms_per_query: (1, 3),
            max_documents: 30,
            seed: 1996,
        },
    )
}

/// Draw `n` queries of 1–3 words with Zipf-distributed ranks: mostly
/// background vocabulary (common words, big posting lists), sometimes a
/// topic word (rare, discriminative). The shared workload shape for the
/// hot-path (X14) and monitoring (X18) benches.
pub fn zipf_workload(corpus: &GeneratedCorpus, n: usize, seed: u64) -> Vec<Vec<String>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bg = Zipf::new(corpus.background.len(), 1.0);
    let topic = Zipf::new(corpus.topics[0].len(), 0.8);
    (0..n)
        .map(|_| {
            let k = rng.gen_range(1..=3);
            (0..k)
                .map(|_| {
                    if rng.gen_bool(0.3) {
                        let t = rng.gen_range(0..corpus.topics.len());
                        corpus.topics[t][topic.sample(&mut rng)].clone()
                    } else {
                        corpus.background[bg.sample(&mut rng)].clone()
                    }
                })
                .collect()
        })
        .collect()
}

/// Read a flag's value from the command line, accepting both
/// `--flag value` and `--flag=value` spellings.
pub fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    find_flag_value(&args, flag)
}

fn find_flag_value(args: &[String], flag: &str) -> Option<String> {
    let prefix = format!("{flag}=");
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            return args.get(i + 1).cloned();
        }
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
    }
    None
}

/// The flags every experiment binary honours, parsed once.
///
/// X1–X13 grew near-identical copies of `--stats-json` / `--trace-jsonl`
/// handling and X14–X16 of `--smoke` / `--out`; this struct is the one
/// place that knows the spelling of all of them.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    /// `--smoke`: seconds-scale run for CI (smaller corpus/workload).
    pub smoke: bool,
    /// `--explain`: after the measurements, run one representative
    /// query and print its cost tree (`QueryProfile::render`) plus the
    /// critical path.
    pub explain: bool,
    /// `--out PATH`: where to write the bench's JSON artifact.
    pub out: Option<String>,
    /// `--stats-json`: dump the registry's metric snapshot as JSON
    /// after the regular output.
    pub stats_json: bool,
    /// `--trace-jsonl PATH`: dump recent span events as JSON Lines.
    pub trace_jsonl: Option<String>,
    /// `--live`: render a top-style terminal dashboard while the bench
    /// runs (X18).
    pub live: bool,
    /// `--alerts-jsonl PATH`: where the monitor appends structured
    /// alert transition events (X18).
    pub alerts_jsonl: Option<String>,
}

impl BenchArgs {
    /// Parse the process's command line.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self::from_args(&args)
    }

    /// Parse an explicit argument list (testable form of [`parse`]).
    ///
    /// [`parse`]: BenchArgs::parse
    pub fn from_args(args: &[String]) -> Self {
        BenchArgs {
            smoke: args.iter().any(|a| a == "--smoke"),
            explain: args.iter().any(|a| a == "--explain"),
            out: find_flag_value(args, "--out"),
            stats_json: args.iter().any(|a| a == "--stats-json"),
            trace_jsonl: find_flag_value(args, "--trace-jsonl"),
            live: args.iter().any(|a| a == "--live"),
            alerts_jsonl: find_flag_value(args, "--alerts-jsonl"),
        }
    }

    /// The output path, or `default` when `--out` was not given.
    pub fn out_or(&self, default: &str) -> String {
        self.out.clone().unwrap_or_else(|| default.to_string())
    }

    /// Honour the dump flags against a registry; call once at the end
    /// of `main`. `--stats-json` prints the metric snapshot as JSON;
    /// `--trace-jsonl PATH` writes recent spans as JSON Lines.
    pub fn finish(&self, obs: &starts_obs::Registry) {
        if self.stats_json {
            println!("{}", starts_obs::export::json(&obs.snapshot()));
        }
        if let Some(path) = &self.trace_jsonl {
            let events = obs.recent_spans();
            match starts_obs::trace::dump_jsonl(&events, std::path::Path::new(path)) {
                Ok(n) => eprintln!("wrote {n} spans to {path}"),
                Err(e) => eprintln!("--trace-jsonl {path}: {e}"),
            }
        }
    }
}

/// One full streaming pass over every postings list in the engine —
/// every shard, the any-field union plus each concrete field — through
/// the block decoder. Returns (ints decoded, checksum): each posting
/// decodes to two u32s (doc-id and tf), and the checksum keeps the
/// decode loop from being optimized away.
pub fn decode_pass(engine: &starts_index::ShardedEngine) -> (u64, u64) {
    let mut ints = 0u64;
    let mut sum = 0u64;
    for shard in engine.shards() {
        let index = shard.index();
        let fields: Vec<_> = std::iter::once(starts_index::ANY_FIELD)
            .chain(index.schema().concrete_fields())
            .collect();
        for field in fields {
            for (_, postings) in index.field_vocabulary(field) {
                for (doc, tf) in postings.docs_tfs() {
                    sum = sum
                        .wrapping_add(u64::from(doc.0))
                        .wrapping_add(u64::from(tf));
                }
                ints += 2 * postings.len() as u64;
            }
        }
    }
    (ints, sum)
}

/// Raw block-decode throughput in millions of u32s per second:
/// repeatedly stream the whole index through the decoder (see
/// [`decode_pass`]) until at least `min_secs` of wall time has
/// accumulated; one untimed pass warms the cache.
pub fn decode_mints_per_s(engine: &starts_index::ShardedEngine, min_secs: f64) -> f64 {
    std::hint::black_box(decode_pass(engine));
    let mut ints = 0u64;
    let mut sum = 0u64;
    let start = std::time::Instant::now();
    loop {
        let (i, s) = decode_pass(engine);
        ints += i;
        sum = sum.wrapping_add(s);
        if start.elapsed().as_secs_f64() >= min_secs {
            break;
        }
    }
    std::hint::black_box(sum);
    ints as f64 / start.elapsed().as_secs_f64().max(1e-12) / 1e6
}

/// Hardware threads available to this process (1 when unknown). Bench
/// JSON artifacts record this so a regression gate can tell whether a
/// baseline from another machine is comparable at all.
pub fn machine_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The uniform provenance note for bench JSON artifacts:
/// `"measured on a N-core container; <detail>"`.
pub fn provenance_note(parallelism: usize, detail: &str) -> String {
    format!("measured on a {parallelism}-core container; {detail}")
}

pub fn wire_and_discover(net: &SimNet, corpus: &GeneratedCorpus) -> Catalog {
    for s in &corpus.sources {
        wire_source(
            net,
            Source::build(SourceConfig::new(&s.id), &s.docs),
            LinkProfile::default(),
        );
    }
    let client = StartsClient::new(net);
    let mut catalog = Catalog::default();
    for s in &corpus.sources {
        catalog
            .discover_source(
                &client,
                &format!("starts://{}/metadata", s.id.to_lowercase()),
                LinkProfile::default(),
                false,
            )
            .expect("discovery");
    }
    catalog
}

/// Print a ruled header line.
pub fn header(title: &str) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// Print a sub-header.
pub fn section(title: &str) {
    println!();
    println!("-- {title}");
}

/// Render a simple aligned table.
pub fn print_table(columns: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(4)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = columns.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Yes/no marker for capability matrices.
pub fn mark(b: bool) -> String {
    if b {
        "yes".to_string()
    } else {
        "-".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_corpus_is_deterministic() {
        let a = standard_corpus();
        let b = standard_corpus();
        assert_eq!(a.total_docs(), b.total_docs());
        assert_eq!(a.sources.len(), 12);
    }

    #[test]
    fn arg_value_reads_both_spellings() {
        // Can't mutate the real argv in a test; exercise the parsing
        // logic through a tiny local replica of the search.
        let find = |args: &[&str], flag: &str| -> Option<String> {
            let prefix = format!("{flag}=");
            for (i, a) in args.iter().enumerate() {
                if *a == flag {
                    return args.get(i + 1).map(|s| s.to_string());
                }
                if let Some(v) = a.strip_prefix(&prefix) {
                    return Some(v.to_string());
                }
            }
            None
        };
        let args = ["x01", "--trace-jsonl", "out.jsonl"];
        assert_eq!(find(&args, "--trace-jsonl").as_deref(), Some("out.jsonl"));
        let args = ["x01", "--trace-jsonl=out2.jsonl"];
        assert_eq!(find(&args, "--trace-jsonl").as_deref(), Some("out2.jsonl"));
        let args = ["x01"];
        assert_eq!(find(&args, "--trace-jsonl"), None);
        // The real parser at least agrees there is no such flag here.
        assert_eq!(arg_value("--definitely-not-passed"), None);
    }

    #[test]
    fn bench_args_parse_every_flag() {
        let argv: Vec<String> = [
            "x14",
            "--smoke",
            "--out",
            "fresh.json",
            "--stats-json",
            "--trace-jsonl=t.jsonl",
            "--explain",
            "--live",
            "--alerts-jsonl=a.jsonl",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let args = BenchArgs::from_args(&argv);
        assert!(args.smoke && args.stats_json && args.explain && args.live);
        assert_eq!(args.out.as_deref(), Some("fresh.json"));
        assert_eq!(args.trace_jsonl.as_deref(), Some("t.jsonl"));
        assert_eq!(args.alerts_jsonl.as_deref(), Some("a.jsonl"));
        assert_eq!(args.out_or("default.json"), "fresh.json");

        let none = BenchArgs::from_args(&["x01".to_string()]);
        assert!(!none.smoke && !none.stats_json && !none.explain && !none.live);
        assert_eq!(none.alerts_jsonl, None);
        assert_eq!(none.out_or("default.json"), "default.json");
    }

    #[test]
    fn zipf_workload_is_deterministic_and_bounded() {
        let corpus = generate_corpus(&CorpusConfig {
            n_sources: 2,
            docs_per_source: 5,
            ..CorpusConfig::default()
        });
        let a = zipf_workload(&corpus, 25, 7);
        let b = zipf_workload(&corpus, 25, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|q| (1..=3).contains(&q.len())));
    }

    #[test]
    fn provenance_note_names_the_machine() {
        assert_eq!(
            provenance_note(4, "numbers below"),
            "measured on a 4-core container; numbers below"
        );
        assert!(machine_parallelism() >= 1);
    }

    #[test]
    fn wiring_discovers_all_sources() {
        let corpus = generate_corpus(&CorpusConfig {
            n_sources: 3,
            docs_per_source: 5,
            ..CorpusConfig::default()
        });
        let net = SimNet::new();
        let catalog = wire_and_discover(&net, &corpus);
        assert_eq!(catalog.len(), 3);
    }
}
