//! Property-based tests: arbitrary query ASTs round-trip through the
//! canonical printer and the parser, and all protocol objects round-trip
//! through SOIF.

use proptest::prelude::*;
use starts_proto::attrs::CmpOp;
use starts_proto::query::{
    parse_filter, parse_ranking, print_filter, print_ranking, FilterExpr, ProxSpec, QTerm,
    RankExpr, WeightedTerm,
};
use starts_proto::{Field, LString, Modifier, Query};
use starts_text::LangTag;

fn arb_word() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,11}"
}

fn arb_lstring() -> impl Strategy<Value = LString> {
    (
        arb_word(),
        proptest::option::of(prop_oneof![
            Just(LangTag::en_us()),
            Just(LangTag::es()),
            Just(LangTag::parse("en-GB").unwrap()),
        ]),
    )
        .prop_map(|(text, lang)| LString { lang, text })
}

fn arb_field() -> impl Strategy<Value = Field> {
    prop_oneof![
        Just(Field::Title),
        Just(Field::Author),
        Just(Field::BodyOfText),
        Just(Field::DateLastModified),
        Just(Field::Linkage),
        Just(Field::Any),
        "[a-z]{3,8}"
            .prop_filter("field names must not collide with reserved words", |w| {
                // A field name that parses as a modifier or operator would
                // legitimately re-parse differently.
                matches!(Modifier::parse(w), Modifier::Other(_))
                    && !matches!(
                        w.as_str(),
                        "and" | "or" | "and-not" | "prox" | "list" | "not"
                    )
            })
            .prop_map(Field::Other),
    ]
}

fn arb_modifier() -> impl Strategy<Value = Modifier> {
    prop_oneof![
        Just(Modifier::Stem),
        Just(Modifier::Phonetic),
        Just(Modifier::Thesaurus),
        Just(Modifier::RightTruncation),
        Just(Modifier::LeftTruncation),
        Just(Modifier::CaseSensitive),
        Just(Modifier::Cmp(CmpOp::Gt)),
        Just(Modifier::Cmp(CmpOp::Le)),
        Just(Modifier::Cmp(CmpOp::Ne)),
    ]
}

fn arb_term() -> impl Strategy<Value = QTerm> {
    (
        proptest::option::of(arb_field()),
        proptest::collection::vec(arb_modifier(), 0..3),
        arb_lstring(),
    )
        .prop_map(|(field, modifiers, value)| QTerm {
            field,
            modifiers,
            value,
        })
}

fn arb_prox() -> impl Strategy<Value = ProxSpec> {
    (0u32..20, any::<bool>()).prop_map(|(distance, ordered)| ProxSpec { distance, ordered })
}

fn arb_filter() -> impl Strategy<Value = FilterExpr> {
    let leaf = arb_term().prop_map(FilterExpr::Term);
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| FilterExpr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| FilterExpr::or(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| FilterExpr::and_not(a, b)),
            (arb_term(), arb_prox(), arb_term()).prop_map(|(l, p, r)| FilterExpr::Prox(l, p, r)),
        ]
    })
}

fn arb_weight() -> impl Strategy<Value = Option<f64>> {
    proptest::option::of((0u32..=100).prop_map(|w| f64::from(w) / 100.0))
}

fn arb_wterm() -> impl Strategy<Value = WeightedTerm> {
    (arb_term(), arb_weight()).prop_map(|(term, weight)| WeightedTerm { term, weight })
}

fn arb_ranking() -> impl Strategy<Value = RankExpr> {
    let leaf = arb_wterm().prop_map(RankExpr::Term);
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(RankExpr::List),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| RankExpr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| RankExpr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| RankExpr::AndNot(Box::new(a), Box::new(b))),
            (arb_wterm(), arb_prox(), arb_wterm()).prop_map(|(l, p, r)| RankExpr::Prox(l, p, r)),
        ]
    })
}

proptest! {
    /// print ∘ parse = identity on filter expressions.
    #[test]
    fn filter_print_parse_round_trip(f in arb_filter()) {
        let printed = print_filter(&f);
        let parsed = parse_filter(&printed)
            .unwrap_or_else(|e| panic!("reparse failed on {printed:?}: {e}"));
        prop_assert_eq!(parsed, f);
    }

    /// print ∘ parse = identity on ranking expressions.
    #[test]
    fn ranking_print_parse_round_trip(r in arb_ranking()) {
        let printed = print_ranking(&r);
        let parsed = parse_ranking(&printed)
            .unwrap_or_else(|e| panic!("reparse failed on {printed:?}: {e}"));
        prop_assert_eq!(parsed, r);
    }

    /// Whole queries round-trip through SOIF.
    #[test]
    fn query_soif_round_trip(
        filter in proptest::option::of(arb_filter()),
        ranking in proptest::option::of(arb_ranking()),
        drop_stop_words in any::<bool>(),
        max_docs in proptest::option::of(1usize..1000),
        min_score in proptest::option::of((0u32..=100).prop_map(|w| f64::from(w) / 100.0)),
    ) {
        let q = Query {
            filter,
            ranking,
            drop_stop_words,
            answer: starts_proto::AnswerSpec {
                max_documents: max_docs.unwrap_or(usize::MAX),
                min_doc_score: min_score.unwrap_or(f64::NEG_INFINITY),
                ..Default::default()
            },
            ..Query::default()
        };
        let bytes = starts_soif::write_object(&q.to_soif());
        let parsed = starts_soif::parse_one(&bytes, starts_soif::ParseMode::Strict).unwrap();
        let back = Query::from_soif(&parsed).unwrap();
        prop_assert_eq!(back, q);
    }

    /// The parser never panics on arbitrary printable input.
    #[test]
    fn parser_total(junk in "[ -~]{0,80}") {
        let _ = parse_filter(&junk);
        let _ = parse_ranking(&junk);
    }
}
