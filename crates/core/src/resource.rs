//! Resource definitions (§4.3.3) and the `@SResource` SOIF binding
//! (Example 12).
//!
//! "Our model allows several sources to be grouped together as a single
//! resource (e.g., Knight-Ridder's Dialog information service). Each
//! resource exports contact information about the sources that it
//! contains … its list of sources, together with the URLs where the
//! metadata attributes for the sources can be accessed."

use starts_soif::{SoifObject, STARTS_VERSION, VERSION_ATTR};

use crate::error::ProtoError;

/// A resource's exported source list: `(source id, metadata URL)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Resource {
    /// The sources available at this resource.
    pub sources: Vec<(String, String)>,
}

impl Resource {
    /// Build from pairs.
    pub fn new(sources: impl IntoIterator<Item = (String, String)>) -> Self {
        Resource {
            sources: sources.into_iter().collect(),
        }
    }

    /// The metadata URL for a source id.
    pub fn metadata_url(&self, source_id: &str) -> Option<&str> {
        self.sources
            .iter()
            .find(|(id, _)| id == source_id)
            .map(|(_, url)| url.as_str())
    }

    /// Source ids in declaration order.
    pub fn source_ids(&self) -> impl Iterator<Item = &str> {
        self.sources.iter().map(|(id, _)| id.as_str())
    }

    /// Encode as an `@SResource` object (Example 12).
    pub fn to_soif(&self) -> SoifObject {
        let mut o = SoifObject::new("SResource");
        o.push_str(VERSION_ATTR, STARTS_VERSION);
        let lines: Vec<String> = self
            .sources
            .iter()
            .map(|(id, url)| format!("{id} {url}"))
            .collect();
        o.push_str("SourceList", lines.join("\n"));
        o
    }

    /// Decode from an `@SResource` object.
    pub fn from_soif(o: &SoifObject) -> Result<Resource, ProtoError> {
        if !o.template.eq_ignore_ascii_case("SResource") {
            return Err(ProtoError::WrongTemplate {
                expected: "SResource",
                found: o.template.clone(),
            });
        }
        let list = o
            .get_str("SourceList")
            .ok_or_else(|| ProtoError::missing("SResource", "SourceList"))?;
        let mut sources = Vec::new();
        for line in list.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let id = parts
                .next()
                .ok_or_else(|| ProtoError::invalid("SourceList", "empty line"))?;
            let url = parts.next().ok_or_else(|| {
                ProtoError::invalid("SourceList", format!("missing URL for {id:?}"))
            })?;
            sources.push((id.to_string(), url.to_string()));
        }
        Ok(Resource { sources })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starts_soif::{parse_one, write_object, ParseMode};

    fn example12_resource() -> Resource {
        Resource::new([
            (
                "Source-1".to_string(),
                "ftp://www.stanford.edu/source_1".to_string(),
            ),
            (
                "Source-2".to_string(),
                "ftp://www.stanford.edu/source_2".to_string(),
            ),
        ])
    }

    #[test]
    fn example12_encoding() {
        let r = example12_resource();
        let o = r.to_soif();
        assert_eq!(
            o.get_str("SourceList"),
            Some(
                "Source-1 ftp://www.stanford.edu/source_1\n\
                 Source-2 ftp://www.stanford.edu/source_2"
            )
        );
    }

    #[test]
    fn round_trip() {
        let r = example12_resource();
        let bytes = write_object(&r.to_soif());
        let back = Resource::from_soif(&parse_one(&bytes, ParseMode::Strict).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn lookups() {
        let r = example12_resource();
        assert_eq!(
            r.metadata_url("Source-2"),
            Some("ftp://www.stanford.edu/source_2")
        );
        assert_eq!(r.metadata_url("Source-9"), None);
        let ids: Vec<&str> = r.source_ids().collect();
        assert_eq!(ids, vec!["Source-1", "Source-2"]);
    }

    #[test]
    fn decode_errors() {
        let o = SoifObject::new("SResource");
        assert!(Resource::from_soif(&o).is_err());
        let mut o = SoifObject::new("SResource");
        o.push_str("SourceList", "OnlyAnId");
        assert!(Resource::from_soif(&o).is_err());
    }

    #[test]
    fn empty_resource_round_trips() {
        let r = Resource::default();
        let back = Resource::from_soif(&r.to_soif()).unwrap();
        assert_eq!(back, r);
    }
}
