//! Per-query cost profiles carried inside protocol objects.
//!
//! STARTS §3.4 standardizes *static* source metadata, and §4.3 lets a
//! source "export more information than what is required" via extension
//! attributes that consumers must ignore when they do not understand
//! them. We use that headroom a second time (the first was
//! [`XTraceContext`](crate::trace)): a host that executed a traced query
//! attaches a structured breakdown of *where the time went* — rewrite,
//! translate, execute, per-shard search, prune counters — and the
//! metasearcher grafts those host-side stages under its own
//! select/adapt/dispatch/merge stages, producing one hierarchical
//! [`QueryProfile`] per federated query.
//!
//! The profile rides in a single optional attribute, [`PROFILE_ATTR`]
//! (`XQueryProfile`), on `@SQResults`. Sources that predate the
//! attribute never emit it and their encodings are byte-identical to the
//! paper's Examples 6–8; decoding is deliberately lenient, so a
//! malformed value degrades to "no profile" rather than an error —
//! profiling must never break a query.
//!
//! Stage offsets are microseconds relative to the *profile root's*
//! start, so a consumer can rebase an entire subtree by shifting the
//! root: the metasearcher does exactly that when it grafts a host-side
//! profile under the client-side stage that timed the exchange.

/// The extension attribute carrying the query profile on `@SQResults`.
pub const PROFILE_ATTR: &str = "XQueryProfile";

/// One timed stage of query processing: a named interval plus metadata
/// counters and nested sub-stages.
///
/// Invariant (checked by [`StageCost::is_consistent`], not enforced at
/// construction): every child interval lies within its parent's.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageCost {
    /// Stage name (no whitespace), e.g. `execute` or `shard-3`.
    pub name: String,
    /// Start offset in microseconds from the profile root's start.
    pub start_us: u64,
    /// Wall-clock duration of the stage in microseconds.
    pub duration_us: u64,
    /// Metadata counters (`key=value`; neither side may contain
    /// whitespace or `=`), e.g. `skipped_docs=812`.
    pub meta: Vec<(String, String)>,
    /// Nested sub-stages, each contained in this stage's interval.
    pub children: Vec<StageCost>,
}

impl StageCost {
    /// A leaf stage covering `[start_us, start_us + duration_us)`.
    pub fn new(name: impl Into<String>, start_us: u64, duration_us: u64) -> StageCost {
        StageCost {
            name: name.into(),
            start_us,
            duration_us,
            meta: Vec::new(),
            children: Vec::new(),
        }
    }

    /// End offset (exclusive) in microseconds from the root's start.
    pub fn end_us(&self) -> u64 {
        self.start_us.saturating_add(self.duration_us)
    }

    /// Attach a metadata counter (builder-style).
    pub fn with_meta(mut self, key: impl Into<String>, value: impl ToString) -> StageCost {
        self.meta.push((key.into(), value.to_string()));
        self
    }

    /// Look up a metadata value.
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Shift this stage and all descendants by `delta_us` — used to
    /// rebase a host-side profile (offsets relative to the host root)
    /// into the client-side timeline.
    pub fn shift(&mut self, delta_us: u64) {
        self.start_us += delta_us;
        for c in &mut self.children {
            c.shift(delta_us);
        }
    }

    /// Whether every descendant's interval nests inside its parent's.
    pub fn is_consistent(&self) -> bool {
        self.children.iter().all(|c| {
            c.start_us >= self.start_us && c.end_us() <= self.end_us() && c.is_consistent()
        })
    }

    /// Depth-first search for the first stage with `name`.
    pub fn find(&self, name: &str) -> Option<&StageCost> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    fn encode_into(&self, depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{} {} {} {}",
            depth, self.start_us, self.duration_us, self.name
        );
        for (k, v) in &self.meta {
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
        for c in &self.children {
            c.encode_into(depth + 1, out);
        }
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        let indent = "  ".repeat(depth);
        let label = format!("{indent}{}", self.name);
        let _ = write!(out, "{label:<42} {:>10}us", self.duration_us);
        if !self.meta.is_empty() {
            let metas: Vec<String> = self.meta.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let _ = write!(out, "  [{}]", metas.join(" "));
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }
}

/// The full cost accounting of one federated query: a stage tree rooted
/// at the outermost client- or host-side stage.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryProfile {
    /// The metasearcher-minted query id (e.g. `q-000042`), or the empty
    /// string for profiles produced outside a traced exchange.
    pub query_id: String,
    /// The root stage (its `start_us` is 0 by convention).
    pub root: StageCost,
}

impl QueryProfile {
    /// Total wall-clock of the profiled query in microseconds.
    pub fn total_us(&self) -> u64 {
        self.root.duration_us
    }

    /// Whether every stage nests inside its parent (see
    /// [`StageCost::is_consistent`]).
    pub fn is_consistent(&self) -> bool {
        self.root.is_consistent()
    }

    /// Depth-first search for the first stage with `name`.
    pub fn find(&self, name: &str) -> Option<&StageCost> {
        self.root.find(name)
    }

    /// Encode as the attribute value: a first line holding the query id
    /// followed by one preorder line per stage,
    /// `<depth> <start_us> <duration_us> <name> [key=value]*`.
    /// All-integer and whitespace-delimited, so the encoding round-trips
    /// exactly (no float formatting ambiguity).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.query_id);
        out.push('\n');
        self.root.encode_into(0, &mut out);
        // Drop the trailing newline: SOIF values are exact byte strings
        // and a symmetric codec is easier to reason about.
        out.pop();
        out
    }

    /// Decode an attribute value. Lenient: anything that does not parse
    /// into a well-formed stage tree yields `None` (per §4.3, unknown or
    /// unusable extension data must not affect query processing).
    pub fn decode(value: &str) -> Option<QueryProfile> {
        let mut lines = value.lines();
        let query_id = lines.next()?.trim();
        if query_id.contains(char::is_whitespace) {
            return None;
        }
        // Parse stage lines into (depth, stage) pairs.
        let mut flat: Vec<(usize, StageCost)> = Vec::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut tok = line.split_whitespace();
            let depth: usize = tok.next()?.parse().ok()?;
            let start_us: u64 = tok.next()?.parse().ok()?;
            let duration_us: u64 = tok.next()?.parse().ok()?;
            let name = tok.next()?;
            let mut stage = StageCost::new(name, start_us, duration_us);
            for kv in tok {
                let (k, v) = kv.split_once('=')?;
                if k.is_empty() {
                    return None;
                }
                stage.meta.push((k.to_string(), v.to_string()));
            }
            flat.push((depth, stage));
        }
        // Rebuild the tree from depths: exactly one root at depth 0,
        // every later line at most one level deeper than its parent.
        let mut iter = flat.into_iter();
        let (d0, root) = iter.next()?;
        if d0 != 0 {
            return None;
        }
        let mut stack: Vec<StageCost> = vec![root];
        for (depth, stage) in iter {
            if depth == 0 || depth > stack.len() {
                return None; // second root, or a skipped level
            }
            while stack.len() > depth {
                let done = stack.pop()?;
                stack.last_mut()?.children.push(done);
            }
            stack.push(stage);
        }
        while stack.len() > 1 {
            let done = stack.pop()?;
            stack.last_mut()?.children.push(done);
        }
        Some(QueryProfile {
            query_id: query_id.to_string(),
            root: stack.pop()?,
        })
    }

    /// The chain of stages that bounded the query's wall-clock: from the
    /// root, repeatedly descend into the most expensive child. With a
    /// parallel fan-out this is the slowest worker (they start
    /// together); with a sequential pipeline it is the dominant stage,
    /// not merely the last one to finish.
    pub fn critical_path(&self) -> Vec<&StageCost> {
        let mut path = vec![&self.root];
        let mut cur = &self.root;
        while let Some(next) = cur.children.iter().max_by_key(|c| c.duration_us) {
            path.push(next);
            cur = next;
        }
        path
    }

    /// One-line critical path: `meta.search (81204us) → dispatch … `.
    pub fn critical_path_summary(&self) -> String {
        self.critical_path()
            .iter()
            .map(|s| format!("{} ({}us)", s.name, s.duration_us))
            .collect::<Vec<_>>()
            .join(" → ")
    }

    /// Render the stage tree as an indented, human-readable cost table —
    /// the body of `--explain` output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.query_id.is_empty() {
            out.push_str(&format!("query {}\n", self.query_id));
        }
        self.root.render_into(0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryProfile {
        let mut execute = StageCost::new("execute", 30, 400)
            .with_meta("shards", 4)
            .with_meta("skipped_docs", 812);
        execute.children = vec![
            StageCost::new("shard-0", 40, 120),
            StageCost::new("shard-1", 40, 350),
        ];
        QueryProfile {
            query_id: "q-000007".to_string(),
            root: StageCost {
                name: "source.execute".to_string(),
                start_us: 0,
                duration_us: 450,
                meta: vec![("source".to_string(), "S1".to_string())],
                children: vec![
                    StageCost::new("rewrite", 0, 10),
                    StageCost::new("translate", 10, 20),
                    execute,
                ],
            },
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = sample();
        let encoded = p.encode();
        assert_eq!(
            encoded,
            "q-000007\n\
             0 0 450 source.execute source=S1\n\
             1 0 10 rewrite\n\
             1 10 20 translate\n\
             1 30 400 execute shards=4 skipped_docs=812\n\
             2 40 120 shard-0\n\
             2 40 350 shard-1"
        );
        assert_eq!(QueryProfile::decode(&encoded), Some(p));
    }

    #[test]
    fn malformed_values_decode_to_none() {
        for bad in [
            "",
            "q-1\n1 0 10 child-without-root",
            "q-1\n0 0 10 a\n2 0 5 skipped-a-level",
            "q-1\n0 0 10 a\n0 0 5 second-root",
            "q-1\n0 x 10 bad-number",
            "q-1\n0 0 10 a badmeta",
            "q-1\n0 0 10 a =emptykey",
            "two words\n0 0 10 a",
        ] {
            assert_eq!(QueryProfile::decode(bad), None, "input {bad:?}");
        }
    }

    #[test]
    fn empty_query_id_is_allowed() {
        // Standalone host profiles (untraced benches) have no query id.
        let p = QueryProfile {
            query_id: String::new(),
            root: StageCost::new("source.execute", 0, 5),
        };
        assert_eq!(QueryProfile::decode(&p.encode()), Some(p));
    }

    #[test]
    fn consistency_checks_nesting() {
        let p = sample();
        assert!(p.is_consistent());
        let mut bad = p.clone();
        bad.root.children[2].children[1].duration_us = 10_000; // overruns parent
        assert!(!bad.is_consistent());
    }

    #[test]
    fn critical_path_follows_latest_finisher() {
        let p = sample();
        let names: Vec<&str> = p.critical_path().iter().map(|s| s.name.as_str()).collect();
        // execute ends at 430 (latest top-level child); shard-1 ends at
        // 390 vs shard-0 at 160.
        assert_eq!(names, ["source.execute", "execute", "shard-1"]);
        let summary = p.critical_path_summary();
        assert!(summary.starts_with("source.execute (450us) → execute (400us)"));
    }

    #[test]
    fn shift_rebases_whole_subtree() {
        let mut p = sample();
        p.root.shift(1_000);
        assert_eq!(p.root.start_us, 1_000);
        assert_eq!(p.root.children[2].children[1].start_us, 1_040);
        assert!(p.is_consistent());
    }

    #[test]
    fn render_contains_stages_and_meta() {
        let text = sample().render();
        assert!(text.contains("query q-000007"));
        assert!(text.contains("source.execute"));
        assert!(text.contains("shard-1"));
        assert!(text.contains("[shards=4 skipped_docs=812]"));
    }

    #[test]
    fn find_descends_depth_first() {
        let p = sample();
        assert_eq!(p.find("shard-1").unwrap().duration_us, 350);
        assert_eq!(p.find("execute").unwrap().meta_value("shards"), Some("4"));
        assert!(p.find("nope").is_none());
    }
}
