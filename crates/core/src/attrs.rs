//! The "Basic-1" attribute set: fields and modifiers (§4.1.1).
//!
//! "To make interoperability easier, we decided to define a 'recommended'
//! set of attributes that sources should try to support. … we decided to
//! pick the GILS attribute set, which in turn inherits all of the
//! Z39.50-1995 Bib-1 use attributes. … We also added a few attributes
//! that were not in the GILS set."
//!
//! The two tables in §4.1.1 are reproduced verbatim by
//! [`BASIC1_FIELDS`] and [`BASIC1_MODIFIERS`] (experiment X2/X3
//! regenerates them). Queries may also use attributes from *other*
//! attribute sets by qualifying them (`[basic-1 author]` in metadata
//! syntax); [`Field::Other`] covers those.

use std::fmt;

/// The attribute-set identifier for documents, as used in queries'
/// `DefaultAttributeSet` and in metadata values like `[basic-1 author]`.
pub const ATTRSET_BASIC1: &str = "basic-1";

/// The attribute-set identifier for source metadata (§4.3.1).
pub const ATTRSET_MBASIC1: &str = "mbasic-1";

/// A document field — a Z39.50/GILS "use attribute".
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Field {
    /// `Title` — required.
    Title,
    /// `Author` — optional.
    Author,
    /// `Body-of-text` — optional.
    BodyOfText,
    /// `Document-text` — **new** in STARTS: "provides a way to pass
    /// documents to the sources as part of the queries, which could be
    /// useful to do relevance feedback".
    DocumentText,
    /// `Date/time-last-modified` — required. (The paper's example
    /// queries spell it `date-last-modified`; both parse.)
    DateLastModified,
    /// `Any` — required; the default when a term has no field.
    Any,
    /// `Linkage` — required: "the value of the Linkage field of a
    /// document is its URL, and it is returned with the query results so
    /// that the document can be retrieved outside of our protocol."
    Linkage,
    /// `Linkage-type` — optional: the document's MIME type.
    LinkageType,
    /// `Cross-reference-linkage` — optional: URLs mentioned in the
    /// document.
    CrossReferenceLinkage,
    /// `Languages` — optional.
    Languages,
    /// `Free-form-text` — **new**: "provides a way to pass to the
    /// sources queries that are not expressed in our query language".
    FreeFormText,
    /// A field from another attribute set (qualified in metadata).
    Other(String),
}

impl Field {
    /// Canonical query-syntax name (lowercase; `Date/time-last-modified`
    /// uses the example queries' spelling).
    pub fn name(&self) -> &str {
        match self {
            Field::Title => "title",
            Field::Author => "author",
            Field::BodyOfText => "body-of-text",
            Field::DocumentText => "document-text",
            Field::DateLastModified => "date-last-modified",
            Field::Any => "any",
            Field::Linkage => "linkage",
            Field::LinkageType => "linkage-type",
            Field::CrossReferenceLinkage => "cross-reference-linkage",
            Field::Languages => "languages",
            Field::FreeFormText => "free-form-text",
            Field::Other(s) => s,
        }
    }

    /// The display name used in the paper's table.
    pub fn table_name(&self) -> &str {
        match self {
            Field::Title => "Title",
            Field::Author => "Author",
            Field::BodyOfText => "Body-of-text",
            Field::DocumentText => "Document-text",
            Field::DateLastModified => "Date/time-last-modified",
            Field::Any => "Any",
            Field::Linkage => "Linkage",
            Field::LinkageType => "Linkage-type",
            Field::CrossReferenceLinkage => "Cross-reference-linkage",
            Field::Languages => "Languages",
            Field::FreeFormText => "Free-form-text",
            Field::Other(s) => s,
        }
    }

    /// Parse a field name (case-insensitive; accepts both the table
    /// spelling and the query spelling of the date field). Unknown names
    /// become [`Field::Other`].
    pub fn parse(name: &str) -> Field {
        let lower = name.to_ascii_lowercase();
        match lower.as_str() {
            "title" => Field::Title,
            "author" => Field::Author,
            "body-of-text" => Field::BodyOfText,
            "document-text" => Field::DocumentText,
            "date-last-modified" | "date/time-last-modified" | "date-time-last-modified" => {
                Field::DateLastModified
            }
            "any" => Field::Any,
            "linkage" => Field::Linkage,
            "linkage-type" => Field::LinkageType,
            "cross-reference-linkage" => Field::CrossReferenceLinkage,
            "languages" => Field::Languages,
            "free-form-text" => Field::FreeFormText,
            _ => Field::Other(lower),
        }
    }

    /// Whether the paper's table marks this field **Required** —
    /// "meaning that the source must recognize these fields. However, the
    /// source may freely interpret them."
    pub fn required(&self) -> bool {
        matches!(
            self,
            Field::Title | Field::DateLastModified | Field::Any | Field::Linkage
        )
    }

    /// Whether the paper's table marks this field **New** (not in GILS).
    pub fn is_new(&self) -> bool {
        matches!(self, Field::DocumentText | Field::FreeFormText)
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The §4.1.1 field table, in the paper's order: (field, required, new).
pub const fn basic1_fields() -> [(Field, bool, bool); 11] {
    [
        (Field::Title, true, false),
        (Field::Author, false, false),
        (Field::BodyOfText, false, false),
        (Field::DocumentText, false, true),
        (Field::DateLastModified, true, false),
        (Field::Any, true, false),
        (Field::Linkage, true, false),
        (Field::LinkageType, false, false),
        (Field::CrossReferenceLinkage, false, false),
        (Field::Languages, false, false),
        (Field::FreeFormText, false, true),
    ]
}

/// The §4.1.1 field table as a slice.
pub static BASIC1_FIELDS: [(Field, bool, bool); 11] = basic1_fields();

/// Comparison operators usable as modifiers ("only make sense for fields
/// like Date/time-last-modified").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=` — the default relation.
    Eq,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Query-syntax spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "=",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
            CmpOp::Ne => "!=",
        }
    }

    /// Parse a comparison operator.
    pub fn parse(s: &str) -> Option<CmpOp> {
        Some(match s {
            "<" => CmpOp::Lt,
            "<=" => CmpOp::Le,
            "=" => CmpOp::Eq,
            ">=" => CmpOp::Ge,
            ">" => CmpOp::Gt,
            "!=" => CmpOp::Ne,
            _ => return None,
        })
    }
}

/// A term modifier — a Z39.50 "relation attribute". "Zero or more
/// modifiers can be specified for each term. All the modifiers below are
/// optional, i.e., the search engines need not support them."
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Modifier {
    /// One of `<, <=, =, >=, >, !=` (default `=`).
    Cmp(CmpOp),
    /// `Phonetic` (default: no soundex).
    Phonetic,
    /// `Stem` (default: no stemming).
    Stem,
    /// `Thesaurus` (default: no expansion) — **new** in STARTS.
    Thesaurus,
    /// `Right-truncation` (default: none).
    RightTruncation,
    /// `Left-truncation` (default: none).
    LeftTruncation,
    /// `Case-sensitive` (default: case insensitive) — **new** in STARTS.
    CaseSensitive,
    /// A modifier from another attribute set.
    Other(String),
}

impl Modifier {
    /// Canonical query-syntax name.
    pub fn name(&self) -> &str {
        match self {
            Modifier::Cmp(op) => op.as_str(),
            Modifier::Phonetic => "phonetic",
            Modifier::Stem => "stem",
            Modifier::Thesaurus => "thesaurus",
            Modifier::RightTruncation => "right-truncation",
            Modifier::LeftTruncation => "left-truncation",
            Modifier::CaseSensitive => "case-sensitive",
            Modifier::Other(s) => s,
        }
    }

    /// Parse a modifier name or comparison symbol. Names outside the
    /// known set become [`Modifier::Other`]; the caller decides if the
    /// context allows that.
    pub fn parse(s: &str) -> Modifier {
        if let Some(op) = CmpOp::parse(s) {
            return Modifier::Cmp(op);
        }
        match s.to_ascii_lowercase().as_str() {
            "phonetic" | "phonetics" | "soundex" => Modifier::Phonetic,
            "stem" => Modifier::Stem,
            "thesaurus" => Modifier::Thesaurus,
            "right-truncation" => Modifier::RightTruncation,
            "left-truncation" => Modifier::LeftTruncation,
            "case-sensitive" => Modifier::CaseSensitive,
            other => Modifier::Other(other.to_string()),
        }
    }

    /// Whether the §4.1.1 table marks this modifier **New**.
    pub fn is_new(&self) -> bool {
        matches!(self, Modifier::Thesaurus | Modifier::CaseSensitive)
    }

    /// The "Default" column of the §4.1.1 modifier table.
    pub fn default_behaviour(&self) -> &'static str {
        match self {
            Modifier::Cmp(_) => "=",
            Modifier::Phonetic => "No soundex",
            Modifier::Stem => "No stemming",
            Modifier::Thesaurus => "No thesaurus expansion",
            Modifier::RightTruncation => "No right truncation",
            Modifier::LeftTruncation => "No left truncation",
            Modifier::CaseSensitive => "Case insensitive",
            Modifier::Other(_) => "(not in Basic-1)",
        }
    }
}

impl fmt::Display for Modifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The §4.1.1 modifier table rows (the comparison row is collapsed as in
/// the paper): (table label, representative modifier, new).
pub static BASIC1_MODIFIERS: &[(&str, Modifier, bool)] = &[
    ("<, <=, =, >=, >, !=", Modifier::Cmp(CmpOp::Eq), false),
    ("Phonetic", Modifier::Phonetic, false),
    ("Stem", Modifier::Stem, false),
    ("Thesaurus", Modifier::Thesaurus, true),
    ("Right-truncation", Modifier::RightTruncation, false),
    ("Left-truncation", Modifier::LeftTruncation, false),
    ("Case-sensitive", Modifier::CaseSensitive, true),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_table_matches_paper() {
        // 11 fields; required = Title, Date/time-last-modified, Any,
        // Linkage; new = Document-text, Free-form-text.
        assert_eq!(BASIC1_FIELDS.len(), 11);
        let required: Vec<&Field> = BASIC1_FIELDS
            .iter()
            .filter(|(_, req, _)| *req)
            .map(|(f, _, _)| f)
            .collect();
        assert_eq!(
            required,
            vec![
                &Field::Title,
                &Field::DateLastModified,
                &Field::Any,
                &Field::Linkage
            ]
        );
        let new: Vec<&Field> = BASIC1_FIELDS
            .iter()
            .filter(|(_, _, n)| *n)
            .map(|(f, _, _)| f)
            .collect();
        assert_eq!(new, vec![&Field::DocumentText, &Field::FreeFormText]);
        // Table flags agree with the methods.
        for (f, req, new) in &BASIC1_FIELDS {
            assert_eq!(f.required(), *req, "{f}");
            assert_eq!(f.is_new(), *new, "{f}");
        }
    }

    #[test]
    fn field_parse_round_trip() {
        for (f, _, _) in &BASIC1_FIELDS {
            assert_eq!(&Field::parse(f.name()), f);
            assert_eq!(&Field::parse(f.table_name()), f);
        }
        assert_eq!(
            Field::parse("abstract"),
            Field::Other("abstract".to_string())
        );
    }

    #[test]
    fn date_field_spellings() {
        assert_eq!(Field::parse("date-last-modified"), Field::DateLastModified);
        assert_eq!(
            Field::parse("Date/time-last-modified"),
            Field::DateLastModified
        );
    }

    #[test]
    fn modifier_table_matches_paper() {
        assert_eq!(BASIC1_MODIFIERS.len(), 7);
        let new: Vec<&str> = BASIC1_MODIFIERS
            .iter()
            .filter(|(_, _, n)| *n)
            .map(|(l, _, _)| *l)
            .collect();
        assert_eq!(new, vec!["Thesaurus", "Case-sensitive"]);
    }

    #[test]
    fn modifier_parse() {
        assert_eq!(Modifier::parse("stem"), Modifier::Stem);
        assert_eq!(Modifier::parse("phonetics"), Modifier::Phonetic);
        assert_eq!(Modifier::parse(">="), Modifier::Cmp(CmpOp::Ge));
        assert_eq!(Modifier::parse("!="), Modifier::Cmp(CmpOp::Ne));
        assert_eq!(
            Modifier::parse("fuzzy"),
            Modifier::Other("fuzzy".to_string())
        );
    }

    #[test]
    fn cmp_round_trip() {
        for op in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Eq,
            CmpOp::Ge,
            CmpOp::Gt,
            CmpOp::Ne,
        ] {
            assert_eq!(CmpOp::parse(op.as_str()), Some(op));
        }
        assert_eq!(CmpOp::parse("=="), None);
    }

    #[test]
    fn defaults_column() {
        assert_eq!(Modifier::Stem.default_behaviour(), "No stemming");
        assert_eq!(
            Modifier::CaseSensitive.default_behaviour(),
            "Case insensitive"
        );
    }
}
