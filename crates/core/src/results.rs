//! Query results (§4.2): `@SQResults` headers and `@SQRDocument`
//! per-document objects (Examples 7–9).
//!
//! Results carry everything a metasearcher needs to merge ranks *without
//! retrieving documents*: the unnormalized `RawScore`, the source id(s),
//! per-query-term statistics (term frequency, term weight, document
//! frequency), and the document's size and token count. They also carry
//! the **actual query** the source executed, which doubles as the
//! protocol's only error-reporting channel (a source silently drops what
//! it cannot do and shows you what it did).

use starts_soif::{write_object_into, SoifObject, SoifReader, STARTS_VERSION, VERSION_ATTR};

use crate::attrs::Field;
use crate::error::ProtoError;
use crate::profile::{QueryProfile, PROFILE_ATTR};
use crate::query::{
    fmt_weight, parse_filter, parse_ranking, print_filter, print_ranking, print_term, FilterExpr,
    QTerm, RankExpr,
};
use crate::trace::{TraceContext, TRACE_ATTR};

/// One line of the `TermStats` attribute: a query term and its statistics
/// in this document (Example 8:
/// `(body-of-text "distributed") 10 0.31 190`).
#[derive(Debug, Clone, PartialEq)]
pub struct TermStatsEntry {
    /// The ranking-expression term (with its field, as modified by the
    /// query fields "if possible").
    pub term: QTerm,
    /// `Term-frequency`: occurrences in the document.
    pub term_frequency: u32,
    /// `Term-weight`: the weight assigned by the source's engine.
    pub term_weight: f64,
    /// `Document-frequency`: documents at the source containing the term.
    pub document_frequency: u32,
}

impl TermStatsEntry {
    fn encode(&self) -> String {
        format!(
            "{} {} {} {}",
            print_term(&self.term),
            self.term_frequency,
            fmt_weight(self.term_weight),
            self.document_frequency
        )
    }

    fn decode(line: &str) -> Result<TermStatsEntry, ProtoError> {
        // The term is a parenthesized (or bare-quoted) term followed by
        // three numbers. Split at the last three whitespace-separated
        // tokens.
        let trimmed = line.trim();
        let mut parts: Vec<&str> = trimmed.rsplitn(4, char::is_whitespace).collect();
        if parts.len() != 4 {
            return Err(ProtoError::invalid(
                "TermStats",
                format!("bad line {line:?}"),
            ));
        }
        parts.reverse(); // [term-text, tf, weight, df]
        let term_src = parts[0].trim();
        let term = match crate::query::parse_filter(term_src)? {
            FilterExpr::Term(t) => t,
            _ => {
                return Err(ProtoError::invalid(
                    "TermStats",
                    "expected a single term before the statistics",
                ))
            }
        };
        let tf: u32 = parts[1]
            .parse()
            .map_err(|_| ProtoError::invalid("TermStats", "bad term frequency"))?;
        let weight: f64 = parts[2]
            .parse()
            .map_err(|_| ProtoError::invalid("TermStats", "bad term weight"))?;
        let df: u32 = parts[3]
            .parse()
            .map_err(|_| ProtoError::invalid("TermStats", "bad document frequency"))?;
        Ok(TermStatsEntry {
            term,
            term_frequency: tf,
            term_weight: weight,
            document_frequency: df,
        })
    }
}

/// One document of a query result — an `@SQRDocument` object.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultDocument {
    /// "The unnormalized score of the document for the query."
    pub raw_score: Option<f64>,
    /// "The id of the source(s) where the document appears" — plural
    /// when a resource merged duplicates (Figure 1).
    pub sources: Vec<String>,
    /// Returned answer fields, in order (`linkage` is always present).
    pub fields: Vec<(Field, String)>,
    /// Statistics for each ranking-expression term.
    pub term_stats: Vec<TermStatsEntry>,
    /// `DocSize`: document size in KBytes.
    pub doc_size_kb: u32,
    /// `DocCount`: tokens in the document, as determined by the source.
    pub doc_count: u64,
}

impl ResultDocument {
    /// The document's URL (its `Linkage` field), if returned.
    pub fn linkage(&self) -> Option<&str> {
        self.field(&Field::Linkage)
    }

    /// First value of a returned field.
    pub fn field(&self, f: &Field) -> Option<&str> {
        self.fields
            .iter()
            .find(|(g, _)| g == f)
            .map(|(_, v)| v.as_str())
    }

    /// Encode as an `@SQRDocument` SOIF object (Example 8 layout).
    pub fn to_soif(&self) -> SoifObject {
        let mut o = SoifObject::new("SQRDocument");
        o.push_str(VERSION_ATTR, STARTS_VERSION);
        if let Some(s) = self.raw_score {
            o.push_str("RawScore", fmt_weight(s));
        }
        o.push_str("Sources", self.sources.join(" "));
        for (f, v) in &self.fields {
            o.push_str(f.name(), v);
        }
        if !self.term_stats.is_empty() {
            let lines: Vec<String> = self.term_stats.iter().map(TermStatsEntry::encode).collect();
            o.push_str("TermStats", lines.join("\n"));
        }
        o.push_str("DocSize", self.doc_size_kb.to_string());
        o.push_str("DocCount", self.doc_count.to_string());
        o
    }

    /// Decode from an `@SQRDocument` object.
    pub fn from_soif(o: &SoifObject) -> Result<ResultDocument, ProtoError> {
        if !o.template.eq_ignore_ascii_case("SQRDocument") {
            return Err(ProtoError::WrongTemplate {
                expected: "SQRDocument",
                found: o.template.clone(),
            });
        }
        let mut doc = ResultDocument {
            raw_score: None,
            sources: Vec::new(),
            fields: Vec::new(),
            term_stats: Vec::new(),
            doc_size_kb: 0,
            doc_count: 0,
        };
        for attr in o.iter() {
            let name = attr.name.as_str();
            let value = std::str::from_utf8(&attr.value)
                .map_err(|_| ProtoError::invalid(name, "not UTF-8"))?;
            match name.to_ascii_lowercase().as_str() {
                "version" => {}
                "rawscore" => {
                    doc.raw_score = Some(
                        value
                            .parse()
                            .map_err(|_| ProtoError::invalid("RawScore", "not a number"))?,
                    )
                }
                "sources" => doc.sources = value.split_whitespace().map(str::to_string).collect(),
                "termstats" => {
                    doc.term_stats = value
                        .lines()
                        .filter(|l| !l.trim().is_empty())
                        .map(TermStatsEntry::decode)
                        .collect::<Result<_, _>>()?;
                }
                "docsize" => {
                    doc.doc_size_kb = value
                        .trim()
                        .parse()
                        .map_err(|_| ProtoError::invalid("DocSize", "not an integer"))?
                }
                "doccount" => {
                    doc.doc_count = value
                        .trim()
                        .parse()
                        .map_err(|_| ProtoError::invalid("DocCount", "not an integer"))?
                }
                _ => doc.fields.push((Field::parse(name), value.to_string())),
            }
        }
        Ok(doc)
    }
}

/// A complete query result: the `@SQResults` header plus its
/// `@SQRDocument`s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResults {
    /// The source(s) that produced the result.
    pub sources: Vec<String>,
    /// The filter expression the source *actually* executed.
    pub actual_filter: Option<FilterExpr>,
    /// The ranking expression the source *actually* executed. A source
    /// that dropped the whole expression reports `None` — encoded as an
    /// empty value, exactly Example 7's "empty ranking expression".
    pub actual_ranking: Option<RankExpr>,
    /// The result documents (`NumDocSOIFs` counts them).
    pub documents: Vec<ResultDocument>,
    /// Trace context echoed back from the query (§4.3 extension
    /// attribute `XTraceContext`); `None` for untraced exchanges.
    pub trace: Option<TraceContext>,
    /// Host-side cost breakdown of this execution (§4.3 extension
    /// attribute `XQueryProfile`); `None` unless the exchange was
    /// traced and the host is profile-aware.
    pub profile: Option<QueryProfile>,
}

impl QueryResults {
    /// Encode the full result as a SOIF stream: one `@SQResults` object
    /// followed by one `@SQRDocument` per document (Example 8's layout).
    pub fn to_soif_stream(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.to_soif_stream_into(&mut out);
        out
    }

    /// Append the SOIF stream encoding to `out` — the buffer-reuse
    /// counterpart of [`QueryResults::to_soif_stream`] for hosts that
    /// encode one response per exchange into a recycled buffer.
    pub fn to_soif_stream_into(&self, out: &mut Vec<u8>) {
        write_object_into(&self.header_soif(), out);
        for d in &self.documents {
            out.push(b'\n');
            write_object_into(&d.to_soif(), out);
        }
    }

    /// The `@SQResults` header object alone.
    pub fn header_soif(&self) -> SoifObject {
        let mut o = SoifObject::new("SQResults");
        o.push_str(VERSION_ATTR, STARTS_VERSION);
        o.push_str("Sources", self.sources.join(" "));
        o.push_str(
            "ActualFilterExpression",
            self.actual_filter
                .as_ref()
                .map(print_filter)
                .unwrap_or_default(),
        );
        o.push_str(
            "ActualRankingExpression",
            self.actual_ranking
                .as_ref()
                .map(print_ranking)
                .unwrap_or_default(),
        );
        o.push_str("NumDocSOIFs", self.documents.len().to_string());
        // Extension attribute (§4.3): echoed only on traced exchanges,
        // so the paper's exact encodings are untouched otherwise.
        if let Some(ctx) = &self.trace {
            o.push_str(TRACE_ATTR, ctx.encode());
        }
        if let Some(profile) = &self.profile {
            o.push_str(PROFILE_ATTR, profile.encode());
        }
        o
    }

    /// Decode a SOIF stream produced by [`QueryResults::to_soif_stream`].
    pub fn from_soif_stream(bytes: &[u8]) -> Result<QueryResults, ProtoError> {
        let mut reader = SoifReader::new(bytes, starts_soif::ParseMode::Strict);
        let header = reader
            .next_object()?
            .ok_or_else(|| ProtoError::missing("SQResults", "(whole object)"))?;
        let mut results = Self::from_header(&header)?;
        while let Some(obj) = reader.next_object()? {
            results.documents.push(ResultDocument::from_soif(&obj)?);
        }
        Ok(results)
    }

    /// Decode just the header object.
    pub fn from_header(o: &SoifObject) -> Result<QueryResults, ProtoError> {
        if !o.template.eq_ignore_ascii_case("SQResults") {
            return Err(ProtoError::WrongTemplate {
                expected: "SQResults",
                found: o.template.clone(),
            });
        }
        let sources = o
            .get_str("Sources")
            .map(|v| v.split_whitespace().map(str::to_string).collect())
            .unwrap_or_default();
        let actual_filter = match o.get_str("ActualFilterExpression") {
            Some(s) if !s.trim().is_empty() => Some(parse_filter(s)?),
            _ => None,
        };
        let actual_ranking = match o.get_str("ActualRankingExpression") {
            Some(s) if !s.trim().is_empty() => Some(parse_ranking(s)?),
            _ => None,
        };
        Ok(QueryResults {
            sources,
            actual_filter,
            actual_ranking,
            documents: Vec::new(),
            // Lenient per §4.3: malformed extension data degrades to None.
            trace: o.get_str(TRACE_ATTR).and_then(TraceContext::decode),
            profile: o.get_str(PROFILE_ATTR).and_then(QueryProfile::decode),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::Modifier;
    use starts_soif::write_object;

    fn example8_results() -> QueryResults {
        QueryResults {
            sources: vec!["Source-1".to_string()],
            actual_filter: Some(
                parse_filter(r#"((author "Ullman") and (title stem "databases"))"#).unwrap(),
            ),
            actual_ranking: Some(parse_ranking(r#"(body-of-text "databases")"#).unwrap()),
            documents: vec![ResultDocument {
                raw_score: Some(0.82),
                sources: vec!["Source-1".to_string()],
                fields: vec![
                    (
                        Field::Linkage,
                        "http://www-db.stanford.edu/~ullman/pub/dood.ps".to_string(),
                    ),
                    (
                        Field::Title,
                        "A Comparison Between Deductive and Object-Oriented Database Systems"
                            .to_string(),
                    ),
                    (Field::Author, "Jeffrey D. Ullman".to_string()),
                ],
                term_stats: vec![
                    TermStatsEntry {
                        term: QTerm::fielded(Field::BodyOfText, "distributed"),
                        term_frequency: 10,
                        term_weight: 0.31,
                        document_frequency: 190,
                    },
                    TermStatsEntry {
                        term: QTerm::fielded(Field::BodyOfText, "databases"),
                        term_frequency: 15,
                        term_weight: 0.51,
                        document_frequency: 232,
                    },
                ],
                doc_size_kb: 248,
                doc_count: 10213,
            }],
            trace: None,
            profile: None,
        }
    }

    #[test]
    fn example8_header_encoding() {
        let r = example8_results();
        let text = String::from_utf8(write_object(&r.header_soif())).unwrap();
        let expected = "@SQResults{\n\
            Version{10}: STARTS 1.0\n\
            Sources{8}: Source-1\n\
            ActualFilterExpression{48}: ((author \"Ullman\") and (title stem \"databases\"))\n\
            ActualRankingExpression{26}: (body-of-text \"databases\")\n\
            NumDocSOIFs{1}: 1\n\
            }\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn example8_document_attributes() {
        let r = example8_results();
        let o = r.documents[0].to_soif();
        assert_eq!(o.get_str("RawScore"), Some("0.82"));
        assert_eq!(o.get_str("Sources"), Some("Source-1"));
        assert_eq!(
            o.get_str("linkage"),
            Some("http://www-db.stanford.edu/~ullman/pub/dood.ps")
        );
        assert_eq!(o.get_str("DocSize"), Some("248"));
        assert_eq!(o.get_str("DocCount"), Some("10213"));
        let stats = o.get_str("TermStats").unwrap();
        assert_eq!(
            stats,
            "(body-of-text \"distributed\") 10 0.31 190\n\
             (body-of-text \"databases\") 15 0.51 232"
        );
    }

    #[test]
    fn full_stream_round_trip() {
        let r = example8_results();
        let bytes = r.to_soif_stream();
        let back = QueryResults::from_soif_stream(&bytes).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn empty_actual_ranking_round_trips_as_none() {
        // Example 7: a source that ignores ranking expressions returns an
        // empty one.
        let r = QueryResults {
            sources: vec!["S".to_string()],
            actual_filter: Some(parse_filter(r#"(title "x")"#).unwrap()),
            actual_ranking: None,
            documents: vec![],
            trace: None,
            profile: None,
        };
        let o = r.header_soif();
        assert_eq!(o.get_str("ActualRankingExpression"), Some(""));
        let back = QueryResults::from_header(&o).unwrap();
        assert_eq!(back.actual_ranking, None);
    }

    #[test]
    fn trace_context_echoes_through_the_header() {
        let r = QueryResults {
            sources: vec!["S".to_string()],
            trace: Some(TraceContext {
                query_id: "q-000003".to_string(),
                parent_path: "meta.search/dispatch/source".to_string(),
                parent_span_id: 99,
            }),
            ..QueryResults::default()
        };
        let o = r.header_soif();
        assert_eq!(
            o.get_str(TRACE_ATTR),
            Some("q-000003 99 meta.search/dispatch/source")
        );
        let back = QueryResults::from_header(&o).unwrap();
        assert_eq!(back.trace, r.trace);
        // Untraced results omit the attribute entirely.
        assert!(!QueryResults::default().header_soif().has(TRACE_ATTR));
    }

    #[test]
    fn query_profile_echoes_through_the_header() {
        use crate::profile::StageCost;
        let mut root = StageCost::new("source.execute", 0, 450);
        root.children = vec![
            StageCost::new("rewrite", 0, 10),
            StageCost::new("execute", 10, 400).with_meta("shards", 2),
        ];
        let r = QueryResults {
            sources: vec!["S".to_string()],
            profile: Some(QueryProfile {
                query_id: "q-000004".to_string(),
                root,
            }),
            ..QueryResults::default()
        };
        let o = r.header_soif();
        assert!(o.has(PROFILE_ATTR));
        let back = QueryResults::from_header(&o).unwrap();
        assert_eq!(back.profile, r.profile);
        // Unprofiled results omit the attribute entirely.
        assert!(!QueryResults::default().header_soif().has(PROFILE_ATTR));
    }

    #[test]
    fn term_stats_decode_with_modifiers() {
        let line = r#"(title stem "databases") 3 0.5 17"#;
        let e = TermStatsEntry::decode(line).unwrap();
        assert_eq!(e.term.modifiers, vec![Modifier::Stem]);
        assert_eq!(e.term_frequency, 3);
        assert_eq!(e.document_frequency, 17);
        // Round trip.
        assert_eq!(e.encode(), line);
    }

    #[test]
    fn term_stats_decode_bare_term() {
        let e = TermStatsEntry::decode(r#""databases" 5 0.1 9"#).unwrap();
        assert!(e.term.is_bare());
        assert_eq!(e.term_frequency, 5);
    }

    #[test]
    fn term_stats_bad_lines() {
        assert!(TermStatsEntry::decode("nonsense").is_err());
        assert!(TermStatsEntry::decode(r#"(title "x") 1 2"#).is_err());
        assert!(TermStatsEntry::decode(r#"(title "x") a 0.5 3"#).is_err());
    }

    #[test]
    fn unscored_document() {
        // Filter-only queries produce documents with no RawScore.
        let d = ResultDocument {
            raw_score: None,
            sources: vec!["S".to_string()],
            fields: vec![(Field::Linkage, "http://x/".to_string())],
            term_stats: vec![],
            doc_size_kb: 1,
            doc_count: 10,
        };
        let o = d.to_soif();
        assert!(!o.has("RawScore"));
        assert!(!o.has("TermStats"));
        let back = ResultDocument::from_soif(&o).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn duplicate_merged_document_lists_both_sources() {
        // Figure 1: the resource eliminates duplicates and reports both
        // source ids.
        let d = ResultDocument {
            raw_score: Some(0.5),
            sources: vec!["Source-1".to_string(), "Source-2".to_string()],
            fields: vec![],
            term_stats: vec![],
            doc_size_kb: 2,
            doc_count: 100,
        };
        let o = d.to_soif();
        assert_eq!(o.get_str("Sources"), Some("Source-1 Source-2"));
        assert_eq!(ResultDocument::from_soif(&o).unwrap().sources.len(), 2);
    }

    #[test]
    fn other_fields_preserved() {
        let d = ResultDocument {
            raw_score: None,
            sources: vec![],
            fields: vec![(Field::Other("abstract".to_string()), "Text.".to_string())],
            term_stats: vec![],
            doc_size_kb: 0,
            doc_count: 0,
        };
        let back = ResultDocument::from_soif(&d.to_soif()).unwrap();
        assert_eq!(
            back.field(&Field::Other("abstract".to_string())),
            Some("Text.")
        );
    }
}
