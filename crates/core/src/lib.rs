#![warn(missing_docs)]

//! `starts-proto` — the STARTS-1.0 protocol (Gravano, Chang,
//! García-Molina, Paepcke; SIGMOD 1997): the paper's primary contribution,
//! implemented in full.
//!
//! STARTS ("Stanford Protocol Proposal for Internet Retrieval and
//! Search") specifies *what information* sources and metasearchers
//! exchange so that the three metasearch tasks become possible:
//!
//! 1. **choosing the best sources** for a query — served by exported
//!    [source metadata](metadata) and [content summaries](summary);
//! 2. **evaluating the query** at those sources — served by the common
//!    [query language](query) (filter + ranking expressions over the
//!    Basic-1 [attribute set](attrs)) and per-source capability
//!    declarations;
//! 3. **merging the results** — served by [query results](results) that
//!    carry unnormalized scores *plus* the per-term statistics
//!    (term frequency, term weight, document frequency) and document
//!    statistics that let a metasearcher re-rank without retrieving
//!    documents (§4.2, Examples 8–9).
//!
//! All protocol objects have exact SOIF encodings (via [`starts_soif`])
//! matching the paper's `@SQuery`, `@SQResults`, `@SQRDocument`,
//! `@SMetaAttributes`, `@SContentSummary` and `@SResource` templates.
//!
//! The protocol is deliberately sessionless and stateless, and carries no
//! error-reporting channel (§4): a source that cannot execute part of a
//! query silently drops it and reports the *actual query* it ran with the
//! results (Example 7).

pub mod attrs;
pub mod conformance;
pub mod error;
pub mod lstring;
pub mod metadata;
pub mod profile;
pub mod query;
pub mod resource;
pub mod results;
pub mod summary;
pub mod trace;

pub use attrs::{Field, Modifier, ATTRSET_BASIC1, ATTRSET_MBASIC1};
pub use error::ProtoError;
pub use lstring::LString;
pub use metadata::{FieldModCombo, QueryParts, SourceMetadata};
pub use profile::{QueryProfile, StageCost, PROFILE_ATTR};
pub use query::{
    AnswerSpec, FilterExpr, ProxSpec, QTerm, Query, RankExpr, SortKey, SortOrder, WeightedTerm,
};
pub use resource::Resource;
pub use results::{QueryResults, ResultDocument, TermStatsEntry};
pub use summary::{ContentSummary, SummarySection, TermSummary};
pub use trace::{TraceContext, TRACE_ATTR};

/// The protocol version string carried in every object.
pub const VERSION: &str = starts_soif::STARTS_VERSION;
