//! Source metadata — the "MBasic-1" attribute set (§4.3.1) and its
//! `@SMetaAttributes` SOIF binding (Example 10).
//!
//! "Each source exports information about itself by giving values to the
//! metadata attributes below. A metasearcher can use this information to
//! rewrite the queries that it sends to each source." The set borrows
//! from Z39.50-1995 Exp-1 and GILS, with several new attributes the
//! participants deemed necessary (capability declarations, score ranges,
//! tokenizer ids, sample-database results).

use starts_soif::{SoifObject, STARTS_VERSION, VERSION_ATTR};
use starts_text::LangTag;

use crate::attrs::{Field, Modifier, ATTRSET_BASIC1, ATTRSET_MBASIC1};
use crate::error::ProtoError;
use crate::query::parse_bool;

/// `QueryPartsSupported`: "whether the source supports ranking
/// expressions only, filter expressions only, or both."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryParts {
    /// `R` — ranking expressions only (pure vector-space engines).
    Ranking,
    /// `F` — filter expressions only (pure Boolean engines, e.g. the
    /// paper's Glimpse example).
    Filter,
    /// `RF` — both.
    #[default]
    Both,
}

impl QueryParts {
    /// Wire form.
    pub fn as_str(self) -> &'static str {
        match self {
            QueryParts::Ranking => "R",
            QueryParts::Filter => "F",
            QueryParts::Both => "RF",
        }
    }

    /// Parse the wire form.
    pub fn parse(s: &str) -> Result<Self, ProtoError> {
        match s.trim() {
            "R" => Ok(QueryParts::Ranking),
            "F" => Ok(QueryParts::Filter),
            "RF" | "FR" => Ok(QueryParts::Both),
            other => Err(ProtoError::invalid(
                "QueryPartsSupported",
                format!("expected R, F or RF, got {other:?}"),
            )),
        }
    }

    /// Does the source accept filter expressions?
    pub fn supports_filter(self) -> bool {
        matches!(self, QueryParts::Filter | QueryParts::Both)
    }

    /// Does the source accept ranking expressions?
    pub fn supports_ranking(self) -> bool {
        matches!(self, QueryParts::Ranking | QueryParts::Both)
    }
}

/// One legal field–modifier combination (`FieldModifierCombinations`):
/// e.g. "asking that an author name be stemmed might be illegal at a
/// source, even if the Author field and the Stem modifier are supported
/// in other contexts."
#[derive(Debug, Clone, PartialEq)]
pub struct FieldModCombo {
    /// The field.
    pub field: Field,
    /// The modifiers that may accompany it (one combination may list
    /// several, all legal together).
    pub modifiers: Vec<Modifier>,
}

/// The exported metadata of one source.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceMetadata {
    /// The source's identifier (Example 10's `SourceID`).
    pub source_id: String,
    /// Optional fields supported for querying, each with the languages
    /// used in that field at the source. Required fields may also be
    /// listed to declare their languages.
    pub fields_supported: Vec<(Field, Vec<LangTag>)>,
    /// Modifiers supported, each with the languages it works for
    /// ("modifiers like Stem are language dependent").
    pub modifiers_supported: Vec<(Modifier, Vec<LangTag>)>,
    /// Legal field–modifier combinations.
    pub field_modifier_combinations: Vec<FieldModCombo>,
    /// Which query parts the source accepts.
    pub query_parts_supported: QueryParts,
    /// Score range `[min, max]` (may be infinite).
    pub score_range: (f64, f64),
    /// Opaque ranking-algorithm identifier: "even when we do not know
    /// the actual algorithm used it is useful to know that two sources
    /// use the same algorithm."
    pub ranking_algorithm_id: String,
    /// Tokenizers per language, e.g. `(Acme-1 en-US) (Acme-2 es)`.
    pub tokenizer_id_list: Vec<(String, LangTag)>,
    /// URL of query results for the sample document collection (§4.2's
    /// black-box calibration hook).
    pub sample_database_results: String,
    /// The source's stop words.
    pub stop_word_list: Vec<String>,
    /// Whether `DropStopWords: F` is honoured.
    pub turn_off_stop_words: bool,
    /// Languages of the source's documents.
    pub source_languages: Vec<LangTag>,
    /// Human-readable name.
    pub source_name: String,
    /// "The URL where the source should be queried."
    pub linkage: String,
    /// "The URL of the content summary of the source."
    pub content_summary_linkage: String,
    /// `DateChanged` (ISO date), if known.
    pub date_changed: Option<String>,
    /// `DateExpires` (ISO date), if set.
    pub date_expires: Option<String>,
    /// Free-text abstract of the collection.
    pub abstract_text: Option<String>,
    /// Access constraints (e.g. fees), free text.
    pub access_constraints: Option<String>,
    /// Administrative contact.
    pub contact: Option<String>,
}

impl Default for SourceMetadata {
    fn default() -> Self {
        SourceMetadata {
            source_id: String::new(),
            fields_supported: Vec::new(),
            modifiers_supported: Vec::new(),
            field_modifier_combinations: Vec::new(),
            query_parts_supported: QueryParts::Both,
            score_range: (0.0, 1.0),
            ranking_algorithm_id: String::new(),
            tokenizer_id_list: Vec::new(),
            sample_database_results: String::new(),
            stop_word_list: Vec::new(),
            turn_off_stop_words: true,
            source_languages: Vec::new(),
            source_name: String::new(),
            linkage: String::new(),
            content_summary_linkage: String::new(),
            date_changed: None,
            date_expires: None,
            abstract_text: None,
            access_constraints: None,
            contact: None,
        }
    }
}

impl SourceMetadata {
    /// Whether the source declares support for a field (required Basic-1
    /// fields are always supported: "the source must recognize these
    /// fields").
    pub fn supports_field(&self, field: &Field) -> bool {
        field.required() || self.fields_supported.iter().any(|(f, _)| f == field)
    }

    /// Whether the source declares support for a modifier. Comparison
    /// modifiers are grouped: declaring one `Cmp` declares them all (the
    /// paper's table treats `<, <=, =, >=, >, !=` as one row).
    pub fn supports_modifier(&self, modifier: &Modifier) -> bool {
        self.modifiers_supported.iter().any(|(m, _)| {
            m == modifier || matches!((m, modifier), (Modifier::Cmp(_), Modifier::Cmp(_)))
        })
    }

    /// Whether a field+modifier combination is legal. With an empty
    /// combination table, any supported field × supported modifier is
    /// legal; with a non-empty table, the table is authoritative for
    /// modified terms.
    pub fn combination_legal(&self, field: &Field, modifiers: &[Modifier]) -> bool {
        if modifiers.is_empty() {
            return self.supports_field(field);
        }
        if !self.supports_field(field) || !modifiers.iter().all(|m| self.supports_modifier(m)) {
            return false;
        }
        if self.field_modifier_combinations.is_empty() {
            return true;
        }
        self.field_modifier_combinations.iter().any(|combo| {
            &combo.field == field
                && modifiers.iter().all(|m| {
                    combo.modifiers.iter().any(|cm| {
                        cm == m || matches!((cm, m), (Modifier::Cmp(_), Modifier::Cmp(_)))
                    })
                })
        })
    }

    /// Encode as an `@SMetaAttributes` object (Example 10's layout).
    pub fn to_soif(&self) -> SoifObject {
        let mut o = SoifObject::new("SMetaAttributes");
        o.push_str(VERSION_ATTR, STARTS_VERSION);
        o.push_str("SourceID", &self.source_id);
        o.push_str(
            "FieldsSupported",
            encode_lang_tagged(&self.fields_supported, |f| {
                format!("[{ATTRSET_BASIC1} {}]", f.name())
            }),
        );
        o.push_str(
            "ModifiersSupported",
            encode_lang_tagged(&self.modifiers_supported, |m| {
                format!("{{{ATTRSET_BASIC1} {}}}", m.name())
            }),
        );
        o.push_str(
            "FieldModifierCombinations",
            self.field_modifier_combinations
                .iter()
                .map(encode_combo)
                .collect::<Vec<_>>()
                .join(" "),
        );
        o.push_str("QueryPartsSupported", self.query_parts_supported.as_str());
        o.push_str(
            "ScoreRange",
            format!(
                "{} {}",
                fmt_score_bound(self.score_range.0),
                fmt_score_bound(self.score_range.1)
            ),
        );
        o.push_str("RankingAlgorithmID", &self.ranking_algorithm_id);
        if !self.tokenizer_id_list.is_empty() {
            let parts: Vec<String> = self
                .tokenizer_id_list
                .iter()
                .map(|(id, lang)| format!("({id} {lang})"))
                .collect();
            o.push_str("TokenizerIDList", parts.join(" "));
        }
        o.push_str("SampleDatabaseResults", &self.sample_database_results);
        o.push_str("StopWordList", self.stop_word_list.join(" "));
        o.push_str(
            "TurnOffStopWords",
            if self.turn_off_stop_words { "T" } else { "F" },
        );
        o.push_str("DefaultMetaAttributeSet", ATTRSET_MBASIC1);
        if !self.source_languages.is_empty() {
            let langs: Vec<String> = self
                .source_languages
                .iter()
                .map(LangTag::to_string)
                .collect();
            o.push_str("source-languages", langs.join(" "));
        }
        if !self.source_name.is_empty() {
            o.push_str("source-name", &self.source_name);
        }
        o.push_str("linkage", &self.linkage);
        o.push_str("content-summary-linkage", &self.content_summary_linkage);
        if let Some(d) = &self.date_changed {
            o.push_str("date-changed", d);
        }
        if let Some(d) = &self.date_expires {
            o.push_str("date-expires", d);
        }
        if let Some(a) = &self.abstract_text {
            o.push_str("abstract", a);
        }
        if let Some(a) = &self.access_constraints {
            o.push_str("access-constraints", a);
        }
        if let Some(c) = &self.contact {
            o.push_str("contact", c);
        }
        o
    }

    /// Decode from an `@SMetaAttributes` object.
    pub fn from_soif(o: &SoifObject) -> Result<SourceMetadata, ProtoError> {
        if !o.template.eq_ignore_ascii_case("SMetaAttributes") {
            return Err(ProtoError::WrongTemplate {
                expected: "SMetaAttributes",
                found: o.template.clone(),
            });
        }
        let mut m = SourceMetadata {
            source_id: o
                .get_str("SourceID")
                .ok_or_else(|| ProtoError::missing("SMetaAttributes", "SourceID"))?
                .to_string(),
            ..SourceMetadata::default()
        };
        if let Some(v) = o.get_str("FieldsSupported") {
            m.fields_supported = decode_lang_tagged(v, '[', ']', Field::parse)?;
        }
        if let Some(v) = o.get_str("ModifiersSupported") {
            m.modifiers_supported = decode_lang_tagged(v, '{', '}', Modifier::parse)?;
        }
        if let Some(v) = o.get_str("FieldModifierCombinations") {
            m.field_modifier_combinations = decode_combos(v)?;
        }
        if let Some(v) = o.get_str("QueryPartsSupported") {
            m.query_parts_supported = QueryParts::parse(v)?;
        }
        if let Some(v) = o.get_str("ScoreRange") {
            let parts: Vec<&str> = v.split_whitespace().collect();
            if parts.len() != 2 {
                return Err(ProtoError::invalid("ScoreRange", "expected two bounds"));
            }
            m.score_range = (parse_score_bound(parts[0])?, parse_score_bound(parts[1])?);
        }
        if let Some(v) = o.get_str("RankingAlgorithmID") {
            m.ranking_algorithm_id = v.to_string();
        }
        if let Some(v) = o.get_str("TokenizerIDList") {
            m.tokenizer_id_list = decode_tokenizers(v)?;
        }
        if let Some(v) = o.get_str("SampleDatabaseResults") {
            m.sample_database_results = v.to_string();
        }
        if let Some(v) = o.get_str("StopWordList") {
            m.stop_word_list = v.split_whitespace().map(str::to_string).collect();
        }
        if let Some(v) = o.get_str("TurnOffStopWords") {
            m.turn_off_stop_words = parse_bool("TurnOffStopWords", v)?;
        }
        if let Some(v) = o.get_str("source-languages") {
            m.source_languages = v
                .split_whitespace()
                .map(|t| {
                    LangTag::parse(t)
                        .map_err(|e| ProtoError::invalid("source-languages", e.to_string()))
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(v) = o.get_str("source-name") {
            m.source_name = v.to_string();
        }
        if let Some(v) = o.get_str("linkage") {
            m.linkage = v.to_string();
        }
        if let Some(v) = o.get_str("content-summary-linkage") {
            m.content_summary_linkage = v.to_string();
        }
        m.date_changed = o.get_str("date-changed").map(str::to_string);
        m.date_expires = o.get_str("date-expires").map(str::to_string);
        m.abstract_text = o.get_str("abstract").map(str::to_string);
        m.access_constraints = o.get_str("access-constraints").map(str::to_string);
        m.contact = o.get_str("contact").map(str::to_string);
        Ok(m)
    }
}

fn fmt_score_bound(v: f64) -> String {
    if v == f64::INFINITY {
        "Infinity".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Infinity".to_string()
    } else {
        // Always show a decimal point for finite bounds ("0.0 1.0").
        if v.fract() == 0.0 {
            format!("{v:.1}")
        } else {
            crate::query::fmt_weight(v)
        }
    }
}

fn parse_score_bound(s: &str) -> Result<f64, ProtoError> {
    match s {
        "Infinity" | "+Infinity" | "inf" => Ok(f64::INFINITY),
        "-Infinity" | "-inf" => Ok(f64::NEG_INFINITY),
        _ => s
            .parse()
            .map_err(|_| ProtoError::invalid("ScoreRange", format!("bad bound {s:?}"))),
    }
}

/// Encode `[set name] (lang…)` lists: each item optionally followed by
/// its language list in parentheses-free space form is ambiguous, so
/// languages are appended inside the brackets after a `;` when present:
/// `[basic-1 author; en-US es]`.
fn encode_lang_tagged<T>(items: &[(T, Vec<LangTag>)], render: impl Fn(&T) -> String) -> String {
    items
        .iter()
        .map(|(item, langs)| {
            let base = render(item);
            if langs.is_empty() {
                base
            } else {
                let langs: Vec<String> = langs.iter().map(LangTag::to_string).collect();
                // Insert "; langs" before the closing delimiter.
                let (head, close) = base.split_at(base.len() - 1);
                format!("{head}; {}{close}", langs.join(" "))
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn decode_lang_tagged<T>(
    v: &str,
    open: char,
    close: char,
    parse: impl Fn(&str) -> T,
) -> Result<Vec<(T, Vec<LangTag>)>, ProtoError> {
    let mut out = Vec::new();
    let mut rest = v.trim();
    while !rest.is_empty() {
        if !rest.starts_with(open) {
            return Err(ProtoError::invalid(
                "FieldsSupported/ModifiersSupported",
                format!("expected {open:?} in {v:?}"),
            ));
        }
        let end = rest.find(close).ok_or_else(|| {
            ProtoError::invalid(
                "FieldsSupported/ModifiersSupported",
                format!("missing {close:?} in {v:?}"),
            )
        })?;
        let body = &rest[1..end];
        let (spec, langs_part) = match body.split_once(';') {
            Some((s, l)) => (s.trim(), Some(l.trim())),
            None => (body.trim(), None),
        };
        // spec = "attrset name" or just "name".
        let name = spec.split_whitespace().last().ok_or_else(|| {
            ProtoError::invalid("FieldsSupported/ModifiersSupported", "empty item")
        })?;
        let langs = match langs_part {
            None => Vec::new(),
            Some(ls) => ls
                .split_whitespace()
                .map(|t| {
                    LangTag::parse(t).map_err(|e| {
                        ProtoError::invalid("FieldsSupported/ModifiersSupported", e.to_string())
                    })
                })
                .collect::<Result<_, _>>()?,
        };
        out.push((parse(name), langs));
        rest = rest[end + 1..].trim_start();
    }
    Ok(out)
}

fn encode_combo(c: &FieldModCombo) -> String {
    let mut parts = vec![format!("[{ATTRSET_BASIC1} {}]", c.field.name())];
    for m in &c.modifiers {
        parts.push(format!("{{{ATTRSET_BASIC1} {}}}", m.name()));
    }
    format!("({})", parts.join(" "))
}

fn decode_combos(v: &str) -> Result<Vec<FieldModCombo>, ProtoError> {
    let mut out = Vec::new();
    let mut rest = v.trim();
    while !rest.is_empty() {
        if !rest.starts_with('(') {
            return Err(ProtoError::invalid(
                "FieldModifierCombinations",
                format!("expected '(' in {v:?}"),
            ));
        }
        let end = rest
            .find(')')
            .ok_or_else(|| ProtoError::invalid("FieldModifierCombinations", "missing ')'"))?;
        let body = &rest[1..end];
        let mut field = None;
        let mut modifiers = Vec::new();
        let mut inner = body.trim();
        while !inner.is_empty() {
            let (open, close) = match inner.chars().next().unwrap() {
                '[' => ('[', ']'),
                '{' => ('{', '}'),
                other => {
                    return Err(ProtoError::invalid(
                        "FieldModifierCombinations",
                        format!("unexpected {other:?}"),
                    ))
                }
            };
            let iend = inner.find(close).ok_or_else(|| {
                ProtoError::invalid("FieldModifierCombinations", format!("missing {close:?}"))
            })?;
            let name = inner[1..iend]
                .split_whitespace()
                .last()
                .ok_or_else(|| ProtoError::invalid("FieldModifierCombinations", "empty item"))?;
            if open == '[' {
                field = Some(Field::parse(name));
            } else {
                modifiers.push(Modifier::parse(name));
            }
            inner = inner[iend + 1..].trim_start();
        }
        let field = field.ok_or_else(|| {
            ProtoError::invalid("FieldModifierCombinations", "combination without a field")
        })?;
        out.push(FieldModCombo { field, modifiers });
        rest = rest[end + 1..].trim_start();
    }
    Ok(out)
}

fn decode_tokenizers(v: &str) -> Result<Vec<(String, LangTag)>, ProtoError> {
    let mut out = Vec::new();
    let mut rest = v.trim();
    while !rest.is_empty() {
        if !rest.starts_with('(') {
            return Err(ProtoError::invalid(
                "TokenizerIDList",
                format!("expected '(' in {v:?}"),
            ));
        }
        let end = rest
            .find(')')
            .ok_or_else(|| ProtoError::invalid("TokenizerIDList", "missing ')'"))?;
        let body = &rest[1..end];
        let mut parts = body.split_whitespace();
        let id = parts
            .next()
            .ok_or_else(|| ProtoError::invalid("TokenizerIDList", "empty entry"))?;
        let lang = parts
            .next()
            .ok_or_else(|| ProtoError::invalid("TokenizerIDList", "missing language"))?;
        let lang = LangTag::parse(lang)
            .map_err(|e| ProtoError::invalid("TokenizerIDList", e.to_string()))?;
        out.push((id.to_string(), lang));
        rest = rest[end + 1..].trim_start();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::CmpOp;
    use starts_soif::{parse_one, write_object, ParseMode};

    fn example10_metadata() -> SourceMetadata {
        SourceMetadata {
            source_id: "Source-1".to_string(),
            fields_supported: vec![(Field::Author, vec![])],
            modifiers_supported: vec![(Modifier::Phonetic, vec![])],
            field_modifier_combinations: vec![FieldModCombo {
                field: Field::Author,
                modifiers: vec![Modifier::Phonetic],
            }],
            query_parts_supported: QueryParts::Both,
            score_range: (0.0, 1.0),
            ranking_algorithm_id: "Acme-1".to_string(),
            tokenizer_id_list: vec![
                ("Acme-1".to_string(), LangTag::en_us()),
                ("Acme-2".to_string(), LangTag::es()),
            ],
            sample_database_results: "ftp://www-db.stanford.edu/sample_results.txt".to_string(),
            stop_word_list: vec!["the".to_string(), "of".to_string()],
            turn_off_stop_words: true,
            source_languages: vec![LangTag::en_us(), LangTag::es()],
            source_name: "Stanford DB Group".to_string(),
            linkage: "http://www-db.stanford.edu/cgi-bin/query".to_string(),
            content_summary_linkage: "ftp://www-db.stanford.edu/cont_sum.txt".to_string(),
            date_changed: Some("1996-03-31".to_string()),
            date_expires: None,
            abstract_text: None,
            access_constraints: None,
            contact: None,
        }
    }

    #[test]
    fn example10_encoding_values() {
        let o = example10_metadata().to_soif();
        assert_eq!(o.get_str("SourceID"), Some("Source-1"));
        assert_eq!(o.get_str("FieldsSupported"), Some("[basic-1 author]"));
        assert_eq!(o.get_str("ModifiersSupported"), Some("{basic-1 phonetic}"));
        assert_eq!(
            o.get_str("FieldModifierCombinations"),
            Some("([basic-1 author] {basic-1 phonetic})")
        );
        assert_eq!(o.get_str("QueryPartsSupported"), Some("RF"));
        assert_eq!(o.get_str("ScoreRange"), Some("0.0 1.0"));
        assert_eq!(o.get_str("RankingAlgorithmID"), Some("Acme-1"));
        assert_eq!(
            o.get_str("TokenizerIDList"),
            Some("(Acme-1 en-US) (Acme-2 es)")
        );
        assert_eq!(o.get_str("DefaultMetaAttributeSet"), Some("mbasic-1"));
        assert_eq!(o.get_str("source-languages"), Some("en-US es"));
        assert_eq!(o.get_str("source-name"), Some("Stanford DB Group"));
        assert_eq!(o.get_str("date-changed"), Some("1996-03-31"));
    }

    #[test]
    fn soif_round_trip() {
        let m = example10_metadata();
        let bytes = write_object(&m.to_soif());
        let back =
            SourceMetadata::from_soif(&parse_one(&bytes, ParseMode::Strict).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn round_trip_with_languages_on_fields() {
        let m = SourceMetadata {
            source_id: "S".to_string(),
            fields_supported: vec![
                (Field::Title, vec![LangTag::en_us(), LangTag::es()]),
                (Field::Author, vec![]),
            ],
            modifiers_supported: vec![(Modifier::Stem, vec![LangTag::en()])],
            ..SourceMetadata::default()
        };
        let o = m.to_soif();
        assert_eq!(
            o.get_str("FieldsSupported"),
            Some("[basic-1 title; en-US es] [basic-1 author]")
        );
        assert_eq!(o.get_str("ModifiersSupported"), Some("{basic-1 stem; en}"));
        let back = SourceMetadata::from_soif(&o).unwrap();
        assert_eq!(back.fields_supported, m.fields_supported);
        assert_eq!(back.modifiers_supported, m.modifiers_supported);
    }

    #[test]
    fn infinite_score_range() {
        let m = SourceMetadata {
            source_id: "S".to_string(),
            score_range: (0.0, f64::INFINITY),
            ..SourceMetadata::default()
        };
        let o = m.to_soif();
        assert_eq!(o.get_str("ScoreRange"), Some("0.0 Infinity"));
        let back = SourceMetadata::from_soif(&o).unwrap();
        assert_eq!(back.score_range, (0.0, f64::INFINITY));
    }

    #[test]
    fn required_fields_always_supported() {
        let m = SourceMetadata::default();
        assert!(m.supports_field(&Field::Title));
        assert!(m.supports_field(&Field::Any));
        assert!(m.supports_field(&Field::Linkage));
        assert!(m.supports_field(&Field::DateLastModified));
        assert!(!m.supports_field(&Field::Author));
        assert!(!m.supports_field(&Field::Other("abstract".to_string())));
    }

    #[test]
    fn modifier_support_groups_comparisons() {
        let m = SourceMetadata {
            modifiers_supported: vec![(Modifier::Cmp(CmpOp::Eq), vec![])],
            ..SourceMetadata::default()
        };
        assert!(m.supports_modifier(&Modifier::Cmp(CmpOp::Gt)));
        assert!(!m.supports_modifier(&Modifier::Stem));
    }

    #[test]
    fn combination_legality() {
        let m = example10_metadata();
        // author+phonetic is declared legal.
        assert!(m.combination_legal(&Field::Author, &[Modifier::Phonetic]));
        // author+stem: stem is not even supported.
        assert!(!m.combination_legal(&Field::Author, &[Modifier::Stem]));
        // title (required) with no modifiers: legal.
        assert!(m.combination_legal(&Field::Title, &[]));
        // title+phonetic: both supported individually but the combination
        // table does not list it.
        assert!(!m.combination_legal(&Field::Title, &[Modifier::Phonetic]));
    }

    #[test]
    fn combination_open_when_table_empty() {
        let m = SourceMetadata {
            fields_supported: vec![(Field::Author, vec![])],
            modifiers_supported: vec![(Modifier::Stem, vec![])],
            ..SourceMetadata::default()
        };
        assert!(m.combination_legal(&Field::Author, &[Modifier::Stem]));
        assert!(!m.combination_legal(&Field::Author, &[Modifier::Phonetic]));
    }

    #[test]
    fn query_parts() {
        assert_eq!(QueryParts::parse("R").unwrap(), QueryParts::Ranking);
        assert_eq!(QueryParts::parse("F").unwrap(), QueryParts::Filter);
        assert_eq!(QueryParts::parse("RF").unwrap(), QueryParts::Both);
        assert!(QueryParts::parse("X").is_err());
        assert!(QueryParts::Filter.supports_filter());
        assert!(!QueryParts::Filter.supports_ranking());
        assert!(QueryParts::Both.supports_ranking());
    }

    #[test]
    fn missing_source_id_rejected() {
        let o = SoifObject::new("SMetaAttributes");
        assert!(matches!(
            SourceMetadata::from_soif(&o),
            Err(ProtoError::MissingAttribute { .. })
        ));
    }

    #[test]
    fn malformed_lists_rejected() {
        let mut o = SourceMetadata {
            source_id: "S".to_string(),
            ..SourceMetadata::default()
        }
        .to_soif();
        o.push_str("TokenizerIDList", "(Acme-1");
        assert!(SourceMetadata::from_soif(&o).is_err());
    }
}
