//! Conformance checking: what a STARTS source *must* support, and
//! whether a given metadata declaration meets it.
//!
//! §4: "our protocol keeps the requirements to a minimum, while it
//! provides optional features that sophisticated sources can use if they
//! wish." The minimum is:
//!
//! * recognize the four required Basic-1 fields (Title,
//!   Date/time-last-modified, Any, Linkage) — §4.1.1;
//! * if filter expressions are supported at all, support **all** of
//!   `and`, `or`, `and-not`, `prox` — §4.1.1;
//! * if ranking expressions are supported, support those plus `list`;
//! * export the required MBasic-1 metadata attributes — §4.3.1;
//! * export a content summary and a resource listing.
//!
//! This module also carries the §4.3.1 metadata-attribute table
//! (experiment X4 regenerates it).

use crate::metadata::SourceMetadata;

/// One row of the §4.3.1 MBasic-1 table: (attribute, required, new).
pub static MBASIC1_ATTRS: &[(&str, bool, bool)] = &[
    ("FieldsSupported", true, true),
    ("ModifiersSupported", true, true),
    ("FieldModifierCombinations", true, true),
    ("QueryPartsSupported", false, true),
    ("ScoreRange", true, true),
    ("RankingAlgorithmID", true, true),
    ("TokenizerIDList", false, true),
    ("SampleDatabaseResults", true, true),
    ("StopWordList", true, true),
    ("TurnOffStopWords", true, true),
    ("SourceLanguages", false, false),
    ("SourceName", false, false),
    ("Linkage", true, false),
    ("ContentSummaryLinkage", true, true),
    ("DateChanged", false, false),
    ("DateExpires", false, false),
    ("Abstract", false, false),
    ("AccessConstraints", false, false),
    ("Contact", false, false),
];

/// A conformance violation found in a source's exported metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which requirement is violated.
    pub requirement: String,
}

/// Check a metadata object against the required MBasic-1 attributes and
/// protocol constraints. Returns all violations (empty = conformant).
pub fn check_metadata(m: &SourceMetadata) -> Vec<Violation> {
    let mut v = Vec::new();
    let mut need = |cond: bool, msg: &str| {
        if !cond {
            v.push(Violation {
                requirement: msg.to_string(),
            });
        }
    };
    need(!m.source_id.is_empty(), "SourceID must be present");
    need(
        !m.ranking_algorithm_id.is_empty() || !m.query_parts_supported.supports_ranking(),
        "RankingAlgorithmID is required for sources that rank",
    );
    need(
        m.score_range.0 <= m.score_range.1,
        "ScoreRange minimum must not exceed maximum",
    );
    need(!m.linkage.is_empty(), "Linkage (query URL) is required");
    need(
        !m.content_summary_linkage.is_empty(),
        "ContentSummaryLinkage is required",
    );
    need(
        !m.sample_database_results.is_empty(),
        "SampleDatabaseResults is required",
    );
    // The StopWordList attribute is required, but an empty list is a
    // valid value (a source with no stop words). TurnOffStopWords is a
    // bool and always present in our model. FieldsSupported /
    // ModifiersSupported / FieldModifierCombinations may be empty lists.
    v
}

/// Whether the metadata passes all checks.
pub fn is_conformant(m: &SourceMetadata) -> bool {
    check_metadata(m).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::QueryParts;

    fn conformant() -> SourceMetadata {
        SourceMetadata {
            source_id: "S".to_string(),
            ranking_algorithm_id: "Acme-1".to_string(),
            linkage: "http://s/query".to_string(),
            content_summary_linkage: "http://s/summary".to_string(),
            sample_database_results: "http://s/sample".to_string(),
            ..SourceMetadata::default()
        }
    }

    #[test]
    fn table_matches_paper() {
        assert_eq!(MBASIC1_ATTRS.len(), 19);
        let required = MBASIC1_ATTRS.iter().filter(|(_, r, _)| *r).count();
        assert_eq!(required, 10);
        let new = MBASIC1_ATTRS.iter().filter(|(_, _, n)| *n).count();
        assert_eq!(new, 11);
        // Spot checks against the paper's table.
        let row = |name: &str| {
            MBASIC1_ATTRS
                .iter()
                .find(|(n, _, _)| *n == name)
                .copied()
                .unwrap()
        };
        assert_eq!(
            row("QueryPartsSupported"),
            ("QueryPartsSupported", false, true)
        );
        assert_eq!(row("Linkage"), ("Linkage", true, false));
        assert_eq!(row("Contact"), ("Contact", false, false));
        assert_eq!(row("ScoreRange"), ("ScoreRange", true, true));
    }

    #[test]
    fn conformant_source_passes() {
        assert!(is_conformant(&conformant()));
    }

    #[test]
    fn violations_detected() {
        let mut m = conformant();
        m.content_summary_linkage.clear();
        m.linkage.clear();
        let v = check_metadata(&m);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn pure_boolean_source_needs_no_ranking_id() {
        let mut m = conformant();
        m.ranking_algorithm_id.clear();
        m.query_parts_supported = QueryParts::Filter;
        assert!(is_conformant(&m));
        m.query_parts_supported = QueryParts::Both;
        assert!(!is_conformant(&m));
    }

    #[test]
    fn inverted_score_range_flagged() {
        let mut m = conformant();
        m.score_range = (1.0, 0.0);
        assert!(!is_conformant(&m));
    }
}
