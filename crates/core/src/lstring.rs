//! L-strings: the "basic building blocks for queries" (§4.1.1).
//!
//! "An l-string is either a string (e.g., `"Ullman"`), or a string
//! qualified with its associated language and, optionally, with its
//! associated country. For example, `[en-US "behavior"]` is an l-string,
//! meaning that the string 'behavior' represents a word in American
//! English. … To support multiple character sets, the actual string in an
//! l-string is a Unicode sequence encoded using UTF-8. A nice property of
//! this encoding is that the code for a plain English string is the ASCII
//! string itself, unmodified."
//!
//! Rust's `String` *is* UTF-8-encoded Unicode, so the representation is
//! exactly the paper's.

use std::fmt;

use starts_text::LangTag;

use crate::error::ProtoError;

/// An optionally language-qualified UTF-8 string.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LString {
    /// RFC 1766 language (with optional country), if qualified.
    /// Unqualified l-strings default to English/ASCII per §4.1.1 ("the
    /// design we settled on does allow English and ASCII as the
    /// defaults"), or to the query's `DefaultLanguage`.
    pub lang: Option<LangTag>,
    /// The string itself.
    pub text: String,
}

impl LString {
    /// An unqualified l-string.
    pub fn plain(text: impl Into<String>) -> Self {
        LString {
            lang: None,
            text: text.into(),
        }
    }

    /// A language-qualified l-string.
    pub fn tagged(lang: LangTag, text: impl Into<String>) -> Self {
        LString {
            lang: Some(lang),
            text: text.into(),
        }
    }

    /// The language, with the query default applied: unqualified
    /// l-strings are `default` (normally `en-US`).
    pub fn lang_or<'a>(&'a self, default: &'a LangTag) -> &'a LangTag {
        self.lang.as_ref().unwrap_or(default)
    }

    /// Render in query syntax: `"text"` or `[lang "text"]`.
    pub fn to_query_syntax(&self) -> String {
        let quoted = quote(&self.text);
        match &self.lang {
            None => quoted,
            Some(lang) => format!("[{lang} {quoted}]"),
        }
    }
}

impl fmt::Display for LString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_query_syntax())
    }
}

/// Quote a string for the query language. Embedded `"` and `\` are
/// backslash-escaped (the paper never needs this; real queries do).
pub fn quote(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        if c == '"' || c == '\\' {
            out.push('\\');
        }
        out.push(c);
    }
    out.push('"');
    out
}

/// Unquote a string literal's *contents* (the part between the quotes),
/// resolving backslash escapes.
pub fn unquote_contents(raw: &str, offset: usize) -> Result<String, ProtoError> {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some(e @ ('"' | '\\')) => out.push(e),
                Some(other) => {
                    return Err(ProtoError::syntax(
                        format!("unknown escape '\\{other}'"),
                        offset,
                    ))
                }
                None => return Err(ProtoError::syntax("dangling escape", offset)),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_lstring_renders_quoted() {
        let s = LString::plain("Ullman");
        assert_eq!(s.to_query_syntax(), "\"Ullman\"");
    }

    #[test]
    fn tagged_lstring_renders_bracketed() {
        // The paper's own example: [en-US "behavior"].
        let s = LString::tagged(LangTag::en_us(), "behavior");
        assert_eq!(s.to_query_syntax(), "[en-US \"behavior\"]");
    }

    #[test]
    fn utf8_passes_through() {
        let s = LString::tagged(LangTag::es(), "año");
        assert_eq!(s.to_query_syntax(), "[es \"año\"]");
        assert_eq!(s.text.len(), 4); // UTF-8 bytes, ASCII unmodified
    }

    #[test]
    fn default_language_applies_to_unqualified() {
        let dflt = LangTag::en_us();
        let plain = LString::plain("weekend");
        assert_eq!(plain.lang_or(&dflt), &dflt);
        let tagged = LString::tagged(LangTag::es(), "taco");
        assert_eq!(tagged.lang_or(&dflt), &LangTag::es());
    }

    #[test]
    fn quoting_escapes() {
        assert_eq!(quote(r#"say "hi""#), r#""say \"hi\"""#);
        assert_eq!(quote(r"back\slash"), r#""back\\slash""#);
        assert_eq!(unquote_contents(r#"say \"hi\""#, 0).unwrap(), r#"say "hi""#);
        assert_eq!(unquote_contents(r"back\\slash", 0).unwrap(), r"back\slash");
        assert!(unquote_contents(r"bad\q", 0).is_err());
        assert!(unquote_contents(r"dangling\", 0).is_err());
    }

    #[test]
    fn quote_unquote_round_trip() {
        for text in ["", "plain", "with \"quotes\"", "uni±code", "a\\b"] {
            let quoted = quote(text);
            let inner = &quoted[1..quoted.len() - 1];
            assert_eq!(unquote_contents(inner, 0).unwrap(), text);
        }
    }
}
