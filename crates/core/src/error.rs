//! Protocol-level errors.
//!
//! Note that these are *local* errors (malformed input, failed parses).
//! STARTS itself has no error-reporting channel: "we do not deal with any
//! security issues, or with error reporting in our proposal" (§4). A
//! conforming source never sends an error to a client — it executes what
//! it can and reports the actual query.

use std::fmt;

/// Errors raised while parsing or validating STARTS objects.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// Query-language syntax error.
    QuerySyntax {
        /// What went wrong.
        message: String,
        /// Byte offset in the expression text.
        offset: usize,
    },
    /// SOIF framing error.
    Soif(starts_soif::ParseError),
    /// A required SOIF attribute is missing from a protocol object.
    MissingAttribute {
        /// The SOIF template type.
        template: String,
        /// The missing attribute.
        attribute: String,
    },
    /// An attribute value failed to parse.
    InvalidValue {
        /// The attribute.
        attribute: String,
        /// Why the value is invalid.
        message: String,
    },
    /// The object's template type was not the expected one.
    WrongTemplate {
        /// Expected template.
        expected: &'static str,
        /// What arrived.
        found: String,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::QuerySyntax { message, offset } => {
                write!(f, "query syntax error at byte {offset}: {message}")
            }
            ProtoError::Soif(e) => write!(f, "SOIF error: {e}"),
            ProtoError::MissingAttribute {
                template,
                attribute,
            } => write!(f, "@{template} object is missing attribute {attribute:?}"),
            ProtoError::InvalidValue { attribute, message } => {
                write!(f, "invalid value for {attribute:?}: {message}")
            }
            ProtoError::WrongTemplate { expected, found } => {
                write!(f, "expected @{expected} object, found @{found}")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<starts_soif::ParseError> for ProtoError {
    fn from(e: starts_soif::ParseError) -> Self {
        ProtoError::Soif(e)
    }
}

impl ProtoError {
    /// Shorthand for a syntax error.
    pub fn syntax(message: impl Into<String>, offset: usize) -> Self {
        ProtoError::QuerySyntax {
            message: message.into(),
            offset,
        }
    }

    /// Shorthand for a missing attribute.
    pub fn missing(template: &str, attribute: &str) -> Self {
        ProtoError::MissingAttribute {
            template: template.to_string(),
            attribute: attribute.to_string(),
        }
    }

    /// Shorthand for an invalid value.
    pub fn invalid(attribute: &str, message: impl Into<String>) -> Self {
        ProtoError::InvalidValue {
            attribute: attribute.to_string(),
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = ProtoError::syntax("unexpected ')'", 12);
        assert!(e.to_string().contains("byte 12"));
        let e = ProtoError::missing("SQuery", "Version");
        assert!(e.to_string().contains("@SQuery"));
        let e = ProtoError::WrongTemplate {
            expected: "SQResults",
            found: "SQuery".to_string(),
        };
        assert!(e.to_string().contains("expected @SQResults"));
    }
}
