//! Canonical printer for filter and ranking expressions.
//!
//! The printer emits exactly the concrete syntax of the paper's examples
//! (single spaces, `list(...)`, `prox[d,T]`), so that SOIF-encoded
//! queries round-trip through the parser and byte counts are stable.

use crate::query::ast::{FilterExpr, ProxSpec, QTerm, RankExpr, WeightedTerm};

/// Render a term: bare l-strings print unparenthesized (`"databases"`);
/// terms with a field and/or modifiers print as
/// `(field modifiers "text")`.
pub fn print_term(t: &QTerm) -> String {
    if t.is_bare() {
        return t.value.to_query_syntax();
    }
    let mut parts: Vec<String> = Vec::with_capacity(2 + t.modifiers.len());
    if let Some(f) = &t.field {
        parts.push(f.name().to_string());
    }
    for m in &t.modifiers {
        parts.push(m.name().to_string());
    }
    parts.push(t.value.to_query_syntax());
    format!("({})", parts.join(" "))
}

fn print_prox(spec: &ProxSpec) -> String {
    format!(
        "prox[{},{}]",
        spec.distance,
        if spec.ordered { "T" } else { "F" }
    )
}

/// Render a filter expression in canonical syntax.
pub fn print_filter(e: &FilterExpr) -> String {
    match e {
        FilterExpr::Term(t) => print_term(t),
        FilterExpr::And(a, b) => format!("({} and {})", print_filter(a), print_filter(b)),
        FilterExpr::Or(a, b) => format!("({} or {})", print_filter(a), print_filter(b)),
        FilterExpr::AndNot(a, b) => {
            format!("({} and-not {})", print_filter(a), print_filter(b))
        }
        FilterExpr::Prox(l, spec, r) => {
            format!("({} {} {})", print_term(l), print_prox(spec), print_term(r))
        }
    }
}

/// Render a weighted term. Weighted bare terms print `("text" w)`;
/// weighted fielded terms print `((field "text") w)`.
pub fn print_weighted(t: &WeightedTerm) -> String {
    match t.weight {
        None => print_term(&t.term),
        Some(w) => format!("({} {})", print_term(&t.term), fmt_weight(w)),
    }
}

/// Render a ranking expression in canonical syntax.
pub fn print_ranking(e: &RankExpr) -> String {
    match e {
        RankExpr::Term(t) => print_weighted(t),
        RankExpr::List(items) => {
            let inner: Vec<String> = items.iter().map(print_ranking).collect();
            format!("list({})", inner.join(" "))
        }
        RankExpr::And(a, b) => format!("({} and {})", print_ranking(a), print_ranking(b)),
        RankExpr::Or(a, b) => format!("({} or {})", print_ranking(a), print_ranking(b)),
        RankExpr::AndNot(a, b) => {
            format!("({} and-not {})", print_ranking(a), print_ranking(b))
        }
        RankExpr::Prox(l, spec, r) => format!(
            "({} {} {})",
            print_weighted(l),
            print_prox(spec),
            print_weighted(r)
        ),
    }
}

/// Format a weight or score. Rust's `Display` for `f64` prints the
/// shortest decimal that round-trips exactly, which matches the paper's
/// rendering for its values (`0.7`, `0.31`, `0.82`, `1`) *and* preserves
/// full precision for engine-produced scores through SOIF encode/decode.
pub fn fmt_weight(w: f64) -> String {
    format!("{w}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{CmpOp, Field, Modifier};
    use crate::query::parser::{parse_filter, parse_ranking};

    #[test]
    fn prints_example1_filter() {
        let f = parse_filter(r#"((author "Ullman") and (title "databases"))"#).unwrap();
        assert_eq!(
            print_filter(&f),
            r#"((author "Ullman") and (title "databases"))"#
        );
    }

    #[test]
    fn prints_example6_expressions_with_paper_byte_counts() {
        // The paper's Example 6 declares FilterExpression{48} and
        // RankingExpression{61}; our canonical print must hit exactly
        // those byte counts (the proof that the canonical syntax is the
        // paper's).
        let f = parse_filter(r#"((author "Ullman") and (title stem "databases"))"#).unwrap();
        let printed = print_filter(&f);
        assert_eq!(printed.len(), 48);
        let r = parse_ranking(r#"list((body-of-text "distributed") (body-of-text "databases"))"#)
            .unwrap();
        let printed = print_ranking(&r);
        assert_eq!(printed.len(), 61);
        // And Example 8's ActualRankingExpression{26}.
        let r = parse_ranking(r#"(body-of-text "databases")"#).unwrap();
        assert_eq!(print_ranking(&r).len(), 26);
    }

    #[test]
    fn prints_comparison() {
        let t =
            QTerm::fielded(Field::DateLastModified, "1996-08-01").with(Modifier::Cmp(CmpOp::Gt));
        assert_eq!(print_term(&t), r#"(date-last-modified > "1996-08-01")"#);
    }

    #[test]
    fn prints_prox() {
        let f = parse_filter(r#"("distributed" prox[3,T] "databases")"#).unwrap();
        assert_eq!(print_filter(&f), r#"("distributed" prox[3,T] "databases")"#);
    }

    #[test]
    fn prints_weights() {
        let r = parse_ranking(r#"list(("distributed" 0.7) ("databases" 0.3))"#).unwrap();
        assert_eq!(
            print_ranking(&r),
            r#"list(("distributed" 0.7) ("databases" 0.3))"#
        );
    }

    #[test]
    fn weight_formatting() {
        assert_eq!(fmt_weight(0.7), "0.7");
        assert_eq!(fmt_weight(0.31), "0.31");
        assert_eq!(fmt_weight(1.0), "1");
        assert_eq!(fmt_weight(0.0), "0");
        assert_eq!(fmt_weight(0.82), "0.82"); // Example 8's RawScore
                                              // Shortest round-trip: parsing the output recovers the value.
        let w = 0.123456789012345;
        assert_eq!(fmt_weight(w).parse::<f64>().unwrap(), w);
    }

    #[test]
    fn round_trip_via_parser() {
        for src in [
            r#"(title stem "databases")"#,
            r#"((author "Ullman") and (title stem "databases"))"#,
            r#"(("a" or "b") and-not (title "c"))"#,
            r#"("x" prox[0,F] "y")"#,
            r#"(date-last-modified >= "1996-01-01")"#,
            r#"(title [en-US "behavior"])"#,
        ] {
            let ast = parse_filter(src).unwrap();
            let printed = print_filter(&ast);
            assert_eq!(printed, src, "canonical form differs");
            assert_eq!(parse_filter(&printed).unwrap(), ast);
        }
        for src in [
            r#"list("a" "b")"#,
            r#"list((body-of-text "distributed") (body-of-text "databases"))"#,
            r#"list(("distributed" 0.7) ("databases" 0.3))"#,
            r#"("distributed" and "databases")"#,
            r#"list()"#,
            r#"("a" prox[2,T] "b")"#,
        ] {
            let ast = parse_ranking(src).unwrap();
            let printed = print_ranking(&ast);
            assert_eq!(printed, src, "canonical form differs");
            assert_eq!(parse_ranking(&printed).unwrap(), ast);
        }
    }
}
