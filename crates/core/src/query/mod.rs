//! Complete STARTS queries (§4.1.2): filter + ranking expressions plus
//! the result-specification properties, with `@SQuery` SOIF bindings
//! (Example 6).

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod printer;

pub use ast::{FilterExpr, ProxSpec, QTerm, RankExpr, WeightedTerm};
pub use parser::{parse_filter, parse_ranking};
pub use printer::{fmt_weight, print_filter, print_ranking, print_term, print_weighted};

use starts_soif::{SoifObject, STARTS_VERSION, VERSION_ATTR};
use starts_text::LangTag;

use crate::attrs::{Field, ATTRSET_BASIC1};
use crate::error::ProtoError;
use crate::trace::{TraceContext, TRACE_ATTR};

/// Sort direction for answer specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// `a`
    Ascending,
    /// `d`
    Descending,
}

/// One sort key: by a field, or by document score (`None`).
/// Default: "Score of the documents for the query, in descending order."
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// `None` = the document score.
    pub field: Option<Field>,
    /// Direction.
    pub order: SortOrder,
}

impl SortKey {
    /// The default sort: score, descending.
    pub fn score_descending() -> Self {
        SortKey {
            field: None,
            order: SortOrder::Descending,
        }
    }
}

/// The answer specification of §4.1.2.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerSpec {
    /// Fields to return (default: Title; Linkage "is always returned").
    pub fields: Vec<Field>,
    /// Sort keys (default: score descending).
    pub sort_by: Vec<SortKey>,
    /// Minimum acceptable document score (default: unbounded).
    pub min_doc_score: f64,
    /// Maximum acceptable number of documents (default: unbounded).
    pub max_documents: usize,
}

impl Default for AnswerSpec {
    fn default() -> Self {
        AnswerSpec {
            fields: vec![Field::Title],
            sort_by: vec![SortKey::score_descending()],
            min_doc_score: f64::NEG_INFINITY,
            max_documents: usize::MAX,
        }
    }
}

/// A complete STARTS query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The Boolean component ("specifies some condition that must be
    /// satisfied by every document in the query result").
    pub filter: Option<FilterExpr>,
    /// The vector-space component ("imposes an order over the documents
    /// in the query result").
    pub ranking: Option<RankExpr>,
    /// "Whether the source should delete the stop words from the query
    /// or not."
    pub drop_stop_words: bool,
    /// Default attribute set (notational convenience; default
    /// `basic-1`).
    pub default_attr_set: String,
    /// Default language for unqualified l-strings (default `en-US`).
    pub default_language: LangTag,
    /// "Sources (in the same resource) where to evaluate the query in
    /// addition to the source where the query is submitted" (Figure 1).
    pub additional_sources: Vec<String>,
    /// The answer specification.
    pub answer: AnswerSpec,
    /// Optional trace context (§4.3 extension attribute
    /// `XTraceContext`); sources echo it back on `@SQResults` and may
    /// use it to parent their spans under the metasearcher's dispatch.
    pub trace: Option<TraceContext>,
}

impl Default for Query {
    fn default() -> Self {
        Query {
            filter: None,
            ranking: None,
            drop_stop_words: true,
            default_attr_set: ATTRSET_BASIC1.to_string(),
            default_language: LangTag::en_us(),
            additional_sources: Vec::new(),
            answer: AnswerSpec::default(),
            trace: None,
        }
    }
}

impl Query {
    /// A query with only a filter expression (the Boolean model).
    pub fn filter_only(filter: FilterExpr) -> Self {
        Query {
            filter: Some(filter),
            ..Query::default()
        }
    }

    /// A query with only a ranking expression (the vector-space model).
    pub fn ranking_only(ranking: RankExpr) -> Self {
        Query {
            ranking: Some(ranking),
            ..Query::default()
        }
    }

    /// All terms mentioned anywhere in the query.
    pub fn all_terms(&self) -> Vec<&QTerm> {
        let mut out: Vec<&QTerm> = Vec::new();
        if let Some(f) = &self.filter {
            out.extend(f.terms());
        }
        if let Some(r) = &self.ranking {
            out.extend(r.terms().into_iter().map(|wt| &wt.term));
        }
        out
    }

    /// Encode as an `@SQuery` SOIF object, attribute order per Example 6.
    pub fn to_soif(&self) -> SoifObject {
        let mut o = SoifObject::new("SQuery");
        o.push_str(VERSION_ATTR, STARTS_VERSION);
        if let Some(f) = &self.filter {
            o.push_str("FilterExpression", print_filter(f));
        }
        if let Some(r) = &self.ranking {
            o.push_str("RankingExpression", print_ranking(r));
        }
        o.push_str(
            "DropStopWords",
            if self.drop_stop_words { "T" } else { "F" },
        );
        o.push_str("DefaultAttributeSet", &self.default_attr_set);
        o.push_str("DefaultLanguage", self.default_language.to_string());
        if !self.additional_sources.is_empty() {
            o.push_str("AdditionalSources", self.additional_sources.join(" "));
        }
        let fields: Vec<&str> = self.answer.fields.iter().map(Field::name).collect();
        o.push_str("AnswerFields", fields.join(" "));
        if self.answer.sort_by != vec![SortKey::score_descending()] {
            o.push_str("SortByFields", encode_sort(&self.answer.sort_by));
        }
        if self.answer.min_doc_score.is_finite() {
            o.push_str("MinDocumentScore", fmt_weight(self.answer.min_doc_score));
        }
        if self.answer.max_documents != usize::MAX {
            o.push_str("MaxNumberDocuments", self.answer.max_documents.to_string());
        }
        // Extension attribute (§4.3): only present when tracing, so the
        // paper's exact encodings are untouched for untraced queries.
        if let Some(ctx) = &self.trace {
            o.push_str(TRACE_ATTR, ctx.encode());
        }
        o
    }

    /// Decode from an `@SQuery` SOIF object.
    pub fn from_soif(o: &SoifObject) -> Result<Query, ProtoError> {
        if !o.template.eq_ignore_ascii_case("SQuery") {
            return Err(ProtoError::WrongTemplate {
                expected: "SQuery",
                found: o.template.clone(),
            });
        }
        let mut q = Query::default();
        if let Some(src) = o.get_str("FilterExpression") {
            if !src.trim().is_empty() {
                q.filter = Some(parse_filter(src)?);
            }
        }
        if let Some(src) = o.get_str("RankingExpression") {
            if !src.trim().is_empty() {
                q.ranking = Some(parse_ranking(src)?);
            }
        }
        if let Some(v) = o.get_str("DropStopWords") {
            q.drop_stop_words = parse_bool("DropStopWords", v)?;
        }
        if let Some(v) = o.get_str("DefaultAttributeSet") {
            q.default_attr_set = v.to_string();
        }
        if let Some(v) = o.get_str("DefaultLanguage") {
            q.default_language = LangTag::parse(v)
                .map_err(|e| ProtoError::invalid("DefaultLanguage", e.to_string()))?;
        }
        if let Some(v) = o.get_str("AdditionalSources") {
            q.additional_sources = v.split_whitespace().map(str::to_string).collect();
        }
        if let Some(v) = o.get_str("AnswerFields") {
            q.answer.fields = v.split_whitespace().map(Field::parse).collect();
        }
        if let Some(v) = o.get_str("SortByFields") {
            q.answer.sort_by = decode_sort(v)?;
        }
        if let Some(v) = o.get_str("MinDocumentScore") {
            q.answer.min_doc_score = v
                .parse()
                .map_err(|_| ProtoError::invalid("MinDocumentScore", "not a number"))?;
        }
        if let Some(v) = o.get_str("MaxNumberDocuments") {
            q.answer.max_documents = v
                .parse()
                .map_err(|_| ProtoError::invalid("MaxNumberDocuments", "not an integer"))?;
        }
        // Lenient per §4.3: malformed trace context degrades to None.
        q.trace = o.get_str(TRACE_ATTR).and_then(TraceContext::decode);
        Ok(q)
    }
}

/// Encode sort keys: `score d` / `title a author d`.
fn encode_sort(keys: &[SortKey]) -> String {
    let mut parts = Vec::with_capacity(keys.len() * 2);
    for k in keys {
        parts.push(match &k.field {
            None => "score".to_string(),
            Some(f) => f.name().to_string(),
        });
        parts.push(match k.order {
            SortOrder::Ascending => "a".to_string(),
            SortOrder::Descending => "d".to_string(),
        });
    }
    parts.join(" ")
}

fn decode_sort(s: &str) -> Result<Vec<SortKey>, ProtoError> {
    let parts: Vec<&str> = s.split_whitespace().collect();
    if !parts.len().is_multiple_of(2) {
        return Err(ProtoError::invalid(
            "SortByFields",
            "expected pairs of field and direction",
        ));
    }
    parts
        .chunks(2)
        .map(|pair| {
            let field = if pair[0].eq_ignore_ascii_case("score") {
                None
            } else {
                Some(Field::parse(pair[0]))
            };
            let order = match pair[1] {
                "a" | "A" => SortOrder::Ascending,
                "d" | "D" => SortOrder::Descending,
                other => {
                    return Err(ProtoError::invalid(
                        "SortByFields",
                        format!("bad direction {other:?}"),
                    ))
                }
            };
            Ok(SortKey { field, order })
        })
        .collect()
}

pub(crate) fn parse_bool(attr: &str, v: &str) -> Result<bool, ProtoError> {
    match v.trim() {
        "T" | "t" | "true" => Ok(true),
        "F" | "f" | "false" => Ok(false),
        other => Err(ProtoError::invalid(
            attr,
            format!("expected T or F, got {other:?}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starts_soif::{parse_one, write_object, ParseMode};

    fn example6_query() -> Query {
        Query {
            filter: Some(
                parse_filter(r#"((author "Ullman") and (title stem "databases"))"#).unwrap(),
            ),
            ranking: Some(
                parse_ranking(r#"list((body-of-text "distributed") (body-of-text "databases"))"#)
                    .unwrap(),
            ),
            drop_stop_words: true,
            default_attr_set: "basic-1".to_string(),
            default_language: LangTag::en_us(),
            additional_sources: vec![],
            answer: AnswerSpec {
                fields: vec![Field::Title, Field::Author],
                sort_by: vec![SortKey::score_descending()],
                min_doc_score: 0.5,
                max_documents: 10,
            },
            trace: None,
        }
    }

    /// The paper's Example 6, byte for byte (modulo the LaTeX quoting of
    /// the printed paper; see EXPERIMENTS.md X5).
    #[test]
    fn example6_exact_soif_encoding() {
        let q = example6_query();
        let encoded = String::from_utf8(write_object(&q.to_soif())).unwrap();
        let expected = "@SQuery{\n\
            Version{10}: STARTS 1.0\n\
            FilterExpression{48}: ((author \"Ullman\") and (title stem \"databases\"))\n\
            RankingExpression{61}: list((body-of-text \"distributed\") (body-of-text \"databases\"))\n\
            DropStopWords{1}: T\n\
            DefaultAttributeSet{7}: basic-1\n\
            DefaultLanguage{5}: en-US\n\
            AnswerFields{12}: title author\n\
            MinDocumentScore{3}: 0.5\n\
            MaxNumberDocuments{2}: 10\n\
            }\n";
        assert_eq!(encoded, expected);
    }

    #[test]
    fn soif_round_trip() {
        let q = example6_query();
        let bytes = write_object(&q.to_soif());
        let parsed = parse_one(&bytes, ParseMode::Strict).unwrap();
        let back = Query::from_soif(&parsed).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn defaults_round_trip() {
        let q = Query::default();
        let bytes = write_object(&q.to_soif());
        let back = Query::from_soif(&parse_one(&bytes, ParseMode::Strict).unwrap()).unwrap();
        assert_eq!(back, q);
        // Defaults omit the optional attributes.
        let text = String::from_utf8(bytes).unwrap();
        assert!(!text.contains("MinDocumentScore"));
        assert!(!text.contains("MaxNumberDocuments"));
        assert!(!text.contains("SortByFields"));
        assert!(!text.contains("AdditionalSources"));
    }

    #[test]
    fn additional_sources_encode() {
        let q = Query {
            additional_sources: vec!["Source-2".to_string(), "Source-3".to_string()],
            ..Query::default()
        };
        let o = q.to_soif();
        assert_eq!(o.get_str("AdditionalSources"), Some("Source-2 Source-3"));
        let back = Query::from_soif(&o).unwrap();
        assert_eq!(back.additional_sources, q.additional_sources);
    }

    #[test]
    fn sort_keys_encode() {
        let q = Query {
            answer: AnswerSpec {
                sort_by: vec![
                    SortKey {
                        field: Some(Field::Title),
                        order: SortOrder::Ascending,
                    },
                    SortKey::score_descending(),
                ],
                ..AnswerSpec::default()
            },
            ..Query::default()
        };
        let o = q.to_soif();
        assert_eq!(o.get_str("SortByFields"), Some("title a score d"));
        let back = Query::from_soif(&o).unwrap();
        assert_eq!(back.answer.sort_by, q.answer.sort_by);
    }

    #[test]
    fn wrong_template_rejected() {
        let o = SoifObject::new("SQResults");
        assert!(matches!(
            Query::from_soif(&o),
            Err(ProtoError::WrongTemplate { .. })
        ));
    }

    #[test]
    fn bad_values_rejected() {
        let mut o = Query::default().to_soif();
        o.push_str("MaxNumberDocuments", "many");
        assert!(Query::from_soif(&o).is_err());
        let mut o = Query::default().to_soif();
        o.push_str("SortByFields", "title");
        assert!(Query::from_soif(&o).is_err());
        assert!(parse_bool("X", "yes").is_err());
    }

    #[test]
    fn empty_expressions_decode_to_none() {
        let mut o = SoifObject::new("SQuery");
        o.push_str("FilterExpression", "");
        o.push_str("RankingExpression", "  ");
        let q = Query::from_soif(&o).unwrap();
        assert!(q.filter.is_none());
        assert!(q.ranking.is_none());
    }

    #[test]
    fn trace_context_rides_as_extension_attribute() {
        use crate::trace::TraceContext;
        let q = Query {
            trace: Some(TraceContext {
                query_id: "q-000001".to_string(),
                parent_path: "meta.search/dispatch/source".to_string(),
                parent_span_id: 17,
            }),
            ..Query::default()
        };
        let o = q.to_soif();
        assert_eq!(
            o.get_str(TRACE_ATTR),
            Some("q-000001 17 meta.search/dispatch/source")
        );
        let bytes = write_object(&o);
        let back = Query::from_soif(&parse_one(&bytes, ParseMode::Strict).unwrap()).unwrap();
        assert_eq!(back, q);
        // A garbage value degrades to None instead of failing (§4.3).
        let mut o = Query::default().to_soif();
        o.push_str(TRACE_ATTR, "not a valid context at all ???");
        let back = Query::from_soif(&o).unwrap();
        // "not" "a" "valid..." — second token must be a u64.
        assert!(back.trace.is_none());
    }

    #[test]
    fn all_terms_spans_both_expressions() {
        let q = example6_query();
        let terms = q.all_terms();
        assert_eq!(terms.len(), 4);
        assert_eq!(terms[0].value.text, "Ullman");
        assert_eq!(terms[3].value.text, "databases");
    }
}
