//! Recursive-descent parser for STARTS filter and ranking expressions.
//!
//! The concrete syntax is the one used throughout the paper's examples:
//!
//! ```text
//! ((author "Ullman") and (title stem "databases"))          -- filter
//! (t1 prox[3,T] t2)                                         -- filter
//! list((body-of-text "distributed") (body-of-text "databases"))
//! list(("distributed" 0.7) ("databases" 0.3))               -- weights
//! ("distributed" and "databases")                           -- fuzzy ops
//! (date-last-modified > "1996-08-01")                       -- comparison
//! [en-US "behavior"]                                        -- l-string
//! ```

use starts_text::LangTag;

use crate::attrs::{Field, Modifier};
use crate::error::ProtoError;
use crate::lstring::LString;
use crate::query::ast::{FilterExpr, ProxSpec, QTerm, RankExpr, WeightedTerm};
use crate::query::lexer::{lex, Token, TokenKind};

/// Parse a filter expression. Empty input is an error — use
/// `Option<FilterExpr>` at the query level for "no filter".
///
/// ```
/// use starts_proto::query::{parse_filter, print_filter};
/// let f = parse_filter(r#"((author "Ullman") and (title stem "databases"))"#).unwrap();
/// assert_eq!(f.terms().len(), 2);
/// // The canonical printer round-trips the paper's syntax.
/// assert_eq!(print_filter(&f), r#"((author "Ullman") and (title stem "databases"))"#);
/// ```
pub fn parse_filter(input: &str) -> Result<FilterExpr, ProtoError> {
    let tokens = lex(input)?;
    let mut p = Parser::new(&tokens, input.len());
    let expr = p.filter_operand()?;
    p.expect_end()?;
    Ok(expr)
}

/// Parse a ranking expression.
///
/// ```
/// use starts_proto::query::parse_ranking;
/// let r = parse_ranking(r#"list(("distributed" 0.7) ("databases" 0.3))"#).unwrap();
/// let weights: Vec<f64> = r.terms().iter().map(|t| t.effective_weight()).collect();
/// assert_eq!(weights, vec![0.7, 0.3]);
/// ```
pub fn parse_ranking(input: &str) -> Result<RankExpr, ProtoError> {
    let tokens = lex(input)?;
    let mut p = Parser::new(&tokens, input.len());
    let expr = p.rank_expr()?;
    p.expect_end()?;
    Ok(expr)
}

/// Binary operators shared by filter and ranking expressions.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    And,
    Or,
    AndNot,
    Prox(ProxSpec),
}

/// Maximum expression nesting depth. Recursive descent otherwise lets a
/// hostile query (`((((((…`) exhaust the stack; real STARTS queries are
/// a handful of levels deep.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    input_len: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(tokens: &'a [Token], input_len: usize) -> Self {
        Parser {
            tokens,
            pos: 0,
            input_len,
            depth: 0,
        }
    }

    fn enter(&mut self) -> Result<(), ProtoError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(ProtoError::syntax(
                format!("expression nesting exceeds {MAX_DEPTH} levels"),
                self.offset(),
            ));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn offset(&self) -> usize {
        self.peek().map_or(self.input_len, |t| t.offset)
    }

    fn expect_end(&self) -> Result<(), ProtoError> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(ProtoError::syntax("unexpected trailing tokens", t.offset)),
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ProtoError> {
        match self.next() {
            Some(t) if &t.kind == kind => Ok(()),
            Some(t) => Err(ProtoError::syntax(format!("expected {what}"), t.offset)),
            None => Err(ProtoError::syntax(
                format!("expected {what}, found end of input"),
                self.input_len,
            )),
        }
    }

    /// Is the next token the given reserved word?
    fn at_word(&self, w: &str) -> bool {
        matches!(self.peek(), Some(Token { kind: TokenKind::Word(s), .. }) if s.eq_ignore_ascii_case(w))
    }

    /// Parse an operator word (after the left operand).
    fn operator(&mut self) -> Result<Op, ProtoError> {
        let off = self.offset();
        let Some(Token {
            kind: TokenKind::Word(w),
            ..
        }) = self.next()
        else {
            return Err(ProtoError::syntax("expected an operator", off));
        };
        match w.to_ascii_lowercase().as_str() {
            "and" => Ok(Op::And),
            "or" => Ok(Op::Or),
            "and-not" => Ok(Op::AndNot),
            "not" => Err(ProtoError::syntax(
                "'not' is not a STARTS operator; use 'and-not'",
                off,
            )),
            "prox" => {
                self.expect(&TokenKind::LBracket, "'[' after prox")?;
                let dist_off = self.offset();
                let dist: u32 = self
                    .next()
                    .and_then(|t| t.kind.word())
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| ProtoError::syntax("expected prox distance", dist_off))?;
                self.expect(&TokenKind::Comma, "',' in prox spec")?;
                let ord_off = self.offset();
                let ordered = match self.next().and_then(|t| t.kind.word()) {
                    Some("T") | Some("t") => true,
                    Some("F") | Some("f") => false,
                    _ => {
                        return Err(ProtoError::syntax(
                            "expected T or F for prox order flag",
                            ord_off,
                        ))
                    }
                };
                self.expect(&TokenKind::RBracket, "']' after prox spec")?;
                Ok(Op::Prox(ProxSpec {
                    distance: dist,
                    ordered,
                }))
            }
            other => Err(ProtoError::syntax(
                format!("unknown operator {other:?}"),
                off,
            )),
        }
    }

    fn is_operator_next(&self) -> bool {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Word(w),
                ..
            }) => matches!(
                w.to_ascii_lowercase().as_str(),
                "and" | "or" | "and-not" | "prox"
            ),
            _ => false,
        }
    }

    /// Parse an l-string: `"text"` or `[lang "text"]`.
    fn lstring(&mut self) -> Result<LString, ProtoError> {
        let off = self.offset();
        match self.next() {
            Some(Token {
                kind: TokenKind::Str(s),
                ..
            }) => Ok(LString::plain(s.clone())),
            Some(Token {
                kind: TokenKind::LBracket,
                ..
            }) => {
                let lang_off = self.offset();
                let lang_word = self
                    .next()
                    .and_then(|t| t.kind.word())
                    .ok_or_else(|| ProtoError::syntax("expected language tag", lang_off))?;
                let lang = LangTag::parse(lang_word)
                    .map_err(|e| ProtoError::syntax(format!("bad language tag: {e}"), lang_off))?;
                let str_off = self.offset();
                let text = match self.next() {
                    Some(Token {
                        kind: TokenKind::Str(s),
                        ..
                    }) => s.clone(),
                    _ => return Err(ProtoError::syntax("expected string in l-string", str_off)),
                };
                self.expect(&TokenKind::RBracket, "']' closing l-string")?;
                Ok(LString::tagged(lang, text))
            }
            _ => Err(ProtoError::syntax("expected an l-string", off)),
        }
    }

    fn at_lstring(&self) -> bool {
        matches!(
            self.peek(),
            Some(Token {
                kind: TokenKind::Str(_) | TokenKind::LBracket,
                ..
            })
        )
    }

    /// Parse a term body after '(': `[field] modifier* lstring`.
    /// The first word is a field unless it parses as a known modifier or
    /// comparison symbol.
    fn term_body(&mut self) -> Result<QTerm, ProtoError> {
        let mut words: Vec<&str> = Vec::new();
        while let Some(Token {
            kind: TokenKind::Word(w),
            ..
        }) = self.peek()
        {
            words.push(w);
            self.pos += 1;
        }
        let value = self.lstring()?;
        let mut field = None;
        let mut modifiers = Vec::new();
        for (i, w) in words.iter().enumerate() {
            let parsed = Modifier::parse(w);
            let is_known_modifier = !matches!(parsed, Modifier::Other(_));
            if i == 0 && !is_known_modifier {
                field = Some(Field::parse(w));
            } else {
                modifiers.push(parsed);
            }
        }
        Ok(QTerm {
            field,
            modifiers,
            value,
        })
    }

    // ---------------- filter expressions ----------------

    /// An operand: a bare l-string term or a parenthesized expression.
    fn filter_operand(&mut self) -> Result<FilterExpr, ProtoError> {
        if self.at_lstring() {
            let value = self.lstring()?;
            return Ok(FilterExpr::Term(QTerm {
                field: None,
                modifiers: Vec::new(),
                value,
            }));
        }
        let off = self.offset();
        self.expect(&TokenKind::LParen, "'(' or l-string")
            .map_err(|_| ProtoError::syntax("expected a term or '('", off))?;
        self.paren_filter()
    }

    /// Contents of a parenthesized filter expression ('(' consumed).
    fn paren_filter(&mut self) -> Result<FilterExpr, ProtoError> {
        self.enter()?;
        let result = self.paren_filter_inner();
        self.leave();
        result
    }

    fn paren_filter_inner(&mut self) -> Result<FilterExpr, ProtoError> {
        // Word-first (not an operator): a term body.
        if matches!(
            self.peek(),
            Some(Token {
                kind: TokenKind::Word(_),
                ..
            })
        ) && !self.is_operator_next()
        {
            let term = self.term_body()?;
            self.expect(&TokenKind::RParen, "')' closing term")?;
            return Ok(FilterExpr::Term(term));
        }
        // Otherwise: an operand, optionally followed by `op operand`.
        let left = self.filter_operand()?;
        if matches!(
            self.peek(),
            Some(Token {
                kind: TokenKind::RParen,
                ..
            })
        ) {
            self.pos += 1;
            return Ok(left);
        }
        let op = self.operator()?;
        let right = self.filter_operand()?;
        self.expect(&TokenKind::RParen, "')' closing expression")?;
        combine_filter(left, op, right)
    }

    // ---------------- ranking expressions ----------------

    /// A full ranking expression.
    fn rank_expr(&mut self) -> Result<RankExpr, ProtoError> {
        if self.at_word("list") {
            return self.rank_list();
        }
        if self.at_lstring() {
            let value = self.lstring()?;
            return Ok(RankExpr::Term(WeightedTerm::plain(QTerm {
                field: None,
                modifiers: Vec::new(),
                value,
            })));
        }
        let off = self.offset();
        self.expect(&TokenKind::LParen, "'(' , 'list' or l-string")
            .map_err(|_| ProtoError::syntax("expected a ranking expression", off))?;
        self.paren_rank()
    }

    /// `list( item* )`.
    fn rank_list(&mut self) -> Result<RankExpr, ProtoError> {
        self.enter()?;
        let result = self.rank_list_inner();
        self.leave();
        result
    }

    fn rank_list_inner(&mut self) -> Result<RankExpr, ProtoError> {
        self.pos += 1; // consume 'list'
        self.expect(&TokenKind::LParen, "'(' after list")?;
        let mut items = Vec::new();
        loop {
            match self.peek() {
                Some(Token {
                    kind: TokenKind::RParen,
                    ..
                }) => {
                    self.pos += 1;
                    break;
                }
                None => return Err(ProtoError::syntax("unterminated list(...)", self.input_len)),
                _ => items.push(self.rank_expr()?),
            }
        }
        Ok(RankExpr::List(items))
    }

    /// Contents of a parenthesized ranking expression ('(' consumed),
    /// depth-guarded.
    ///
    /// Possible shapes:
    /// * `field mods "x" [weight] )` — a (possibly weighted) fielded term;
    /// * `"x" )` / `"x" weight )` / `"x" op …` — bare term, weighted
    ///   term, or combination with a bare-term left side;
    /// * `( … ) op …` / `( … ) weight )` / `( … ) )` — combination,
    ///   weighted parenthesized term, or redundant parens.
    fn paren_rank(&mut self) -> Result<RankExpr, ProtoError> {
        self.enter()?;
        let result = self.paren_rank_inner();
        self.leave();
        result
    }

    fn paren_rank_inner(&mut self) -> Result<RankExpr, ProtoError> {
        // Word-first that is not an operator and not `list`: term body.
        if matches!(
            self.peek(),
            Some(Token {
                kind: TokenKind::Word(_),
                ..
            })
        ) && !self.is_operator_next()
            && !self.at_word("list")
        {
            let term = self.term_body()?;
            let weight = self.optional_weight()?;
            self.expect(&TokenKind::RParen, "')' closing term")?;
            return Ok(RankExpr::Term(WeightedTerm { term, weight }));
        }
        let left = self.rank_expr()?;
        // `)` → done; number → weight; operator → combination.
        if matches!(
            self.peek(),
            Some(Token {
                kind: TokenKind::RParen,
                ..
            })
        ) {
            self.pos += 1;
            return Ok(left);
        }
        if let Some(w) = self.optional_weight()? {
            self.expect(&TokenKind::RParen, "')' after weight")?;
            return match left {
                RankExpr::Term(mut t) => {
                    t.weight = Some(w);
                    Ok(RankExpr::Term(t))
                }
                _ => Err(ProtoError::syntax(
                    "weights apply to terms, not subexpressions",
                    self.offset(),
                )),
            };
        }
        let op = self.operator()?;
        let right = self.rank_expr()?;
        self.expect(&TokenKind::RParen, "')' closing expression")?;
        combine_rank(left, op, right, self.offset())
    }

    /// A numeric weight, if the next token is a number.
    fn optional_weight(&mut self) -> Result<Option<f64>, ProtoError> {
        let Some(Token {
            kind: TokenKind::Word(w),
            offset,
        }) = self.peek()
        else {
            return Ok(None);
        };
        let Ok(value) = w.parse::<f64>() else {
            return Ok(None);
        };
        if !(0.0..=1.0).contains(&value) {
            return Err(ProtoError::syntax(
                "term weights must be between 0 and 1",
                *offset,
            ));
        }
        self.pos += 1;
        Ok(Some(value))
    }
}

fn combine_filter(left: FilterExpr, op: Op, right: FilterExpr) -> Result<FilterExpr, ProtoError> {
    Ok(match op {
        Op::And => FilterExpr::and(left, right),
        Op::Or => FilterExpr::or(left, right),
        Op::AndNot => FilterExpr::and_not(left, right),
        Op::Prox(spec) => {
            let (FilterExpr::Term(l), FilterExpr::Term(r)) = (left, right) else {
                return Err(ProtoError::syntax(
                    "prox operands must be terms (the operator specifies two terms)",
                    0,
                ));
            };
            FilterExpr::Prox(l, spec, r)
        }
    })
}

fn combine_rank(
    left: RankExpr,
    op: Op,
    right: RankExpr,
    offset: usize,
) -> Result<RankExpr, ProtoError> {
    Ok(match op {
        Op::And => RankExpr::And(Box::new(left), Box::new(right)),
        Op::Or => RankExpr::Or(Box::new(left), Box::new(right)),
        Op::AndNot => RankExpr::AndNot(Box::new(left), Box::new(right)),
        Op::Prox(spec) => {
            let (RankExpr::Term(l), RankExpr::Term(r)) = (left, right) else {
                return Err(ProtoError::syntax("prox operands must be terms", offset));
            };
            RankExpr::Prox(l, spec, r)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::CmpOp;

    #[test]
    fn example1_filter() {
        // ((author "Ullman") and (title "databases"))
        let f = parse_filter(r#"((author "Ullman") and (title "databases"))"#).unwrap();
        let FilterExpr::And(l, r) = f else {
            panic!("expected And")
        };
        let FilterExpr::Term(l) = *l else { panic!() };
        assert_eq!(l.field, Some(Field::Author));
        assert_eq!(l.value.text, "Ullman");
        let FilterExpr::Term(r) = *r else { panic!() };
        assert_eq!(r.field, Some(Field::Title));
    }

    #[test]
    fn example1_ranking() {
        let r = parse_ranking(r#"list((body-of-text "distributed") (body-of-text "databases"))"#)
            .unwrap();
        let RankExpr::List(items) = r else { panic!() };
        assert_eq!(items.len(), 2);
        let RankExpr::Term(t) = &items[0] else {
            panic!()
        };
        assert_eq!(t.term.field, Some(Field::BodyOfText));
        assert_eq!(t.weight, None);
    }

    #[test]
    fn example2_stem_modifier() {
        let f = parse_filter(r#"(title stem "databases")"#).unwrap();
        let FilterExpr::Term(t) = f else { panic!() };
        assert_eq!(t.field, Some(Field::Title));
        assert_eq!(t.modifiers, vec![Modifier::Stem]);
    }

    #[test]
    fn example3_prox() {
        let f = parse_filter(r#"("distributed" prox[3,T] "databases")"#).unwrap();
        let FilterExpr::Prox(l, spec, r) = f else {
            panic!()
        };
        assert_eq!(l.value.text, "distributed");
        assert_eq!(r.value.text, "databases");
        assert_eq!(spec.distance, 3);
        assert!(spec.ordered);
    }

    #[test]
    fn example4_fuzzy_and() {
        let r = parse_ranking(r#"("distributed" and "databases")"#).unwrap();
        assert!(matches!(r, RankExpr::And(_, _)));
    }

    #[test]
    fn example5_weighted_list() {
        let r = parse_ranking(r#"list(("distributed" 0.7) ("databases" 0.3))"#).unwrap();
        let RankExpr::List(items) = r else { panic!() };
        let RankExpr::Term(t) = &items[0] else {
            panic!()
        };
        assert_eq!(t.weight, Some(0.7));
        assert!(t.term.is_bare());
    }

    #[test]
    fn paper_latex_quotes_accepted() {
        let f = parse_filter("((author ``Ullman'') and (title stem ``databases''))").unwrap();
        assert_eq!(f.terms().len(), 2);
    }

    #[test]
    fn date_comparison_term() {
        let f = parse_filter(r#"(date-last-modified > "1996-08-01")"#).unwrap();
        let FilterExpr::Term(t) = f else { panic!() };
        assert_eq!(t.field, Some(Field::DateLastModified));
        assert_eq!(t.modifiers, vec![Modifier::Cmp(CmpOp::Gt)]);
    }

    #[test]
    fn modifier_only_term_defaults_to_any_field() {
        let f = parse_filter(r#"(stem "systems")"#).unwrap();
        let FilterExpr::Term(t) = f else { panic!() };
        assert_eq!(t.field, None);
        assert_eq!(t.modifiers, vec![Modifier::Stem]);
    }

    #[test]
    fn lstring_with_language() {
        let f = parse_filter(r#"(title [en-US "behavior"])"#).unwrap();
        let FilterExpr::Term(t) = f else { panic!() };
        assert_eq!(t.value.lang, Some(LangTag::en_us()));
        assert_eq!(t.value.text, "behavior");
    }

    #[test]
    fn bare_lstring_filter() {
        let f = parse_filter(r#""databases""#).unwrap();
        let FilterExpr::Term(t) = f else { panic!() };
        assert!(t.is_bare());
    }

    #[test]
    fn nested_combinations() {
        let f =
            parse_filter(r#"(((author "Ullman") or (author "Garcia")) and-not (title "surveys"))"#)
                .unwrap();
        let FilterExpr::AndNot(l, _) = f else {
            panic!()
        };
        assert!(matches!(*l, FilterExpr::Or(_, _)));
    }

    #[test]
    fn no_not_operator() {
        // Prefix 'not' is not valid syntax at all.
        assert!(parse_filter(r#"(not (title "databases"))"#).is_err());
        // Infix 'not' gets the explicit diagnostic pointing at and-not.
        let err = parse_filter(r#"(("a") not ("b"))"#).unwrap_err();
        assert!(err.to_string().contains("and-not"), "got: {err}");
    }

    #[test]
    fn prox_requires_terms() {
        let err = parse_filter(r#"((("a") and ("b")) prox[2,F] "c")"#).unwrap_err();
        assert!(err.to_string().contains("prox"));
    }

    #[test]
    fn weighted_fielded_term() {
        let r = parse_ranking(r#"list((body-of-text "distributed" 0.7))"#).unwrap();
        let RankExpr::List(items) = r else { panic!() };
        let RankExpr::Term(t) = &items[0] else {
            panic!()
        };
        assert_eq!(t.weight, Some(0.7));
        assert_eq!(t.term.field, Some(Field::BodyOfText));
    }

    #[test]
    fn weighted_parenthesized_term() {
        let r = parse_ranking(r#"list(((body-of-text "distributed") 0.7))"#).unwrap();
        let RankExpr::List(items) = r else { panic!() };
        let RankExpr::Term(t) = &items[0] else {
            panic!()
        };
        assert_eq!(t.weight, Some(0.7));
    }

    #[test]
    fn weight_out_of_range_rejected() {
        assert!(parse_ranking(r#"list(("x" 1.5))"#).is_err());
    }

    #[test]
    fn weight_on_subexpression_rejected() {
        assert!(parse_ranking(r#"((("a") and ("b")) 0.5)"#).is_err());
    }

    #[test]
    fn empty_list_allowed() {
        // An empty ranking expression (a source may return one as its
        // "actual" expression after dropping everything).
        let r = parse_ranking("list()").unwrap();
        assert_eq!(r, RankExpr::List(vec![]));
    }

    #[test]
    fn nested_list() {
        let r = parse_ranking(r#"list("a" list("b" "c"))"#).unwrap();
        let RankExpr::List(items) = r else { panic!() };
        assert_eq!(items.len(), 2);
        assert!(matches!(items[1], RankExpr::List(_)));
    }

    #[test]
    fn prox_in_ranking() {
        let r = parse_ranking(r#"("a" prox[1,F] "b")"#).unwrap();
        let RankExpr::Prox(_, spec, _) = r else {
            panic!()
        };
        assert!(!spec.ordered);
        assert_eq!(spec.distance, 1);
    }

    #[test]
    fn syntax_errors() {
        assert!(parse_filter("").is_err());
        assert!(parse_filter("(title").is_err());
        assert!(parse_filter(r#"(title "x") trailing"#).is_err());
        assert!(parse_filter(r#"("a" xor "b")"#).is_err());
        assert!(parse_filter(r#"("a" prox[x,T] "b")"#).is_err());
        assert!(parse_filter(r#"("a" prox[3,Q] "b")"#).is_err());
        assert!(parse_ranking("list(").is_err());
    }

    #[test]
    fn hostile_nesting_rejected_not_stack_overflow() {
        // 100k nested parens must error cleanly, not crash.
        let mut q = "(".repeat(100_000);
        q.push_str("\"x\"");
        q.push_str(&")".repeat(100_000));
        let err = parse_filter(&q).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
        let err = parse_ranking(&q).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
        // Nested lists too.
        let mut q = "list(".repeat(100_000);
        q.push_str("\"x\"");
        q.push_str(&")".repeat(100_000));
        assert!(parse_ranking(&q).is_err());
    }

    #[test]
    fn reasonable_nesting_accepted() {
        let mut q = "(".repeat(60);
        q.push_str("\"x\"");
        q.push_str(&")".repeat(60));
        assert!(parse_filter(&q).is_ok());
    }

    #[test]
    fn redundant_parens_collapse() {
        let f = parse_filter(r#"(("x"))"#).unwrap();
        assert!(matches!(f, FilterExpr::Term(_)));
    }

    #[test]
    fn unknown_modifier_from_other_set_is_preserved() {
        // Unknown second word becomes Modifier::Other (queries may use
        // other attribute sets per §4.1.2 DefaultAttributeSet).
        let f = parse_filter(r#"(title fuzzy "databases")"#).unwrap();
        let FilterExpr::Term(t) = f else { panic!() };
        assert_eq!(t.modifiers, vec![Modifier::Other("fuzzy".to_string())]);
    }
}
