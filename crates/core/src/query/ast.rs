//! Abstract syntax of STARTS filter and ranking expressions (§4.1.1).

use crate::attrs::{Field, Modifier};
use crate::lstring::LString;

/// An atomic term: "a term in our query language is an l-string modified
/// by an unordered list of attributes", where an attribute is a field or
/// a modifier, and "at most one \[field\] should be specified for each
/// term. If no field is specified, `Any` is assumed."
#[derive(Debug, Clone, PartialEq)]
pub struct QTerm {
    /// The field, or `None` for the `Any` default.
    pub field: Option<Field>,
    /// Zero or more modifiers.
    pub modifiers: Vec<Modifier>,
    /// The l-string.
    pub value: LString,
}

impl QTerm {
    /// A bare term: just an l-string.
    pub fn bare(text: impl Into<String>) -> Self {
        QTerm {
            field: None,
            modifiers: Vec::new(),
            value: LString::plain(text),
        }
    }

    /// A fielded term.
    pub fn fielded(field: Field, text: impl Into<String>) -> Self {
        QTerm {
            field: Some(field),
            modifiers: Vec::new(),
            value: LString::plain(text),
        }
    }

    /// Builder-style: add a modifier.
    pub fn with(mut self, m: Modifier) -> Self {
        self.modifiers.push(m);
        self
    }

    /// The effective field (`Any` when unspecified).
    pub fn effective_field(&self) -> Field {
        self.field.clone().unwrap_or(Field::Any)
    }

    /// Whether the term has neither field nor modifiers (prints as a
    /// bare l-string).
    pub fn is_bare(&self) -> bool {
        self.field.is_none() && self.modifiers.is_empty()
    }
}

/// Proximity parameters: `prox[distance,order]` (Example 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProxSpec {
    /// Maximum number of words between the two terms.
    pub distance: u32,
    /// `T` = the first term must appear before the second.
    pub ordered: bool,
}

/// A filter expression — the Boolean component of a query. "The
/// 'Basic-1'-type filter expressions use the following operators. If a
/// source supports filter expressions, it must support all these
/// operators": `and`, `or`, `and-not`, `prox`. There is no unary `not`.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterExpr {
    /// An atomic term.
    Term(QTerm),
    /// Conjunction.
    And(Box<FilterExpr>, Box<FilterExpr>),
    /// Disjunction.
    Or(Box<FilterExpr>, Box<FilterExpr>),
    /// `and-not` — the only form of negation: "all queries always have a
    /// 'positive' component."
    AndNot(Box<FilterExpr>, Box<FilterExpr>),
    /// Word-distance proximity between two *terms* (not subexpressions;
    /// the operator was deliberately simplified to this form).
    Prox(QTerm, ProxSpec, QTerm),
}

impl FilterExpr {
    /// Term constructor.
    pub fn term(t: QTerm) -> Self {
        FilterExpr::Term(t)
    }
    /// `a and b`.
    pub fn and(a: FilterExpr, b: FilterExpr) -> Self {
        FilterExpr::And(Box::new(a), Box::new(b))
    }
    /// `a or b`.
    pub fn or(a: FilterExpr, b: FilterExpr) -> Self {
        FilterExpr::Or(Box::new(a), Box::new(b))
    }
    /// `a and-not b`.
    pub fn and_not(a: FilterExpr, b: FilterExpr) -> Self {
        FilterExpr::AndNot(Box::new(a), Box::new(b))
    }

    /// All terms in the expression, left to right.
    pub fn terms(&self) -> Vec<&QTerm> {
        let mut out = Vec::new();
        self.collect_terms(&mut out);
        out
    }

    fn collect_terms<'a>(&'a self, out: &mut Vec<&'a QTerm>) {
        match self {
            FilterExpr::Term(t) => out.push(t),
            FilterExpr::And(a, b) | FilterExpr::Or(a, b) | FilterExpr::AndNot(a, b) => {
                a.collect_terms(out);
                b.collect_terms(out);
            }
            FilterExpr::Prox(l, _, r) => {
                out.push(l);
                out.push(r);
            }
        }
    }
}

/// A term with an optional weight: "the terms of a ranking expression may
/// have a weight associated with them (a number between 0 and 1),
/// indicating their relative importance" (Example 5).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedTerm {
    /// The term.
    pub term: QTerm,
    /// The weight, if given.
    pub weight: Option<f64>,
}

impl WeightedTerm {
    /// Unweighted.
    pub fn plain(term: QTerm) -> Self {
        WeightedTerm { term, weight: None }
    }

    /// Weighted.
    pub fn weighted(term: QTerm, weight: f64) -> Self {
        WeightedTerm {
            term,
            weight: Some(weight),
        }
    }

    /// The effective weight (1.0 when unspecified).
    pub fn effective_weight(&self) -> f64 {
        self.weight.unwrap_or(1.0)
    }
}

/// A ranking expression — the vector-space component. Uses the filter
/// operators **plus** `list`, "which simply groups together a set of
/// terms" and "represents the most common way of constructing
/// vector-space queries". The Boolean-like operators were added at the
/// vendors' request; sources may interpret them as fuzzy operators or
/// ignore them (Example 4).
#[derive(Debug, Clone, PartialEq)]
pub enum RankExpr {
    /// An atomic (optionally weighted) term.
    Term(WeightedTerm),
    /// Flat grouping.
    List(Vec<RankExpr>),
    /// Fuzzy conjunction.
    And(Box<RankExpr>, Box<RankExpr>),
    /// Fuzzy disjunction.
    Or(Box<RankExpr>, Box<RankExpr>),
    /// Fuzzy and-not.
    AndNot(Box<RankExpr>, Box<RankExpr>),
    /// Proximity between two terms.
    Prox(WeightedTerm, ProxSpec, WeightedTerm),
}

impl RankExpr {
    /// An unweighted term.
    pub fn term(t: QTerm) -> Self {
        RankExpr::Term(WeightedTerm::plain(t))
    }

    /// A flat list of unweighted terms.
    pub fn list_of(terms: impl IntoIterator<Item = QTerm>) -> Self {
        RankExpr::List(terms.into_iter().map(RankExpr::term).collect())
    }

    /// All weighted terms, left to right.
    pub fn terms(&self) -> Vec<&WeightedTerm> {
        let mut out = Vec::new();
        self.collect_terms(&mut out);
        out
    }

    fn collect_terms<'a>(&'a self, out: &mut Vec<&'a WeightedTerm>) {
        match self {
            RankExpr::Term(t) => out.push(t),
            RankExpr::List(items) => {
                for i in items {
                    i.collect_terms(out);
                }
            }
            RankExpr::And(a, b) | RankExpr::Or(a, b) | RankExpr::AndNot(a, b) => {
                a.collect_terms(out);
                b.collect_terms(out);
            }
            RankExpr::Prox(l, _, r) => {
                out.push(l);
                out.push(r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_field_defaults_to_any() {
        assert_eq!(QTerm::bare("x").effective_field(), Field::Any);
        assert_eq!(
            QTerm::fielded(Field::Title, "x").effective_field(),
            Field::Title
        );
    }

    #[test]
    fn filter_terms_in_order() {
        let f = FilterExpr::and(
            FilterExpr::term(QTerm::fielded(Field::Author, "Ullman")),
            FilterExpr::Prox(
                QTerm::bare("a"),
                ProxSpec {
                    distance: 3,
                    ordered: true,
                },
                QTerm::bare("b"),
            ),
        );
        let names: Vec<&str> = f.terms().iter().map(|t| t.value.text.as_str()).collect();
        assert_eq!(names, vec!["Ullman", "a", "b"]);
    }

    #[test]
    fn rank_terms_and_weights() {
        let r = RankExpr::List(vec![
            RankExpr::Term(WeightedTerm::weighted(QTerm::bare("distributed"), 0.7)),
            RankExpr::Term(WeightedTerm::weighted(QTerm::bare("databases"), 0.3)),
        ]);
        let ws: Vec<f64> = r.terms().iter().map(|t| t.effective_weight()).collect();
        assert_eq!(ws, vec![0.7, 0.3]);
        assert_eq!(
            RankExpr::term(QTerm::bare("x")).terms()[0].effective_weight(),
            1.0
        );
    }

    #[test]
    fn bare_detection() {
        assert!(QTerm::bare("x").is_bare());
        assert!(!QTerm::fielded(Field::Title, "x").is_bare());
        assert!(!QTerm::bare("x").with(Modifier::Stem).is_bare());
    }
}
