//! Lexer for the STARTS query language.
//!
//! The syntax is parenthesized and whitespace-separated. String literals
//! use double quotes; the paper's typeset examples render them as
//! ```` ``…'' ```` (LaTeX quoting), which this lexer also accepts so the
//! printed examples can be pasted verbatim.

use crate::error::ProtoError;

/// One lexical token, with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the token start.
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,` (inside `prox[d,T]`)
    Comma,
    /// A quoted string literal (contents, unescaped).
    Str(String),
    /// A bare word: identifiers (`and`, `title`, `prox`), numbers
    /// (`0.7`, `3`), comparison symbols (`>=`).
    Word(String),
}

impl TokenKind {
    /// The word's text, if this is a word.
    pub fn word(&self) -> Option<&str> {
        match self {
            TokenKind::Word(w) => Some(w),
            _ => None,
        }
    }
}

/// Tokenize a query expression.
pub fn lex(input: &str) -> Result<Vec<Token>, ProtoError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'(' => {
                out.push(Token {
                    kind: TokenKind::LParen,
                    offset: i,
                });
                i += 1;
            }
            b')' => {
                out.push(Token {
                    kind: TokenKind::RParen,
                    offset: i,
                });
                i += 1;
            }
            b'[' => {
                out.push(Token {
                    kind: TokenKind::LBracket,
                    offset: i,
                });
                i += 1;
            }
            b']' => {
                out.push(Token {
                    kind: TokenKind::RBracket,
                    offset: i,
                });
                i += 1;
            }
            b',' => {
                out.push(Token {
                    kind: TokenKind::Comma,
                    offset: i,
                });
                i += 1;
            }
            b'"' => {
                let (s, next) = lex_quoted(input, i, Quote::Double)?;
                out.push(Token {
                    kind: TokenKind::Str(s),
                    offset: i,
                });
                i = next;
            }
            b'`' => {
                // LaTeX-style ``…'' quoting from the paper's typesetting.
                if bytes.get(i + 1) != Some(&b'`') {
                    return Err(ProtoError::syntax("expected `` to open a string", i));
                }
                let (s, next) = lex_quoted(input, i, Quote::Latex)?;
                out.push(Token {
                    kind: TokenKind::Str(s),
                    offset: i,
                });
                i = next;
            }
            _ => {
                let start = i;
                while i < bytes.len() && !is_delimiter(bytes[i]) {
                    i += 1;
                }
                // SAFETY of slicing: delimiter bytes are all ASCII, so a
                // char boundary is guaranteed at `i`.
                out.push(Token {
                    kind: TokenKind::Word(input[start..i].to_string()),
                    offset: start,
                });
            }
        }
    }
    Ok(out)
}

fn is_delimiter(b: u8) -> bool {
    matches!(
        b,
        b' ' | b'\t' | b'\n' | b'\r' | b'(' | b')' | b'[' | b']' | b',' | b'"' | b'`'
    )
}

enum Quote {
    Double,
    Latex,
}

fn lex_quoted(input: &str, start: usize, quote: Quote) -> Result<(String, usize), ProtoError> {
    let bytes = input.as_bytes();
    let mut i = match quote {
        Quote::Double => start + 1,
        Quote::Latex => start + 2,
    };
    let mut out = String::new();
    while i < bytes.len() {
        match (&quote, bytes[i]) {
            (Quote::Double, b'"') => return Ok((out, i + 1)),
            (Quote::Latex, b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                return Ok((out, i + 2));
            }
            (_, b'\\') => {
                match bytes.get(i + 1) {
                    Some(&e @ (b'"' | b'\\')) => {
                        out.push(e as char);
                        i += 2;
                    }
                    Some(other) => {
                        return Err(ProtoError::syntax(
                            format!("unknown escape '\\{}'", *other as char),
                            i,
                        ))
                    }
                    None => return Err(ProtoError::syntax("dangling escape", i)),
                }
                continue;
            }
            _ => {
                // Copy one UTF-8 character.
                let ch = input[i..].chars().next().expect("in-bounds char");
                out.push(ch);
                i += ch.len_utf8();
            }
        }
    }
    Err(ProtoError::syntax("unterminated string literal", start))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_fielded_term() {
        assert_eq!(
            kinds("(author \"Ullman\")"),
            vec![
                TokenKind::LParen,
                TokenKind::Word("author".to_string()),
                TokenKind::Str("Ullman".to_string()),
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn lexes_paper_latex_quotes() {
        assert_eq!(
            kinds("(title stem ``databases'')"),
            vec![
                TokenKind::LParen,
                TokenKind::Word("title".to_string()),
                TokenKind::Word("stem".to_string()),
                TokenKind::Str("databases".to_string()),
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn lexes_prox_brackets() {
        assert_eq!(
            kinds("prox[3,T]"),
            vec![
                TokenKind::Word("prox".to_string()),
                TokenKind::LBracket,
                TokenKind::Word("3".to_string()),
                TokenKind::Comma,
                TokenKind::Word("T".to_string()),
                TokenKind::RBracket,
            ]
        );
    }

    #[test]
    fn lexes_lstring_brackets() {
        assert_eq!(
            kinds("[en-US \"behavior\"]"),
            vec![
                TokenKind::LBracket,
                TokenKind::Word("en-US".to_string()),
                TokenKind::Str("behavior".to_string()),
                TokenKind::RBracket,
            ]
        );
    }

    #[test]
    fn lexes_comparison_and_numbers() {
        assert_eq!(
            kinds("(date-last-modified > \"1996-08-01\") 0.7"),
            vec![
                TokenKind::LParen,
                TokenKind::Word("date-last-modified".to_string()),
                TokenKind::Word(">".to_string()),
                TokenKind::Str("1996-08-01".to_string()),
                TokenKind::RParen,
                TokenKind::Word("0.7".to_string()),
            ]
        );
    }

    #[test]
    fn escapes_in_strings() {
        assert_eq!(
            kinds(r#""say \"hi\"""#),
            vec![TokenKind::Str(r#"say "hi""#.to_string())]
        );
    }

    #[test]
    fn utf8_in_strings_and_words() {
        assert_eq!(
            kinds("[es \"algoritmo\"] año"),
            vec![
                TokenKind::LBracket,
                TokenKind::Word("es".to_string()),
                TokenKind::Str("algoritmo".to_string()),
                TokenKind::RBracket,
                TokenKind::Word("año".to_string()),
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("``unterminated").is_err());
        assert!(lex("`single").is_err());
        assert!(lex(r#""bad \q escape""#).is_err());
    }

    #[test]
    fn offsets_recorded() {
        let toks = lex("  (title)").unwrap();
        assert_eq!(toks[0].offset, 2);
        assert_eq!(toks[1].offset, 3);
        assert_eq!(toks[2].offset, 8);
    }

    #[test]
    fn empty_input() {
        assert!(lex("").unwrap().is_empty());
        assert!(lex("   \n ").unwrap().is_empty());
    }
}
