//! Source content summaries (§4.3.2) and their `@SContentSummary` SOIF
//! binding (Example 11).
//!
//! "We require that each source export partial data about its contents.
//! This data is automatically generated, is orders of magnitude smaller
//! than the original contents, and has proven useful in distinguishing
//! the more useful from the less useful sources for a given query
//! [GlOSS, refs 7–8]." A summary is a word list with per-word statistics
//! (total postings and/or document frequency) plus the total document
//! count, optionally sectioned by field and language.

use starts_soif::{SoifObject, STARTS_VERSION, VERSION_ATTR};
use starts_text::LangTag;

use crate::error::ProtoError;
use crate::query::parse_bool;

/// Statistics for one word. "Statistics for each word listed, including
/// at least one of: total number of postings …, document frequency."
#[derive(Debug, Clone, PartialEq)]
pub struct TermSummary {
    /// The word (unstemmed and case-preserved "if possible").
    pub term: String,
    /// Total occurrences in the source.
    pub total_postings: Option<u64>,
    /// Number of documents containing the word.
    pub doc_freq: Option<u32>,
}

/// One section of the summary: the words of one field–language slice
/// (Example 11 has an `en-US` title section and an `es` title section).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SummarySection {
    /// The field the words occurred in, if field-qualified.
    pub field: Option<String>,
    /// The language of the words, if qualified.
    pub language: Option<LangTag>,
    /// The words with their statistics.
    pub terms: Vec<TermSummary>,
}

/// A source's exported content summary.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ContentSummary {
    /// Whether the listed words are stemmed ("if possible … not").
    pub stemmed: bool,
    /// Whether the list includes stop words ("should include" them; the
    /// flag is `T` when stop words are ABSENT in the original Harvest
    /// sense — here: `stop_words_included = F` ⇔ Example 11's
    /// `StopWords{1}: F` meaning the list has none removed... The paper's
    /// flag reads "whether the words listed include stop words or not";
    /// we store exactly that.
    pub stop_words_included: bool,
    /// Whether the words are case sensitive.
    pub case_sensitive: bool,
    /// Total number of documents in the source.
    pub num_docs: u32,
    /// The word sections. With field qualification off, a single section
    /// with `field: None`.
    pub sections: Vec<SummarySection>,
}

impl ContentSummary {
    /// Whether words carry field qualification (the `Fields` flag).
    pub fn fields_qualified(&self) -> bool {
        self.sections.iter().any(|s| s.field.is_some())
    }

    /// Total number of distinct (section, word) entries.
    pub fn total_terms(&self) -> usize {
        self.sections.iter().map(|s| s.terms.len()).sum()
    }

    /// Look up a word's statistics in a given field (None = any
    /// section), case per the summary's own flag.
    pub fn lookup(&self, field: Option<&str>, term: &str) -> Option<&TermSummary> {
        for section in &self.sections {
            if let Some(f) = field {
                match &section.field {
                    Some(sf) if sf.eq_ignore_ascii_case(f) => {}
                    // Unqualified summaries match any requested field.
                    None => {}
                    _ => continue,
                }
            }
            let found = section.terms.iter().find(|t| {
                if self.case_sensitive {
                    t.term == term
                } else {
                    t.term.eq_ignore_ascii_case(term)
                }
            });
            if found.is_some() {
                return found;
            }
        }
        None
    }

    /// Document frequency of a word (0 when absent) — the statistic
    /// GlOSS-style source selection consumes.
    pub fn df(&self, field: Option<&str>, term: &str) -> u32 {
        self.lookup(field, term)
            .and_then(|t| t.doc_freq)
            .unwrap_or(0)
    }

    /// Encode as an `@SContentSummary` object (Example 11's layout:
    /// header flags, then repeated `Field`/`Language`/`TermDocFreq`
    /// attribute groups).
    pub fn to_soif(&self) -> SoifObject {
        let mut o = SoifObject::new("SContentSummary");
        o.push_str(VERSION_ATTR, STARTS_VERSION);
        o.push_str("Stemming", tf(self.stemmed));
        o.push_str("StopWords", tf(self.stop_words_included));
        o.push_str("CaseSensitive", tf(self.case_sensitive));
        o.push_str("Fields", tf(self.fields_qualified()));
        o.push_str("NumDocs", self.num_docs.to_string());
        for section in &self.sections {
            if let Some(f) = &section.field {
                o.push_str("Field", f);
            }
            if let Some(l) = &section.language {
                o.push_str("Language", l.to_string());
            }
            let lines: Vec<String> = section.terms.iter().map(encode_term).collect();
            o.push_str("TermDocFreq", lines.join("\n"));
        }
        o
    }

    /// Decode from an `@SContentSummary` object.
    pub fn from_soif(o: &SoifObject) -> Result<ContentSummary, ProtoError> {
        if !o.template.eq_ignore_ascii_case("SContentSummary") {
            return Err(ProtoError::WrongTemplate {
                expected: "SContentSummary",
                found: o.template.clone(),
            });
        }
        let mut summary = ContentSummary {
            stemmed: o
                .get_str("Stemming")
                .map(|v| parse_bool("Stemming", v))
                .transpose()?
                .unwrap_or(false),
            stop_words_included: o
                .get_str("StopWords")
                .map(|v| parse_bool("StopWords", v))
                .transpose()?
                .unwrap_or(true),
            case_sensitive: o
                .get_str("CaseSensitive")
                .map(|v| parse_bool("CaseSensitive", v))
                .transpose()?
                .unwrap_or(false),
            num_docs: o
                .get_str("NumDocs")
                .ok_or_else(|| ProtoError::missing("SContentSummary", "NumDocs"))?
                .trim()
                .parse()
                .map_err(|_| ProtoError::invalid("NumDocs", "not an integer"))?,
            sections: Vec::new(),
        };
        // Walk attributes in order, building sections: Field/Language
        // attrs set the pending section header; TermDocFreq closes it.
        let mut pending_field: Option<String> = None;
        let mut pending_lang: Option<LangTag> = None;
        for attr in o.iter() {
            let value = std::str::from_utf8(&attr.value)
                .map_err(|_| ProtoError::invalid(&attr.name, "not UTF-8"))?;
            match attr.name.to_ascii_lowercase().as_str() {
                "field" => pending_field = Some(value.trim().to_string()),
                "language" => {
                    pending_lang = Some(
                        LangTag::parse(value.trim())
                            .map_err(|e| ProtoError::invalid("Language", e.to_string()))?,
                    )
                }
                "termdocfreq" => {
                    let terms = value
                        .lines()
                        .filter(|l| !l.trim().is_empty())
                        .map(decode_term)
                        .collect::<Result<Vec<_>, _>>()?;
                    summary.sections.push(SummarySection {
                        field: pending_field.take(),
                        language: pending_lang.take(),
                        terms,
                    });
                }
                _ => {}
            }
        }
        Ok(summary)
    }
}

fn tf(b: bool) -> &'static str {
    if b {
        "T"
    } else {
        "F"
    }
}

/// `"term" postings df`, with `-` for an absent statistic (the paper
/// requires at least one of the two).
fn encode_term(t: &TermSummary) -> String {
    format!(
        "{} {} {}",
        crate::lstring::quote(&t.term),
        t.total_postings
            .map(|v| v.to_string())
            .unwrap_or_else(|| "-".to_string()),
        t.doc_freq
            .map(|v| v.to_string())
            .unwrap_or_else(|| "-".to_string()),
    )
}

fn decode_term(line: &str) -> Result<TermSummary, ProtoError> {
    let trimmed = line.trim();
    if !trimmed.starts_with('"') {
        return Err(ProtoError::invalid(
            "TermDocFreq",
            format!("expected quoted term in {line:?}"),
        ));
    }
    // Find the closing quote (terms are single words; no escapes in
    // practice, but honour them anyway).
    let mut end = None;
    let bytes = trimmed.as_bytes();
    let mut i = 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                end = Some(i);
                break;
            }
            _ => i += 1,
        }
    }
    let end = end.ok_or_else(|| ProtoError::invalid("TermDocFreq", "unterminated term"))?;
    let term = crate::lstring::unquote_contents(&trimmed[1..end], 0)?;
    let stats: Vec<&str> = trimmed[end + 1..].split_whitespace().collect();
    if stats.len() != 2 {
        return Err(ProtoError::invalid(
            "TermDocFreq",
            format!("expected two statistics in {line:?}"),
        ));
    }
    let parse_stat = |s: &str| -> Result<Option<u64>, ProtoError> {
        if s == "-" {
            Ok(None)
        } else {
            s.parse()
                .map(Some)
                .map_err(|_| ProtoError::invalid("TermDocFreq", format!("bad statistic {s:?}")))
        }
    };
    let total_postings = parse_stat(stats[0])?;
    let doc_freq = parse_stat(stats[1])?.map(|v| v as u32);
    if total_postings.is_none() && doc_freq.is_none() {
        return Err(ProtoError::invalid(
            "TermDocFreq",
            "at least one statistic (postings or document frequency) is required",
        ));
    }
    Ok(TermSummary {
        term,
        total_postings,
        doc_freq,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use starts_soif::{parse_one, write_object, ParseMode};

    fn example11_summary() -> ContentSummary {
        ContentSummary {
            stemmed: false,
            stop_words_included: false,
            case_sensitive: false,
            num_docs: 892,
            sections: vec![
                SummarySection {
                    field: Some("title".to_string()),
                    language: Some(LangTag::en_us()),
                    terms: vec![
                        TermSummary {
                            term: "algorithm".to_string(),
                            total_postings: Some(100),
                            doc_freq: Some(53),
                        },
                        TermSummary {
                            term: "analysis".to_string(),
                            total_postings: Some(50),
                            doc_freq: Some(23),
                        },
                    ],
                },
                SummarySection {
                    field: Some("title".to_string()),
                    language: Some(LangTag::es()),
                    terms: vec![
                        TermSummary {
                            term: "algoritmo".to_string(),
                            total_postings: Some(23),
                            doc_freq: Some(11),
                        },
                        TermSummary {
                            term: "datos".to_string(),
                            total_postings: Some(59),
                            doc_freq: Some(12),
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn example11_encoding() {
        let s = example11_summary();
        let o = s.to_soif();
        assert_eq!(o.get_str("Stemming"), Some("F"));
        assert_eq!(o.get_str("StopWords"), Some("F"));
        assert_eq!(o.get_str("CaseSensitive"), Some("F"));
        assert_eq!(o.get_str("Fields"), Some("T"));
        assert_eq!(o.get_str("NumDocs"), Some("892"));
        let fields: Vec<&str> = o.get_all_str("Field").collect();
        assert_eq!(fields, vec!["title", "title"]);
        let langs: Vec<&str> = o.get_all_str("Language").collect();
        assert_eq!(langs, vec!["en-US", "es"]);
        let tdf: Vec<&str> = o.get_all_str("TermDocFreq").collect();
        assert_eq!(tdf[0], "\"algorithm\" 100 53\n\"analysis\" 50 23");
        assert_eq!(tdf[1], "\"algoritmo\" 23 11\n\"datos\" 59 12");
    }

    #[test]
    fn round_trip() {
        let s = example11_summary();
        let bytes = write_object(&s.to_soif());
        let back =
            ContentSummary::from_soif(&parse_one(&bytes, ParseMode::Strict).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn lookup_and_df() {
        let s = example11_summary();
        // The paper's reading of Example 11: "the English word
        // 'algorithm' appears in the title of 53 documents, while the
        // Spanish word 'datos' appears in the title of 12 documents."
        assert_eq!(s.df(Some("title"), "algorithm"), 53);
        assert_eq!(s.df(Some("title"), "datos"), 12);
        assert_eq!(s.df(Some("title"), "missing"), 0);
        assert_eq!(s.df(Some("author"), "algorithm"), 0);
        // Case-insensitive summary.
        assert_eq!(s.df(Some("title"), "Algorithm"), 53);
    }

    #[test]
    fn case_sensitive_lookup() {
        let mut s = example11_summary();
        s.case_sensitive = true;
        assert_eq!(s.df(Some("title"), "Algorithm"), 0);
        assert_eq!(s.df(Some("title"), "algorithm"), 53);
    }

    #[test]
    fn unqualified_summary() {
        let s = ContentSummary {
            num_docs: 10,
            sections: vec![SummarySection {
                field: None,
                language: None,
                terms: vec![TermSummary {
                    term: "word".to_string(),
                    total_postings: None,
                    doc_freq: Some(4),
                }],
            }],
            ..ContentSummary::default()
        };
        let o = s.to_soif();
        assert_eq!(o.get_str("Fields"), Some("F"));
        assert!(!o.has("Field"));
        // Absent postings encodes as '-'.
        assert_eq!(o.get_str("TermDocFreq"), Some("\"word\" - 4"));
        let back = ContentSummary::from_soif(&o).unwrap();
        assert_eq!(back, s);
        // Field-qualified lookup still finds unqualified entries.
        assert_eq!(s.df(Some("title"), "word"), 4);
    }

    #[test]
    fn decode_errors() {
        assert!(decode_term("unquoted 1 2").is_err());
        assert!(decode_term("\"unterminated 1 2").is_err());
        assert!(decode_term("\"x\" 1").is_err());
        assert!(decode_term("\"x\" - -").is_err());
        assert!(decode_term("\"x\" a b").is_err());
    }

    #[test]
    fn missing_numdocs_rejected() {
        let o = SoifObject::new("SContentSummary");
        assert!(matches!(
            ContentSummary::from_soif(&o),
            Err(ProtoError::MissingAttribute { .. })
        ));
    }

    #[test]
    fn total_terms() {
        assert_eq!(example11_summary().total_terms(), 4);
    }
}
