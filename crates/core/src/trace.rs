//! Trace context carried inside protocol objects.
//!
//! STARTS §4.3 lets implementations extend objects with attributes
//! outside the spec: "a source might export more information than what
//! is required", and consumers must ignore attributes they do not
//! understand. We use that headroom to thread a query id and a parent
//! span identity from the metasearcher to each source, so span events
//! recorded on both sides of the wire stitch into one per-query trace
//! (see `starts_obs::trace`).
//!
//! The context rides in a single optional attribute, [`TRACE_ATTR`]
//! (`XTraceContext` — `X`-prefixed to mark it as an extension), on
//! `@SQuery` and is echoed back on `@SQResults`. Sources that predate
//! the attribute simply never see it and answer unchanged; decoding is
//! deliberately lenient, so a malformed value degrades to "no trace"
//! rather than an error — tracing must never break a query.

/// The extension attribute carrying the trace context on `@SQuery` and
/// `@SQResults` objects.
pub const TRACE_ATTR: &str = "XTraceContext";

/// A query's trace identity: which query this exchange belongs to, and
/// which client-side span the source's spans should parent under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceContext {
    /// The metasearcher-minted query id (e.g. `q-000042`).
    pub query_id: String,
    /// The dispatching span's full path (e.g.
    /// `meta.search/dispatch/source`).
    pub parent_path: String,
    /// The dispatching span's process-unique id.
    pub parent_span_id: u64,
}

impl TraceContext {
    /// Encode as the attribute value: `"<query_id> <span_id> <path>"`.
    /// The path goes last because it may itself contain no spaces today
    /// but we keep the grammar extensible: everything after the second
    /// space is the path.
    pub fn encode(&self) -> String {
        format!(
            "{} {} {}",
            self.query_id, self.parent_span_id, self.parent_path
        )
    }

    /// Decode an attribute value. Lenient: anything that does not parse
    /// yields `None` (per §4.3, unknown or unusable extension data must
    /// not affect query processing).
    pub fn decode(value: &str) -> Option<TraceContext> {
        let value = value.trim();
        let (query_id, rest) = value.split_once(' ')?;
        let (span_id, path) = rest.split_once(' ')?;
        let parent_span_id = span_id.parse::<u64>().ok()?;
        if query_id.is_empty() || path.is_empty() {
            return None;
        }
        Some(TraceContext {
            query_id: query_id.to_string(),
            parent_path: path.to_string(),
            parent_span_id,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let ctx = TraceContext {
            query_id: "q-000007".to_string(),
            parent_path: "meta.search/dispatch/source".to_string(),
            parent_span_id: 42,
        };
        assert_eq!(ctx.encode(), "q-000007 42 meta.search/dispatch/source");
        assert_eq!(TraceContext::decode(&ctx.encode()), Some(ctx));
    }

    #[test]
    fn malformed_values_decode_to_none() {
        for bad in ["", "q-1", "q-1 notanumber path", "q-1 42", "q-1 42 ", "   "] {
            assert_eq!(TraceContext::decode(bad), None, "input {bad:?}");
        }
    }
}
