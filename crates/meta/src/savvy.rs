//! A SavvySearch-style learned selector (§5).
//!
//! "SavvySearch ranks its accessible sources for a given query based on
//! information from past searches and estimated network traffic." This
//! selector keeps a per-(source, term) success memory: every completed
//! search records how many results each source returned for each query
//! term; future queries score sources by their historical yield for the
//! query's terms, discounted by the link's latency (the "estimated
//! network traffic" half).
//!
//! Unlike GlOSS it needs no content summaries — but it needs traffic to
//! learn, and it is blind for unseen terms (it falls back to a neutral
//! prior). The X6-style comparison shows both properties.

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::catalog::{Catalog, CatalogEntry};
use crate::select::Selector;

/// Accumulated experience for one (source, term) pair.
#[derive(Debug, Clone, Copy, Default)]
struct TermHistory {
    /// Number of searches that sent this term to the source.
    searches: u32,
    /// Total results the source returned across those searches.
    results: u64,
}

/// The learned selector.
#[derive(Debug, Default)]
pub struct PastPerformance {
    /// (source id, term) → history.
    history: RwLock<HashMap<(String, String), TermHistory>>,
    /// Weight of the latency discount (per second of link latency).
    pub latency_weight: f64,
}

impl PastPerformance {
    /// A fresh, memoryless selector.
    pub fn new() -> Self {
        PastPerformance {
            history: RwLock::new(HashMap::new()),
            latency_weight: 0.5,
        }
    }

    /// Record the outcome of one search: `source` returned
    /// `result_count` documents for a query containing `terms`.
    pub fn record(&self, source_id: &str, terms: &[String], result_count: usize) {
        let mut history = self.history.write();
        for term in terms {
            let entry = history
                .entry((source_id.to_string(), term.clone()))
                .or_default();
            entry.searches += 1;
            entry.results += result_count as u64;
        }
    }

    /// Number of (source, term) pairs with history.
    pub fn memory_size(&self) -> usize {
        self.history.read().len()
    }

    /// Learn from a completed metasearch: record, for every source that
    /// answered, how many documents it contributed. Call after each
    /// [`crate::metasearcher::Metasearcher::search`] to close the loop.
    pub fn observe_response(&self, terms: &[String], response: &crate::MetaResponse) {
        for sr in &response.per_source {
            self.record(&sr.metadata.source_id, terms, sr.results.documents.len());
        }
    }

    /// Mean historical yield of `source_id` for `term` (None if unseen).
    fn yield_for(&self, source_id: &str, term: &str) -> Option<f64> {
        let history = self.history.read();
        let h = history.get(&(source_id.to_string(), term.to_string()))?;
        if h.searches == 0 {
            None
        } else {
            Some(h.results as f64 / f64::from(h.searches))
        }
    }
}

/// Neutral prior for unseen (source, term) pairs: mildly optimistic so
/// new sources still get explored.
const UNSEEN_PRIOR: f64 = 0.5;

impl Selector for PastPerformance {
    fn name(&self) -> &'static str {
        "past-performance"
    }

    fn score_source(
        &self,
        entry: &CatalogEntry,
        _catalog: &Catalog,
        terms: &[(Option<&str>, &str)],
    ) -> f64 {
        if terms.is_empty() {
            return 0.0;
        }
        let mean_yield: f64 = terms
            .iter()
            .map(|(_, term)| self.yield_for(&entry.id, term).unwrap_or(UNSEEN_PRIOR))
            .sum::<f64>()
            / terms.len() as f64;
        // "Estimated network traffic": discount slow links.
        let latency_s = f64::from(entry.link.latency_ms) / 1000.0;
        mean_yield / (1.0 + self.latency_weight * latency_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starts_net::LinkProfile;
    use starts_proto::summary::ContentSummary;
    use starts_proto::SourceMetadata;

    fn entry(id: &str, latency_ms: u32) -> CatalogEntry {
        CatalogEntry {
            id: id.to_string(),
            metadata_url: String::new(),
            metadata: SourceMetadata {
                source_id: id.to_string(),
                ..SourceMetadata::default()
            },
            summary: ContentSummary {
                num_docs: 100,
                ..ContentSummary::default()
            },
            sample_results: Vec::new(),
            link: LinkProfile {
                latency_ms,
                cost_per_query: 0.0,
            },
        }
    }

    fn catalog() -> Catalog {
        Catalog {
            entries: vec![entry("A", 50), entry("B", 50), entry("Slow", 2000)],
        }
    }

    #[test]
    fn learns_from_recorded_searches() {
        let s = PastPerformance::new();
        let c = catalog();
        let terms = [(None, "databases")];
        // Initially neutral: ties broken by index, latency discounts Slow.
        let before = s.rank(&c, &terms);
        assert_eq!(before[0].0, 0);
        assert!(before[2].0 == 2, "slow source last on the prior");
        // A keeps striking out; B delivers.
        for _ in 0..5 {
            s.record("A", &["databases".to_string()], 0);
            s.record("B", &["databases".to_string()], 12);
        }
        let after = s.rank(&c, &terms);
        assert_eq!(after[0].0, 1, "B must rank first after learning");
        assert!(after[0].1 > after[1].1);
        assert_eq!(s.memory_size(), 2);
    }

    #[test]
    fn unseen_terms_fall_back_to_prior() {
        let s = PastPerformance::new();
        s.record("A", &["databases".to_string()], 100);
        let c = catalog();
        // A query about something never seen: history is useless, all
        // equal-latency sources tie at the prior.
        let ranked = s.rank(&c, &[(None, "astronomy")]);
        assert!((ranked[0].1 - ranked[1].1).abs() < 1e-12);
    }

    #[test]
    fn latency_discount_applies() {
        let s = PastPerformance::new();
        // Identical perfect history for fast B and Slow.
        for _ in 0..3 {
            s.record("B", &["x".to_string()], 10);
            s.record("Slow", &["x".to_string()], 10);
        }
        let c = catalog();
        let ranked = s.rank(&c, &[(None, "x")]);
        let pos_b = ranked.iter().position(|(i, _)| *i == 1).unwrap();
        let pos_slow = ranked.iter().position(|(i, _)| *i == 2).unwrap();
        assert!(
            pos_b < pos_slow,
            "network traffic estimate must discount Slow"
        );
    }

    #[test]
    fn observe_response_learns_from_live_searches() {
        use starts_index::Document;
        use starts_net::host::wire_source;
        use starts_net::{SimNet, StartsClient};
        use starts_proto::query::parse_ranking;
        use starts_proto::Query;
        use starts_source::{Source, SourceConfig};

        let net = SimNet::new();
        for (id, body) in [("Rich", "topic topic topic words"), ("Poor", "other words")] {
            let docs = vec![Document::new()
                .field("body-of-text", body)
                .field("linkage", format!("http://{id}/1"))];
            wire_source(
                &net,
                Source::build(SourceConfig::new(id), &docs),
                LinkProfile::default(),
            );
        }
        let client = StartsClient::new(&net);
        let mut catalog = Catalog::default();
        for id in ["rich", "poor"] {
            catalog
                .discover_source(
                    &client,
                    &format!("starts://{id}/metadata"),
                    LinkProfile::default(),
                    false,
                )
                .unwrap();
        }
        let savvy = PastPerformance::new();
        let meta = crate::Metasearcher::new(
            &net,
            catalog,
            crate::MetaConfig {
                max_sources: 2,
                ..crate::MetaConfig::default()
            },
        );
        let q = Query {
            ranking: Some(parse_ranking(r#"list((body-of-text "topic"))"#).unwrap()),
            ..Query::default()
        };
        let resp = meta.search(&q);
        savvy.observe_response(&["topic".to_string()], &resp);
        // Rich answered, Poor did not: the learned scores reflect it.
        let rich = savvy.score_source(&meta.catalog.entries[0], &meta.catalog, &[(None, "topic")]);
        let poor = savvy.score_source(&meta.catalog.entries[1], &meta.catalog, &[(None, "topic")]);
        assert!(rich > poor, "rich {rich} vs poor {poor}");
    }

    #[test]
    fn multi_term_scores_average() {
        let s = PastPerformance::new();
        s.record("A", &["good".to_string()], 10);
        s.record("A", &["bad".to_string()], 0);
        let c = catalog();
        let single_good = s.score_source(&c.entries[0], &c, &[(None, "good")]);
        let mixed = s.score_source(&c.entries[0], &c, &[(None, "good"), (None, "bad")]);
        assert!(single_good > mixed);
        assert!(mixed > 0.0);
    }
}
