//! Client-side query adaptation (§3.1; refs [3, 4]).
//!
//! A STARTS source already rewrites what it cannot execute and reports
//! the actual query — but a *good* metasearcher adapts the query per
//! source first, preserving intent instead of losing terms:
//!
//! * a Boolean-only source (`QueryPartsSupported: F`) gets the ranking
//!   terms folded into the filter as a disjunction (MetaCrawler-style
//!   post-filtering then restores ranking client-side);
//! * a ranking-only source (`R`) gets the filter terms folded into the
//!   ranking expression;
//! * unsupported *modifiers* are compensated where possible — a `stem`
//!   modifier for a non-stemming source is expanded client-side into a
//!   disjunction of known surface forms from the source's own content
//!   summary.
//!
//! The deliberately bad baseline, [`least_common_denominator`], strips
//! every query to what *all* sources support — §4.1.1's warning about
//! metasearchers whose "interface tends to be the least common
//! denominator of that of the underlying sources".

use starts_proto::metadata::SourceMetadata;
use starts_proto::query::{FilterExpr, QTerm, RankExpr, WeightedTerm};
use starts_proto::summary::ContentSummary;
use starts_proto::{Modifier, Query};

/// Adapt a query to one source, using its metadata and content summary.
pub fn adapt_query(query: &Query, metadata: &SourceMetadata, summary: &ContentSummary) -> Query {
    let mut q = query.clone();
    // Expand stem modifiers the source cannot honour, using its summary.
    if !metadata.supports_modifier(&Modifier::Stem) {
        if let Some(f) = &q.filter {
            q.filter = Some(expand_stems_filter(f, summary));
        }
        if let Some(r) = &q.ranking {
            q.ranking = Some(expand_stems_ranking(r, summary));
        }
    }
    // Fold across query-part boundaries.
    let parts = metadata.query_parts_supported;
    if !parts.supports_ranking() {
        if let Some(r) = q.ranking.take() {
            let folded = ranking_to_filter(&r);
            q.filter = match (q.filter.take(), folded) {
                (Some(f), Some(extra)) => Some(FilterExpr::and(f, extra)),
                (None, Some(extra)) => Some(extra),
                (f, None) => f,
            };
        }
    }
    if !parts.supports_filter() {
        if let Some(f) = q.filter.take() {
            let folded = filter_to_ranking(&f);
            q.ranking = match (q.ranking.take(), folded) {
                (Some(r), Some(extra)) => Some(RankExpr::List(vec![r, extra])),
                (None, Some(extra)) => Some(extra),
                (r, None) => r,
            };
        }
    }
    q
}

/// Fold a ranking expression into a Boolean filter: the terms become a
/// disjunction (any desired term may match; the client re-ranks later).
fn ranking_to_filter(r: &RankExpr) -> Option<FilterExpr> {
    let terms = r.terms();
    let mut iter = terms.iter().map(|wt| FilterExpr::Term(strip_weight(wt)));
    let first = iter.next()?;
    Some(iter.fold(first, FilterExpr::or))
}

fn strip_weight(wt: &WeightedTerm) -> QTerm {
    wt.term.clone()
}

/// Fold a filter into a ranking expression: conjunctions become fuzzy
/// `and`s so the source's scoring still prefers documents matching more
/// of the original condition.
fn filter_to_ranking(f: &FilterExpr) -> Option<RankExpr> {
    match f {
        FilterExpr::Term(t) => Some(RankExpr::Term(WeightedTerm::plain(t.clone()))),
        FilterExpr::And(a, b) => combine(filter_to_ranking(a), filter_to_ranking(b), |a, b| {
            RankExpr::And(Box::new(a), Box::new(b))
        }),
        FilterExpr::Or(a, b) => combine(filter_to_ranking(a), filter_to_ranking(b), |a, b| {
            RankExpr::Or(Box::new(a), Box::new(b))
        }),
        FilterExpr::AndNot(a, b) => combine(filter_to_ranking(a), filter_to_ranking(b), |a, b| {
            RankExpr::AndNot(Box::new(a), Box::new(b))
        }),
        FilterExpr::Prox(l, spec, r) => Some(RankExpr::Prox(
            WeightedTerm::plain(l.clone()),
            *spec,
            WeightedTerm::plain(r.clone()),
        )),
    }
}

fn combine<T>(a: Option<T>, b: Option<T>, f: impl FnOnce(T, T) -> T) -> Option<T> {
    match (a, b) {
        (Some(a), Some(b)) => Some(f(a, b)),
        (Some(x), None) | (None, Some(x)) => Some(x),
        (None, None) => None,
    }
}

/// Expand `stem` modifiers into disjunctions of surface forms found in
/// the source's own content summary (so the expansion only contains
/// words the source actually indexes).
fn stem_variants(term: &QTerm, summary: &ContentSummary) -> Vec<QTerm> {
    let stem = starts_text::porter_stem(&term.value.text);
    let field = match term.effective_field() {
        starts_proto::Field::Any => None,
        f => Some(f.name().to_string()),
    };
    let mut variants: Vec<String> = Vec::new();
    for section in &summary.sections {
        if let (Some(want), Some(have)) = (&field, &section.field) {
            if !have.eq_ignore_ascii_case(want) {
                continue;
            }
        }
        for t in &section.terms {
            if starts_text::porter_stem(&t.term) == stem && !variants.contains(&t.term) {
                variants.push(t.term.clone());
            }
        }
    }
    if variants.is_empty() {
        variants.push(term.value.text.clone());
    }
    variants
        .into_iter()
        .map(|text| QTerm {
            field: term.field.clone(),
            modifiers: term
                .modifiers
                .iter()
                .filter(|m| !matches!(m, Modifier::Stem))
                .cloned()
                .collect(),
            value: starts_proto::LString {
                lang: term.value.lang.clone(),
                text,
            },
        })
        .collect()
}

fn expand_stems_filter(f: &FilterExpr, summary: &ContentSummary) -> FilterExpr {
    match f {
        FilterExpr::Term(t) if t.modifiers.contains(&Modifier::Stem) => {
            let variants = stem_variants(t, summary);
            let mut iter = variants.into_iter().map(FilterExpr::Term);
            let first = iter.next().expect("at least the original term");
            iter.fold(first, FilterExpr::or)
        }
        FilterExpr::Term(_) => f.clone(),
        FilterExpr::And(a, b) => FilterExpr::and(
            expand_stems_filter(a, summary),
            expand_stems_filter(b, summary),
        ),
        FilterExpr::Or(a, b) => FilterExpr::or(
            expand_stems_filter(a, summary),
            expand_stems_filter(b, summary),
        ),
        FilterExpr::AndNot(a, b) => FilterExpr::and_not(
            expand_stems_filter(a, summary),
            expand_stems_filter(b, summary),
        ),
        // Prox operands must stay terms; keep the first variant.
        FilterExpr::Prox(l, spec, r) => {
            let l2 = stem_variants(l, summary)
                .into_iter()
                .next()
                .expect("nonempty");
            let r2 = stem_variants(r, summary)
                .into_iter()
                .next()
                .expect("nonempty");
            FilterExpr::Prox(l2, *spec, r2)
        }
    }
}

fn expand_stems_ranking(r: &RankExpr, summary: &ContentSummary) -> RankExpr {
    match r {
        RankExpr::Term(wt) if wt.term.modifiers.contains(&Modifier::Stem) => {
            let items: Vec<RankExpr> = stem_variants(&wt.term, summary)
                .into_iter()
                .map(|t| {
                    RankExpr::Term(WeightedTerm {
                        term: t,
                        weight: wt.weight,
                    })
                })
                .collect();
            if items.len() == 1 {
                items.into_iter().next().expect("len checked")
            } else {
                RankExpr::List(items)
            }
        }
        RankExpr::Term(_) => r.clone(),
        RankExpr::List(items) => RankExpr::List(
            items
                .iter()
                .map(|i| expand_stems_ranking(i, summary))
                .collect(),
        ),
        RankExpr::And(a, b) => RankExpr::And(
            Box::new(expand_stems_ranking(a, summary)),
            Box::new(expand_stems_ranking(b, summary)),
        ),
        RankExpr::Or(a, b) => RankExpr::Or(
            Box::new(expand_stems_ranking(a, summary)),
            Box::new(expand_stems_ranking(b, summary)),
        ),
        RankExpr::AndNot(a, b) => RankExpr::AndNot(
            Box::new(expand_stems_ranking(a, summary)),
            Box::new(expand_stems_ranking(b, summary)),
        ),
        RankExpr::Prox(l, spec, rr) => RankExpr::Prox(l.clone(), *spec, rr.clone()),
    }
}

/// The least-common-denominator baseline: keep only the features *every*
/// source supports. Terms with any field or modifier outside the common
/// capability set are dropped; if any source is filter-only or
/// ranking-only, the other query part is dropped for everyone.
pub fn least_common_denominator(query: &Query, all_metadata: &[&SourceMetadata]) -> Query {
    if all_metadata.is_empty() {
        return query.clone();
    }
    let mut q = query.clone();
    if !all_metadata
        .iter()
        .all(|m| m.query_parts_supported.supports_filter())
    {
        q.filter = None;
    }
    if !all_metadata
        .iter()
        .all(|m| m.query_parts_supported.supports_ranking())
    {
        q.ranking = None;
    }
    let term_ok = |t: &QTerm| {
        all_metadata.iter().all(|m| {
            m.supports_field(&t.effective_field())
                && t.modifiers.iter().all(|mo| m.supports_modifier(mo))
        })
    };
    q.filter = q.filter.as_ref().and_then(|f| lcd_filter(f, &term_ok));
    q.ranking = q.ranking.as_ref().and_then(|r| lcd_ranking(r, &term_ok));
    q
}

fn lcd_filter(f: &FilterExpr, ok: &impl Fn(&QTerm) -> bool) -> Option<FilterExpr> {
    match f {
        FilterExpr::Term(t) => ok(t).then(|| f.clone()),
        FilterExpr::And(a, b) => merge2(lcd_filter(a, ok), lcd_filter(b, ok), FilterExpr::and),
        FilterExpr::Or(a, b) => merge2(lcd_filter(a, ok), lcd_filter(b, ok), FilterExpr::or),
        FilterExpr::AndNot(a, b) => match (lcd_filter(a, ok), lcd_filter(b, ok)) {
            (Some(a), Some(b)) => Some(FilterExpr::and_not(a, b)),
            (Some(a), None) => Some(a),
            _ => None,
        },
        FilterExpr::Prox(l, spec, r) => match (ok(l), ok(r)) {
            (true, true) => Some(FilterExpr::Prox(l.clone(), *spec, r.clone())),
            (true, false) => Some(FilterExpr::Term(l.clone())),
            (false, true) => Some(FilterExpr::Term(r.clone())),
            _ => None,
        },
    }
}

fn lcd_ranking(r: &RankExpr, ok: &impl Fn(&QTerm) -> bool) -> Option<RankExpr> {
    let kept: Vec<RankExpr> = r
        .terms()
        .into_iter()
        .filter(|wt| ok(&wt.term))
        .map(|wt| RankExpr::Term(wt.clone()))
        .collect();
    if kept.is_empty() {
        None
    } else {
        Some(RankExpr::List(kept))
    }
}

fn merge2<T>(a: Option<T>, b: Option<T>, f: impl FnOnce(T, T) -> T) -> Option<T> {
    match (a, b) {
        (Some(a), Some(b)) => Some(f(a, b)),
        (Some(x), None) | (None, Some(x)) => Some(x),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starts_proto::metadata::QueryParts;
    use starts_proto::query::{parse_filter, parse_ranking, print_filter, print_ranking};
    use starts_proto::summary::{SummarySection, TermSummary};
    use starts_proto::Field;

    fn meta(parts: QueryParts) -> SourceMetadata {
        SourceMetadata {
            source_id: "S".to_string(),
            query_parts_supported: parts,
            fields_supported: vec![(Field::Author, vec![]), (Field::BodyOfText, vec![])],
            modifiers_supported: vec![(Modifier::Stem, vec![])],
            ..SourceMetadata::default()
        }
    }

    fn empty_summary() -> ContentSummary {
        ContentSummary {
            num_docs: 1,
            ..ContentSummary::default()
        }
    }

    #[test]
    fn boolean_only_source_gets_or_filter() {
        let q = Query {
            filter: Some(parse_filter(r#"(author "Ullman")"#).unwrap()),
            ranking: Some(parse_ranking(r#"list("distributed" "databases")"#).unwrap()),
            ..Query::default()
        };
        let adapted = adapt_query(&q, &meta(QueryParts::Filter), &empty_summary());
        assert!(adapted.ranking.is_none());
        assert_eq!(
            print_filter(adapted.filter.as_ref().unwrap()),
            r#"((author "Ullman") and ("distributed" or "databases"))"#
        );
    }

    #[test]
    fn ranking_only_source_gets_fuzzy_filter_terms() {
        let q = Query {
            filter: Some(parse_filter(r#"((author "Ullman") and ("databases"))"#).unwrap()),
            ranking: None,
            ..Query::default()
        };
        let adapted = adapt_query(&q, &meta(QueryParts::Ranking), &empty_summary());
        assert!(adapted.filter.is_none());
        assert_eq!(
            print_ranking(adapted.ranking.as_ref().unwrap()),
            r#"((author "Ullman") and "databases")"#
        );
    }

    #[test]
    fn stem_expansion_from_summary() {
        let summary = ContentSummary {
            num_docs: 10,
            sections: vec![SummarySection {
                field: Some("body-of-text".to_string()),
                language: None,
                terms: ["database", "databases", "data"]
                    .iter()
                    .map(|t| TermSummary {
                        term: (*t).to_string(),
                        total_postings: Some(1),
                        doc_freq: Some(1),
                    })
                    .collect(),
            }],
            ..ContentSummary::default()
        };
        // A source WITHOUT stem support gets the expansion.
        let mut m = meta(QueryParts::Both);
        m.modifiers_supported.clear();
        let q = Query::filter_only(parse_filter(r#"(body-of-text stem "databases")"#).unwrap());
        let adapted = adapt_query(&q, &m, &summary);
        let printed = print_filter(adapted.filter.as_ref().unwrap());
        assert!(
            printed.contains(r#"(body-of-text "database")"#),
            "{printed}"
        );
        assert!(
            printed.contains(r#"(body-of-text "databases")"#),
            "{printed}"
        );
        assert!(!printed.contains("stem"), "{printed}");
        assert!(!printed.contains(r#""data""#), "different stem: {printed}");
        // A source WITH stem support keeps the modifier untouched.
        let adapted = adapt_query(&q, &meta(QueryParts::Both), &summary);
        assert_eq!(
            print_filter(adapted.filter.as_ref().unwrap()),
            r#"(body-of-text stem "databases")"#
        );
    }

    #[test]
    fn lcd_drops_ranking_if_any_source_lacks_it() {
        let q = Query {
            filter: Some(parse_filter(r#"(author "Ullman")"#).unwrap()),
            ranking: Some(parse_ranking(r#"list("databases")"#).unwrap()),
            ..Query::default()
        };
        let m1 = meta(QueryParts::Both);
        let m2 = meta(QueryParts::Filter);
        let lcd = least_common_denominator(&q, &[&m1, &m2]);
        assert!(lcd.ranking.is_none(), "LCD must drop ranking");
        assert!(lcd.filter.is_some());
    }

    #[test]
    fn lcd_drops_uncommon_fields() {
        let q = Query::filter_only(
            parse_filter(r#"((author "Ullman") and (body-of-text "databases"))"#).unwrap(),
        );
        let m1 = meta(QueryParts::Both);
        let mut m2 = meta(QueryParts::Both);
        m2.fields_supported = vec![(Field::BodyOfText, vec![])]; // no author
        let lcd = least_common_denominator(&q, &[&m1, &m2]);
        assert_eq!(
            print_filter(lcd.filter.as_ref().unwrap()),
            r#"(body-of-text "databases")"#
        );
    }

    #[test]
    fn lcd_with_no_sources_is_identity() {
        let q = Query::filter_only(parse_filter(r#"(title "x")"#).unwrap());
        assert_eq!(least_common_denominator(&q, &[]), q);
    }

    #[test]
    fn adaptation_preserves_full_capability_sources() {
        let q = Query {
            filter: Some(parse_filter(r#"(author "Ullman")"#).unwrap()),
            ranking: Some(parse_ranking(r#"list("databases")"#).unwrap()),
            ..Query::default()
        };
        let adapted = adapt_query(&q, &meta(QueryParts::Both), &empty_summary());
        assert_eq!(adapted, q);
    }
}
