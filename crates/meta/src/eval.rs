//! Evaluation metrics for the experiments: set retrieval quality,
//! ranking quality, and source-selection quality.

use std::collections::HashSet;

/// Precision at k: fraction of the top-k results that are relevant.
pub fn precision_at_k(ranked: &[String], relevant: &HashSet<String>, k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let top = ranked.iter().take(k);
    let hits = top.filter(|d| relevant.contains(*d)).count();
    hits as f64 / k.min(ranked.len()).max(1) as f64
}

/// Recall at k: fraction of the relevant set found in the top k.
pub fn recall_at_k(ranked: &[String], relevant: &HashSet<String>, k: usize) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let hits = ranked
        .iter()
        .take(k)
        .filter(|d| relevant.contains(*d))
        .count();
    hits as f64 / relevant.len() as f64
}

/// Average precision over the full ranking.
pub fn average_precision(ranked: &[String], relevant: &HashSet<String>) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, d) in ranked.iter().enumerate() {
        if relevant.contains(d) {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / relevant.len() as f64
}

/// Kendall rank-correlation tau-a between two rankings of the same item
/// set (items present in both). 1 = identical order, -1 = reversed.
pub fn kendall_tau(a: &[String], b: &[String]) -> f64 {
    // Positions in b for the common items, in a's order.
    let pos_b: std::collections::HashMap<&str, usize> =
        b.iter().enumerate().map(|(i, s)| (s.as_str(), i)).collect();
    let seq: Vec<usize> = a
        .iter()
        .filter_map(|s| pos_b.get(s.as_str()).copied())
        .collect();
    let n = seq.len();
    if n < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            if seq[i] < seq[j] {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let total = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / total
}

/// The GlOSS-style source-selection metric `R_n`: the fraction of all
/// relevant documents held by the n selected sources (refs [7, 8] score
/// selection by how much of the "merit" the chosen sources cover).
pub fn selection_recall(selected: &[usize], relevant_by_source: &[u32]) -> f64 {
    let total: u32 = relevant_by_source.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let covered: u32 = selected
        .iter()
        .filter_map(|&i| relevant_by_source.get(i))
        .sum();
    f64::from(covered) / f64::from(total)
}

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> HashSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    fn rank(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn precision_recall() {
        let ranked = rank(&["a", "b", "c", "d"]);
        let relevant = set(&["a", "c", "e"]);
        assert!((precision_at_k(&ranked, &relevant, 2) - 0.5).abs() < 1e-12);
        assert!((precision_at_k(&ranked, &relevant, 4) - 0.5).abs() < 1e-12);
        assert!((recall_at_k(&ranked, &relevant, 4) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(recall_at_k(&ranked, &set(&[]), 4), 0.0);
        assert_eq!(precision_at_k(&[], &relevant, 0), 0.0);
    }

    #[test]
    fn ap_rewards_early_hits() {
        let relevant = set(&["a", "b"]);
        let early = average_precision(&rank(&["a", "b", "x", "y"]), &relevant);
        let late = average_precision(&rank(&["x", "y", "a", "b"]), &relevant);
        assert!((early - 1.0).abs() < 1e-12);
        assert!(late < early);
        assert!(late > 0.0);
    }

    #[test]
    fn kendall() {
        let a = rank(&["a", "b", "c", "d"]);
        assert!((kendall_tau(&a, &a) - 1.0).abs() < 1e-12);
        let rev = rank(&["d", "c", "b", "a"]);
        assert!((kendall_tau(&a, &rev) + 1.0).abs() < 1e-12);
        // Partial overlap: only common items count.
        let b = rank(&["b", "z", "a"]);
        let tau = kendall_tau(&a, &b);
        assert!((-1.0..=1.0).contains(&tau));
        assert!(tau < 0.0); // a,b swapped
                            // Degenerate.
        assert_eq!(kendall_tau(&a, &rank(&["q"])), 1.0);
    }

    #[test]
    fn selection_recall_counts_covered_merit() {
        let by_source = [5, 0, 3, 2];
        assert!((selection_recall(&[0], &by_source) - 0.5).abs() < 1e-12);
        assert!((selection_recall(&[0, 2], &by_source) - 0.8).abs() < 1e-12);
        assert!((selection_recall(&[0, 1, 2, 3], &by_source) - 1.0).abs() < 1e-12);
        assert_eq!(selection_recall(&[0], &[0, 0]), 0.0);
    }

    #[test]
    fn mean_works() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
