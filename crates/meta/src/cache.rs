//! A TTL'd cache for catalog fetches (§3.4).
//!
//! The paper says metasearchers extract metadata and content summaries
//! "periodically" — not once per query. [`CatalogCache`] makes that
//! refresh window explicit: within one TTL window, each source's
//! metadata and summary hit the wire **once**; every further discovery
//! or refresh is served from memory. A generation stamp lets callers
//! force a refetch (e.g. after a source reported schema changes)
//! without waiting out the TTL.
//!
//! Cache traffic is observable: every lookup increments
//! `catalog.cache.hits` or `catalog.cache.misses` (labelled
//! `kind=metadata` / `kind=summary`) on the client's registry, so the
//! wire savings show up next to the `client.fetch_*` spans they avoid.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use starts_net::client::ClientError;
use starts_net::StartsClient;
use starts_proto::summary::ContentSummary;
use starts_proto::SourceMetadata;

/// One cached object plus the bookkeeping to decide its freshness.
#[derive(Debug, Clone)]
struct CachedItem<T> {
    value: T,
    fetched_at: Instant,
    generation: u64,
}

#[derive(Debug, Default)]
struct CacheState {
    generation: u64,
    metadata: HashMap<String, CachedItem<SourceMetadata>>,
    summaries: HashMap<String, CachedItem<ContentSummary>>,
}

/// A freshness-window cache over `fetch_metadata` / `fetch_summary`.
///
/// Entries are keyed by URL and considered fresh while both hold:
///
/// * their age is below the configured TTL, and
/// * they were fetched in the current *generation* —
///   [`CatalogCache::invalidate`] bumps the generation, instantly
///   staling every entry without touching the clock.
#[derive(Debug)]
pub struct CatalogCache {
    ttl: Duration,
    state: Mutex<CacheState>,
}

impl CatalogCache {
    /// A cache whose entries stay fresh for `ttl`.
    pub fn new(ttl: Duration) -> Self {
        CatalogCache {
            ttl,
            state: Mutex::new(CacheState::default()),
        }
    }

    /// The configured freshness window.
    pub fn ttl(&self) -> Duration {
        self.ttl
    }

    /// Stale every cached entry at once by bumping the generation.
    pub fn invalidate(&self) {
        let mut state = self.state.lock().expect("cache lock");
        state.generation += 1;
    }

    /// Number of cached objects (fresh or stale) across both kinds.
    pub fn len(&self) -> usize {
        let state = self.state.lock().expect("cache lock");
        state.metadata.len() + state.summaries.len()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch a source's metadata through the cache: at most one wire
    /// request per URL per freshness window.
    pub fn fetch_metadata(
        &self,
        client: &StartsClient<'_>,
        url: &str,
    ) -> Result<SourceMetadata, ClientError> {
        if let Some(value) = self.lookup(client, url, "metadata", |s| &s.metadata) {
            return Ok(value);
        }
        let value = client.fetch_metadata(url)?;
        self.store(url, value.clone(), |s| &mut s.metadata);
        Ok(value)
    }

    /// Fetch a source's content summary through the cache: at most one
    /// wire request per URL per freshness window.
    pub fn fetch_summary(
        &self,
        client: &StartsClient<'_>,
        url: &str,
    ) -> Result<ContentSummary, ClientError> {
        if let Some(value) = self.lookup(client, url, "summary", |s| &s.summaries) {
            return Ok(value);
        }
        let value = client.fetch_summary(url)?;
        self.store(url, value.clone(), |s| &mut s.summaries);
        Ok(value)
    }

    /// Shared hit/miss logic: returns the cached value when fresh and
    /// records the outcome on the client's registry either way.
    fn lookup<T: Clone>(
        &self,
        client: &StartsClient<'_>,
        url: &str,
        kind: &str,
        map: impl FnOnce(&CacheState) -> &HashMap<String, CachedItem<T>>,
    ) -> Option<T> {
        let state = self.state.lock().expect("cache lock");
        let fresh = map(&state).get(url).and_then(|item| {
            let alive = item.generation == state.generation && item.fetched_at.elapsed() < self.ttl;
            alive.then(|| item.value.clone())
        });
        drop(state);
        let counter = if fresh.is_some() {
            "catalog.cache.hits"
        } else {
            "catalog.cache.misses"
        };
        client
            .registry()
            .counter_with(counter, &[("kind", kind)])
            .inc();
        fresh
    }

    fn store<T>(
        &self,
        url: &str,
        value: T,
        map: impl FnOnce(&mut CacheState) -> &mut HashMap<String, CachedItem<T>>,
    ) {
        let mut state = self.state.lock().expect("cache lock");
        let generation = state.generation;
        map(&mut state).insert(
            url.to_string(),
            CachedItem {
                value,
                fetched_at: Instant::now(),
                generation,
            },
        );
    }
}

impl Default for CatalogCache {
    /// Five minutes — a "periodic refresh" window far longer than any
    /// simulated query burst, so a burst pays for each source once.
    fn default() -> Self {
        CatalogCache::new(Duration::from_secs(300))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starts_index::Document;
    use starts_net::host::wire_source;
    use starts_net::{LinkProfile, SimNet};
    use starts_source::{Source, SourceConfig};

    fn wired_net() -> SimNet {
        let net = SimNet::new();
        let source = Source::build(
            SourceConfig::new("Solo"),
            &[Document::new()
                .field("body-of-text", "cached words")
                .field("linkage", "http://x/solo")],
        );
        wire_source(&net, source, LinkProfile::default());
        net
    }

    fn cache_counts(net: &SimNet, kind: &str) -> (u64, u64) {
        let snap = net.registry().snapshot();
        (
            snap.counter("catalog.cache.hits", &[("kind", kind)]),
            snap.counter("catalog.cache.misses", &[("kind", kind)]),
        )
    }

    #[test]
    fn second_fetch_is_served_from_memory() {
        let net = wired_net();
        let client = StartsClient::new(&net);
        let cache = CatalogCache::new(Duration::from_secs(60));

        let m1 = cache
            .fetch_metadata(&client, "starts://solo/metadata")
            .unwrap();
        let m2 = cache
            .fetch_metadata(&client, "starts://solo/metadata")
            .unwrap();
        assert_eq!(m1.source_id, m2.source_id);
        assert_eq!(cache_counts(&net, "metadata"), (1, 1));

        let s1 = cache
            .fetch_summary(&client, &m1.content_summary_linkage)
            .unwrap();
        let s2 = cache
            .fetch_summary(&client, &m1.content_summary_linkage)
            .unwrap();
        assert_eq!(s1.num_docs, s2.num_docs);
        assert_eq!(cache_counts(&net, "summary"), (1, 1));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_ttl_never_hits() {
        let net = wired_net();
        let client = StartsClient::new(&net);
        let cache = CatalogCache::new(Duration::ZERO);
        cache
            .fetch_metadata(&client, "starts://solo/metadata")
            .unwrap();
        cache
            .fetch_metadata(&client, "starts://solo/metadata")
            .unwrap();
        assert_eq!(cache_counts(&net, "metadata"), (0, 2));
    }

    #[test]
    fn invalidate_stales_every_entry() {
        let net = wired_net();
        let client = StartsClient::new(&net);
        let cache = CatalogCache::new(Duration::from_secs(60));
        cache
            .fetch_metadata(&client, "starts://solo/metadata")
            .unwrap();
        cache.invalidate();
        cache
            .fetch_metadata(&client, "starts://solo/metadata")
            .unwrap();
        assert_eq!(cache_counts(&net, "metadata"), (0, 2));
        // The refetched entry is fresh in the new generation.
        cache
            .fetch_metadata(&client, "starts://solo/metadata")
            .unwrap();
        assert_eq!(cache_counts(&net, "metadata"), (1, 2));
    }
}
