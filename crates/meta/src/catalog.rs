//! The metasearcher's source catalog (§3.4).
//!
//! "A sophisticated metasearcher will need to … extract the list of
//! sources from the resources periodically … \[and\] extract metadata and
//! content summaries from the sources periodically." The catalog is the
//! result of that periodic crawl: everything the metasearcher knows
//! about each source, refreshed out-of-band from query traffic.

use starts_net::{LinkProfile, StartsClient};
use starts_proto::summary::ContentSummary;
use starts_proto::{Query, QueryResults, SourceMetadata};

/// Everything known about one source.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// The source id.
    pub id: String,
    /// Its exported metadata (§4.3.1).
    pub metadata: SourceMetadata,
    /// Its exported content summary (§4.3.2).
    pub summary: ContentSummary,
    /// Its sample-database results, if fetched (§4.2).
    pub sample_results: Vec<(Query, QueryResults)>,
    /// The link profile the metasearcher has observed/configured for the
    /// source (latency, per-query fee) — §3.3's selection inputs.
    pub link: LinkProfile,
}

impl CatalogEntry {
    /// The URL to submit queries to.
    pub fn query_url(&self) -> &str {
        &self.metadata.linkage
    }
}

/// The catalog: an ordered list of known sources.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    /// The entries, in discovery order.
    pub entries: Vec<CatalogEntry>,
}

impl Catalog {
    /// Number of known sources.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Find an entry by source id.
    pub fn entry(&self, id: &str) -> Option<&CatalogEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Discover sources from a resource URL: fetch the `@SResource`
    /// listing, then each member's metadata and content summary
    /// (the §3.4 "periodically" tasks, run once).
    pub fn discover_resource(
        &mut self,
        client: &StartsClient<'_>,
        resource_url: &str,
        link: LinkProfile,
        fetch_samples: bool,
    ) -> Result<usize, starts_net::client::ClientError> {
        let resource = client.fetch_resource(resource_url)?;
        let mut added = 0;
        for (id, metadata_url) in &resource.sources {
            if self.entry(id).is_some() {
                continue;
            }
            let metadata = client.fetch_metadata(metadata_url)?;
            let summary = client.fetch_summary(&metadata.content_summary_linkage)?;
            let sample_results = if fetch_samples {
                client.fetch_sample_results(&metadata.sample_database_results)?
            } else {
                Vec::new()
            };
            self.entries.push(CatalogEntry {
                id: id.clone(),
                metadata,
                summary,
                sample_results,
                link,
            });
            added += 1;
        }
        Ok(added)
    }

    /// Discover one stand-alone source from its metadata URL.
    pub fn discover_source(
        &mut self,
        client: &StartsClient<'_>,
        metadata_url: &str,
        link: LinkProfile,
        fetch_samples: bool,
    ) -> Result<(), starts_net::client::ClientError> {
        let metadata = client.fetch_metadata(metadata_url)?;
        if self.entry(&metadata.source_id).is_some() {
            return Ok(());
        }
        let summary = client.fetch_summary(&metadata.content_summary_linkage)?;
        let sample_results = if fetch_samples {
            client.fetch_sample_results(&metadata.sample_database_results)?
        } else {
            Vec::new()
        };
        self.entries.push(CatalogEntry {
            id: metadata.source_id.clone(),
            metadata,
            summary,
            sample_results,
            link,
        });
        Ok(())
    }

    /// Total documents across all catalogued sources (from summaries).
    pub fn total_docs(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| u64::from(e.summary.num_docs))
            .sum()
    }

    /// Global document frequency of a term: the sum of per-source df
    /// from the summaries — the "single, large document source" view
    /// §4.2 suggests for merging.
    pub fn global_df(&self, field: Option<&str>, term: &str) -> u64 {
        self.entries
            .iter()
            .map(|e| u64::from(e.summary.df(field, term)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starts_index::Document;
    use starts_net::host::{wire_resource, wire_source};
    use starts_net::SimNet;
    use starts_source::{ResourceHost, Source, SourceConfig};

    fn net_with_everything() -> SimNet {
        let net = SimNet::new();
        let standalone = Source::build(
            SourceConfig::new("Solo"),
            &[Document::new()
                .field("body-of-text", "unique solo words")
                .field("linkage", "http://x/solo")],
        );
        wire_source(&net, standalone, LinkProfile::default());
        let m1 = Source::build(
            SourceConfig::new("M1"),
            &[Document::new()
                .field("body-of-text", "member one databases")
                .field("linkage", "http://x/m1")],
        );
        let m2 = Source::build(
            SourceConfig::new("M2"),
            &[Document::new()
                .field("body-of-text", "member two databases")
                .field("linkage", "http://x/m2")],
        );
        wire_resource(
            &net,
            ResourceHost::new(vec![m1, m2]),
            "starts://dialog",
            LinkProfile::default(),
        );
        net
    }

    #[test]
    fn discovery_builds_catalog() {
        let net = net_with_everything();
        let client = StartsClient::new(&net);
        let mut catalog = Catalog::default();
        let added = catalog
            .discover_resource(&client, "starts://dialog", LinkProfile::default(), true)
            .unwrap();
        assert_eq!(added, 2);
        catalog
            .discover_source(
                &client,
                "starts://solo/metadata",
                LinkProfile::default(),
                false,
            )
            .unwrap();
        assert_eq!(catalog.len(), 3);
        let m1 = catalog.entry("M1").unwrap();
        assert_eq!(m1.summary.num_docs, 1);
        assert!(!m1.sample_results.is_empty());
        let solo = catalog.entry("Solo").unwrap();
        assert!(solo.sample_results.is_empty());
        assert_eq!(solo.query_url(), "starts://solo/query");
    }

    #[test]
    fn rediscovery_is_idempotent() {
        let net = net_with_everything();
        let client = StartsClient::new(&net);
        let mut catalog = Catalog::default();
        catalog
            .discover_resource(&client, "starts://dialog", LinkProfile::default(), false)
            .unwrap();
        let added = catalog
            .discover_resource(&client, "starts://dialog", LinkProfile::default(), false)
            .unwrap();
        assert_eq!(added, 0);
        assert_eq!(catalog.len(), 2);
    }

    #[test]
    fn global_statistics() {
        let net = net_with_everything();
        let client = StartsClient::new(&net);
        let mut catalog = Catalog::default();
        catalog
            .discover_resource(&client, "starts://dialog", LinkProfile::default(), false)
            .unwrap();
        assert_eq!(catalog.total_docs(), 2);
        // "databases" occurs in both members' bodies.
        assert_eq!(catalog.global_df(Some("body-of-text"), "databases"), 2);
        assert_eq!(catalog.global_df(Some("body-of-text"), "unique"), 0);
    }
}
