//! The metasearcher's source catalog (§3.4).
//!
//! "A sophisticated metasearcher will need to … extract the list of
//! sources from the resources periodically … \[and\] extract metadata and
//! content summaries from the sources periodically." The catalog is the
//! result of that periodic crawl: everything the metasearcher knows
//! about each source, refreshed out-of-band from query traffic.

use starts_net::{LinkProfile, StartsClient};
use starts_proto::summary::ContentSummary;
use starts_proto::{Query, QueryResults, SourceMetadata};

use crate::cache::CatalogCache;

/// Everything known about one source.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// The source id.
    pub id: String,
    /// The metadata URL this entry was discovered from — what a
    /// periodic [`Catalog::refresh`] refetches.
    pub metadata_url: String,
    /// Its exported metadata (§4.3.1).
    pub metadata: SourceMetadata,
    /// Its exported content summary (§4.3.2).
    pub summary: ContentSummary,
    /// Its sample-database results, if fetched (§4.2).
    pub sample_results: Vec<(Query, QueryResults)>,
    /// The link profile the metasearcher has observed/configured for the
    /// source (latency, per-query fee) — §3.3's selection inputs.
    pub link: LinkProfile,
}

impl CatalogEntry {
    /// The URL to submit queries to.
    pub fn query_url(&self) -> &str {
        &self.metadata.linkage
    }
}

/// The catalog: an ordered list of known sources.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    /// The entries, in discovery order.
    pub entries: Vec<CatalogEntry>,
}

impl Catalog {
    /// Number of known sources.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Find an entry by source id.
    pub fn entry(&self, id: &str) -> Option<&CatalogEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Discover sources from a resource URL: fetch the `@SResource`
    /// listing, then each member's metadata and content summary
    /// (the §3.4 "periodically" tasks, run once).
    pub fn discover_resource(
        &mut self,
        client: &StartsClient<'_>,
        resource_url: &str,
        link: LinkProfile,
        fetch_samples: bool,
    ) -> Result<usize, starts_net::client::ClientError> {
        self.discover_resource_via(client, None, resource_url, link, fetch_samples)
    }

    /// [`Catalog::discover_resource`], but with every metadata and
    /// summary fetch routed through a [`CatalogCache`] — repeated
    /// discovery within the cache's TTL touches the wire only for the
    /// resource listing itself.
    pub fn discover_resource_cached(
        &mut self,
        client: &StartsClient<'_>,
        cache: &CatalogCache,
        resource_url: &str,
        link: LinkProfile,
        fetch_samples: bool,
    ) -> Result<usize, starts_net::client::ClientError> {
        self.discover_resource_via(client, Some(cache), resource_url, link, fetch_samples)
    }

    fn discover_resource_via(
        &mut self,
        client: &StartsClient<'_>,
        cache: Option<&CatalogCache>,
        resource_url: &str,
        link: LinkProfile,
        fetch_samples: bool,
    ) -> Result<usize, starts_net::client::ClientError> {
        let resource = client.fetch_resource(resource_url)?;
        let mut added = 0;
        for (id, metadata_url) in &resource.sources {
            if self.entry(id).is_some() {
                continue;
            }
            let (metadata, summary) = fetch_pair(client, cache, metadata_url)?;
            let sample_results = if fetch_samples {
                client.fetch_sample_results(&metadata.sample_database_results)?
            } else {
                Vec::new()
            };
            self.entries.push(CatalogEntry {
                id: id.clone(),
                metadata_url: metadata_url.clone(),
                metadata,
                summary,
                sample_results,
                link,
            });
            added += 1;
        }
        Ok(added)
    }

    /// Discover one stand-alone source from its metadata URL.
    pub fn discover_source(
        &mut self,
        client: &StartsClient<'_>,
        metadata_url: &str,
        link: LinkProfile,
        fetch_samples: bool,
    ) -> Result<(), starts_net::client::ClientError> {
        self.discover_source_via(client, None, metadata_url, link, fetch_samples)
    }

    /// [`Catalog::discover_source`], but routed through a
    /// [`CatalogCache`].
    pub fn discover_source_cached(
        &mut self,
        client: &StartsClient<'_>,
        cache: &CatalogCache,
        metadata_url: &str,
        link: LinkProfile,
        fetch_samples: bool,
    ) -> Result<(), starts_net::client::ClientError> {
        self.discover_source_via(client, Some(cache), metadata_url, link, fetch_samples)
    }

    fn discover_source_via(
        &mut self,
        client: &StartsClient<'_>,
        cache: Option<&CatalogCache>,
        metadata_url: &str,
        link: LinkProfile,
        fetch_samples: bool,
    ) -> Result<(), starts_net::client::ClientError> {
        let (metadata, summary) = fetch_pair(client, cache, metadata_url)?;
        if self.entry(&metadata.source_id).is_some() {
            return Ok(());
        }
        let sample_results = if fetch_samples {
            client.fetch_sample_results(&metadata.sample_database_results)?
        } else {
            Vec::new()
        };
        self.entries.push(CatalogEntry {
            id: metadata.source_id.clone(),
            metadata_url: metadata_url.to_string(),
            metadata,
            summary,
            sample_results,
            link,
        });
        Ok(())
    }

    /// The periodic §3.4 refresh: refetch every entry's metadata and
    /// content summary through the cache. Within one TTL window this is
    /// free (all hits); after [`CatalogCache::invalidate`] or TTL
    /// expiry it touches the wire once per source. Returns how many
    /// entries were walked.
    pub fn refresh(
        &mut self,
        client: &StartsClient<'_>,
        cache: &CatalogCache,
    ) -> Result<usize, starts_net::client::ClientError> {
        for entry in &mut self.entries {
            let (metadata, summary) = fetch_pair(client, Some(cache), &entry.metadata_url)?;
            entry.metadata = metadata;
            entry.summary = summary;
        }
        Ok(self.entries.len())
    }

    /// Total documents across all catalogued sources (from summaries).
    pub fn total_docs(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| u64::from(e.summary.num_docs))
            .sum()
    }

    /// Global document frequency of a term: the sum of per-source df
    /// from the summaries — the "single, large document source" view
    /// §4.2 suggests for merging.
    pub fn global_df(&self, field: Option<&str>, term: &str) -> u64 {
        self.entries
            .iter()
            .map(|e| u64::from(e.summary.df(field, term)))
            .sum()
    }
}

/// One source's (metadata, summary) pair, through the cache if given.
fn fetch_pair(
    client: &StartsClient<'_>,
    cache: Option<&CatalogCache>,
    metadata_url: &str,
) -> Result<(SourceMetadata, ContentSummary), starts_net::client::ClientError> {
    match cache {
        Some(cache) => {
            let metadata = cache.fetch_metadata(client, metadata_url)?;
            let summary = cache.fetch_summary(client, &metadata.content_summary_linkage)?;
            Ok((metadata, summary))
        }
        None => {
            let metadata = client.fetch_metadata(metadata_url)?;
            let summary = client.fetch_summary(&metadata.content_summary_linkage)?;
            Ok((metadata, summary))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starts_index::Document;
    use starts_net::host::{wire_resource, wire_source};
    use starts_net::SimNet;
    use starts_source::{ResourceHost, Source, SourceConfig};

    fn net_with_everything() -> SimNet {
        let net = SimNet::new();
        let standalone = Source::build(
            SourceConfig::new("Solo"),
            &[Document::new()
                .field("body-of-text", "unique solo words")
                .field("linkage", "http://x/solo")],
        );
        wire_source(&net, standalone, LinkProfile::default());
        let m1 = Source::build(
            SourceConfig::new("M1"),
            &[Document::new()
                .field("body-of-text", "member one databases")
                .field("linkage", "http://x/m1")],
        );
        let m2 = Source::build(
            SourceConfig::new("M2"),
            &[Document::new()
                .field("body-of-text", "member two databases")
                .field("linkage", "http://x/m2")],
        );
        wire_resource(
            &net,
            ResourceHost::new(vec![m1, m2]),
            "starts://dialog",
            LinkProfile::default(),
        );
        net
    }

    #[test]
    fn discovery_builds_catalog() {
        let net = net_with_everything();
        let client = StartsClient::new(&net);
        let mut catalog = Catalog::default();
        let added = catalog
            .discover_resource(&client, "starts://dialog", LinkProfile::default(), true)
            .unwrap();
        assert_eq!(added, 2);
        catalog
            .discover_source(
                &client,
                "starts://solo/metadata",
                LinkProfile::default(),
                false,
            )
            .unwrap();
        assert_eq!(catalog.len(), 3);
        let m1 = catalog.entry("M1").unwrap();
        assert_eq!(m1.summary.num_docs, 1);
        assert!(!m1.sample_results.is_empty());
        let solo = catalog.entry("Solo").unwrap();
        assert!(solo.sample_results.is_empty());
        assert_eq!(solo.query_url(), "starts://solo/query");
    }

    #[test]
    fn rediscovery_is_idempotent() {
        let net = net_with_everything();
        let client = StartsClient::new(&net);
        let mut catalog = Catalog::default();
        catalog
            .discover_resource(&client, "starts://dialog", LinkProfile::default(), false)
            .unwrap();
        let added = catalog
            .discover_resource(&client, "starts://dialog", LinkProfile::default(), false)
            .unwrap();
        assert_eq!(added, 0);
        assert_eq!(catalog.len(), 2);
    }

    #[test]
    fn cached_discovery_and_refresh_hit_the_wire_once() {
        let net = net_with_everything();
        let client = StartsClient::new(&net);
        let cache = CatalogCache::new(std::time::Duration::from_secs(60));
        let mut catalog = Catalog::default();
        catalog
            .discover_resource_cached(
                &client,
                &cache,
                "starts://dialog",
                LinkProfile::default(),
                false,
            )
            .unwrap();
        catalog
            .discover_source_cached(
                &client,
                &cache,
                "starts://solo/metadata",
                LinkProfile::default(),
                false,
            )
            .unwrap();
        assert_eq!(catalog.len(), 3);
        // The refresh walks all three entries but every fetch is a hit.
        let walked = catalog.refresh(&client, &cache).unwrap();
        assert_eq!(walked, 3);
        let snap = net.registry().snapshot();
        assert_eq!(
            snap.counter("catalog.cache.misses", &[("kind", "metadata")]),
            3
        );
        assert_eq!(
            snap.counter("catalog.cache.hits", &[("kind", "metadata")]),
            3
        );
        assert_eq!(
            snap.counter("catalog.cache.misses", &[("kind", "summary")]),
            3
        );
        assert_eq!(
            snap.counter("catalog.cache.hits", &[("kind", "summary")]),
            3
        );
        // After invalidation the refresh pays the wire cost again.
        cache.invalidate();
        catalog.refresh(&client, &cache).unwrap();
        let snap = net.registry().snapshot();
        assert_eq!(
            snap.counter("catalog.cache.misses", &[("kind", "metadata")]),
            6
        );
    }

    #[test]
    fn global_statistics() {
        let net = net_with_everything();
        let client = StartsClient::new(&net);
        let mut catalog = Catalog::default();
        catalog
            .discover_resource(&client, "starts://dialog", LinkProfile::default(), false)
            .unwrap();
        assert_eq!(catalog.total_docs(), 2);
        // "databases" occurs in both members' bodies.
        assert_eq!(catalog.global_df(Some("body-of-text"), "databases"), 2);
        assert_eq!(catalog.global_df(Some("body-of-text"), "unique"), 0);
    }
}
