//! The metasearch pipeline, decomposed into reusable stages.
//!
//! [`Metasearcher::search`](crate::Metasearcher::search) used to be one
//! monolithic function: select → adapt → per-source dispatch → merge.
//! The concurrent serving layer (`starts-serve`) needs the same stages
//! but under a different execution regime — a shared worker pool instead
//! of scoped per-query threads, hedged dispatch, deadlines that abandon
//! stragglers. This module is the common ground both execute on:
//!
//! * [`plan`] — selection + adaptation, producing fully *owned*
//!   [`DispatchTask`]s that any thread (scoped or pooled, outliving the
//!   query or not) can run;
//! * [`run_task`] — the per-source dispatch body: trace-context
//!   propagation, the wire exchange (cancellable), health recording,
//!   and the per-worker [`StageCost`] with the host's `XQueryProfile`
//!   grafted in;
//! * [`merge_stage`] — the bounded merge with its dedup accounting.
//!
//! The stages share one explicit clock (`t0`): every [`StageCost`]
//! offset is relative to it, so a profile assembled from stage pieces
//! keeps the containment invariant `QueryProfile::is_consistent` checks.

use std::time::Instant;

use starts_net::{CancelToken, Exchange, StartsClient};
use starts_obs::{HealthBoard, Registry, SourceOutcome, SpanHandle};
use starts_proto::{Query, SourceMetadata, StageCost, TraceContext};

use crate::adapt::{adapt_query, least_common_denominator};
use crate::catalog::Catalog;
use crate::merge::{MergeStats, MergedDoc, Merger, SourceResult};
use crate::metasearcher::{AdaptMode, MetaConfig};

/// Everything one per-source dispatch needs, fully owned: the serving
/// layer hands these to pool workers that may outlive the query that
/// planned them (a deadline-abandoned straggler keeps running until its
/// cancellation token is honoured).
#[derive(Debug, Clone)]
pub struct DispatchTask {
    /// Index of the source in the planning catalog (slot order).
    pub entry_index: usize,
    /// The source id.
    pub id: String,
    /// The query URL to dispatch to.
    pub url: String,
    /// The source's metadata (carried into the [`SourceResult`]).
    pub metadata: SourceMetadata,
    /// Selection belief normalized into `[0, 1]` (consumed by
    /// weighted merging).
    pub weight: f64,
    /// The adapted query for this source.
    pub query: Query,
}

/// The outcome of [`plan`]: which sources to contact, with what
/// queries, plus the quoted accounting and the select/adapt stage
/// costs for the query profile.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Ids of the selected sources, in selection order.
    pub selected: Vec<String>,
    /// One owned dispatch task per selected source, in selection order.
    pub tasks: Vec<DispatchTask>,
    /// Quoted wall-clock latency of the parallel fan-out: the max
    /// selected link latency (from the catalog's link profiles).
    pub wave_latency_ms: u32,
    /// Quoted total monetary cost of the wave.
    pub total_cost: f64,
    /// The `select` stage cost (offsets relative to the plan's `t0`).
    pub select_stage: StageCost,
    /// The `adapt` stage cost.
    pub adapt_stage: StageCost,
}

/// Why a dispatch task produced no result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskError {
    /// The task's cancellation token tripped mid-flight (a hedge won,
    /// or the query's deadline expired). Not counted against the
    /// source's health.
    Cancelled,
    /// The exchange failed (transport or protocol error). Recorded as a
    /// health failure and a `meta.dispatch.failures` count.
    Failed,
}

/// One successful per-source dispatch.
#[derive(Debug, Clone)]
pub struct TaskSuccess {
    /// The source's contribution to the merge.
    pub result: SourceResult,
    /// The exchange accounting (latency, cost, bytes).
    pub exchange: Exchange,
    /// The per-worker `source` stage, with the host's own profile
    /// grafted under it.
    pub stage: StageCost,
}

/// Stage 1+2: select sources and adapt the query per source.
///
/// Runs on the calling thread (selection and adaptation never touch the
/// wire), opening `select` and `adapt` spans that nest under whatever
/// span the caller holds open. Consumes only the strategy fields of
/// [`MetaConfig`] (`selector`, `adapt`, `max_sources`).
pub fn plan(
    catalog: &Catalog,
    config: &MetaConfig,
    query: &Query,
    obs: &Registry,
    t0: Instant,
) -> QueryPlan {
    let elapsed_us = |t0: Instant| t0.elapsed().as_micros() as u64;

    // 1. Select sources.
    let select_start = elapsed_us(t0);
    let chosen: Vec<(usize, f64)> = {
        let _span = obs.span("select");
        let owned_terms = crate::Metasearcher::selection_terms(query);
        let terms: Vec<(Option<&str>, &str)> = owned_terms
            .iter()
            .map(|(f, t)| (f.as_deref(), t.as_str()))
            .collect();
        config
            .selector
            .rank(catalog, &terms)
            .into_iter()
            .take(config.max_sources.max(1))
            .collect()
    };
    let select_end = elapsed_us(t0);
    let selected: Vec<String> = chosen
        .iter()
        .map(|(i, _)| catalog.entries[*i].id.clone())
        .collect();

    // 2. Adapt queries.
    let adapt_start = elapsed_us(t0);
    let max_belief = chosen
        .iter()
        .map(|(_, s)| *s)
        .fold(f64::MIN, f64::max)
        .max(1e-12);
    let tasks: Vec<DispatchTask> = {
        let _span = obs.span("adapt");
        let lcd_query = if config.adapt == AdaptMode::Lcd {
            let metas: Vec<&SourceMetadata> = chosen
                .iter()
                .map(|(i, _)| &catalog.entries[*i].metadata)
                .collect();
            Some(least_common_denominator(query, &metas))
        } else {
            None
        };
        chosen
            .iter()
            .map(|&(i, score)| {
                let entry = &catalog.entries[i];
                let q = match config.adapt {
                    AdaptMode::Verbatim => query.clone(),
                    AdaptMode::PerSource => adapt_query(query, &entry.metadata, &entry.summary),
                    AdaptMode::Lcd => lcd_query.clone().expect("computed above"),
                };
                DispatchTask {
                    entry_index: i,
                    id: entry.id.clone(),
                    url: entry.query_url().to_string(),
                    metadata: entry.metadata.clone(),
                    weight: (score / max_belief).clamp(0.0, 1.0),
                    query: q,
                }
            })
            .collect()
    };
    let adapt_end = elapsed_us(t0);

    // Quoted accounting: the wave runs concurrently, so the
    // user-visible latency is the slowest selected link; costs add up.
    let wave_latency_ms = chosen
        .iter()
        .map(|(i, _)| catalog.entries[*i].link.latency_ms)
        .max()
        .unwrap_or(0);
    let total_cost: f64 = chosen
        .iter()
        .map(|(i, _)| catalog.entries[*i].link.cost_per_query)
        .sum();

    QueryPlan {
        selected,
        tasks,
        wave_latency_ms,
        total_cost,
        select_stage: StageCost::new(
            "select",
            select_start,
            select_end.saturating_sub(select_start),
        )
        .with_meta("chosen", chosen.len()),
        adapt_stage: StageCost::new("adapt", adapt_start, adapt_end.saturating_sub(adapt_start)),
    }
}

/// Stage 3, per source: one dispatch exchange, runnable on any thread.
///
/// Opens a `source` span under `parent` (the dispatch span's handle),
/// threads the trace context over the wire, records the outcome on the
/// health board, and builds the per-worker [`StageCost`] with the
/// host's `XQueryProfile` grafted in — exactly what the scoped worker
/// in `Metasearcher::search` always did, now callable from a shared
/// pool with an optional [`CancelToken`].
#[allow(clippy::too_many_arguments)]
pub fn run_task(
    client: &StartsClient<'_>,
    task: &DispatchTask,
    health: &HealthBoard,
    timeout_ms: u64,
    parent: &SpanHandle,
    query_id: &str,
    t0: Instant,
    cancel: Option<&CancelToken>,
) -> Result<TaskSuccess, TaskError> {
    let obs = client.registry();
    let elapsed_us = |t0: Instant| t0.elapsed().as_micros() as u64;
    let span = obs.span_under(
        "source",
        parent,
        vec![("source", task.id.clone()), ("trace", query_id.to_string())],
    );
    // Thread the trace context through the wire (§4.3 extension
    // attribute): the source's spans parent under this worker span, and
    // the context echoes back on the results.
    let mut q = task.query.clone();
    q.trace = Some(TraceContext {
        query_id: query_id.to_string(),
        parent_path: span.path().to_string(),
        parent_span_id: span.id(),
    });
    let w_start = elapsed_us(t0);
    match client.query_cancellable(&task.url, &q, cancel) {
        Ok((results, exchange)) => {
            let w_end = elapsed_us(t0);
            let latency = u64::from(exchange.latency_ms);
            obs.histogram_with("meta.source_latency_ms", &[("source", &task.id)])
                .observe(latency);
            health.record(
                &task.id,
                if latency >= timeout_ms {
                    SourceOutcome::timed_out(latency, true)
                } else {
                    SourceOutcome::ok(latency)
                },
            );
            // Per-worker stage for the profile. The host's own
            // XQueryProfile (if it sent one) nests under it, rebased
            // from the host's clock onto ours: the exchange ran inline
            // inside this window, so the shifted subtree stays
            // contained.
            let mut stage = StageCost::new("source", w_start, w_end.saturating_sub(w_start))
                .with_meta("source", &task.id)
                .with_meta("latency_ms", exchange.latency_ms)
                .with_meta("cost", exchange.cost);
            if let Some(host) = results.profile.clone() {
                let mut root = host.root;
                root.shift(w_start);
                stage.children.push(root);
            }
            Ok(TaskSuccess {
                result: SourceResult {
                    metadata: task.metadata.clone(),
                    results,
                    source_weight: task.weight,
                },
                exchange,
                stage,
            })
        }
        Err(e) if e.is_cancelled() => {
            // A lost hedge race or an expired deadline: the source did
            // nothing wrong, so its health is untouched.
            obs.counter_with("meta.dispatch.cancelled", &[("source", &task.id)])
                .inc();
            Err(TaskError::Cancelled)
        }
        Err(_) => {
            health.record(&task.id, SourceOutcome::failed());
            obs.counter_with("meta.dispatch.failures", &[("source", &task.id)])
                .inc();
            Err(TaskError::Failed)
        }
    }
}

/// Record a dispatch that never produced an outcome because its worker
/// panicked: the source counts as failed (health + failure counter +
/// a dedicated panic counter), and the query carries on with the
/// sources that answered.
pub fn record_panicked_dispatch(obs: &Registry, health: &HealthBoard, source: &str) {
    health.record(source, SourceOutcome::failed());
    let labels = [("source", source)];
    obs.counter_with("meta.dispatch.failures", &labels).inc();
    obs.counter_with("meta.dispatch.panics", &labels).inc();
}

/// Stage 4: the bounded merge, with its dedup accounting recorded on
/// the registry and returned as a `merge` [`StageCost`].
pub fn merge_stage(
    merger: &dyn Merger,
    per_source: &[SourceResult],
    max_results: usize,
    obs: &Registry,
    t0: Instant,
) -> (Vec<MergedDoc>, MergeStats, StageCost) {
    let elapsed_us = |t0: Instant| t0.elapsed().as_micros() as u64;
    let merge_start = elapsed_us(t0);
    let (merged, mstats) = {
        let _span = obs.span("merge");
        merger.merge_top_k(per_source, max_results)
    };
    let merge_end = elapsed_us(t0);
    // Cross-source duplicates collapse during the merge: the difference
    // between candidates in and distinct documents out.
    obs.counter("meta.merge.candidates")
        .add(mstats.candidates as u64);
    obs.counter("meta.merge.duplicates")
        .add(mstats.duplicates() as u64);
    let stage = StageCost::new("merge", merge_start, merge_end.saturating_sub(merge_start))
        .with_meta("candidates", mstats.candidates)
        .with_meta("duplicates", mstats.duplicates());
    (merged, mstats, stage)
}

/// The canonical singleflight/cache key material for a query: its SOIF
/// encoding with the per-dispatch trace context stripped. Two queries
/// with the same key are wire-identical to every source.
pub fn normalized_query_key(query: &Query) -> String {
    let mut q = query.clone();
    q.trace = None;
    let mut buf = Vec::new();
    starts_soif::write_object_into(&q.to_soif(), &mut buf);
    String::from_utf8_lossy(&buf).into_owned()
}
