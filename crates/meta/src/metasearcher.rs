//! The end-to-end metasearcher: select → adapt → dispatch (parallel) →
//! merge, with latency and cost accounting.
//!
//! This is the component the paper's §1 describes and §3.4 specifies:
//! it gives "users the illusion of a single combined document source"
//! over heterogeneous STARTS sources.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use starts_net::{Exchange, SimNet, StartsClient};
use starts_obs::{FlightRecorder, HealthBoard, TraceTree};
use starts_proto::{Field, QTerm, Query, QueryProfile, StageCost};

use crate::catalog::Catalog;
use crate::merge::{MergedDoc, Merger, SourceResult};
use crate::pipeline;
use crate::select::Selector;

/// How queries are adjusted before dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdaptMode {
    /// Send the query verbatim; sources rewrite per the protocol.
    Verbatim,
    /// Adapt per source capability (fold query parts, expand stems).
    #[default]
    PerSource,
    /// Strip to the least common denominator of all selected sources —
    /// the baseline §5 attributes to early metasearchers.
    Lcd,
}

/// Metasearcher configuration.
pub struct MetaConfig {
    /// Source-selection strategy.
    pub selector: Box<dyn Selector>,
    /// Rank-merging strategy.
    pub merger: Box<dyn Merger>,
    /// How many sources to contact per query.
    pub max_sources: usize,
    /// Query adjustment mode.
    pub adapt: AdaptMode,
    /// Final result-list cap.
    pub max_results: usize,
    /// Rolling per-source health, updated on every exchange. Shared
    /// (`Arc`) so a `HealthAware` selector can consult the same board
    /// the dispatcher feeds.
    pub health: Arc<HealthBoard>,
    /// Latency budget per exchange: a source whose simulated round-trip
    /// reaches this counts as timed out on the health board.
    pub timeout_ms: u64,
    /// The always-on flight recorder: every search's [`QueryProfile`]
    /// lands here, and slow queries (rolling p99 or absolute budget) are
    /// captured for the slow-log. Shared (`Arc`) so callers can drain it
    /// while the metasearcher keeps recording.
    pub recorder: Arc<FlightRecorder>,
    /// Absolute slow-query budget in microseconds: a search whose total
    /// duration exceeds this is captured in the recorder's slow-log
    /// regardless of the rolling p99. `None` (the default) keeps the
    /// recorder's own default (p99-relative only). Applied to
    /// [`MetaConfig::recorder`] when the metasearcher is built.
    pub slow_budget_us: Option<u64>,
}

impl Default for MetaConfig {
    fn default() -> Self {
        MetaConfig {
            selector: Box::new(crate::select::GGlossSum),
            merger: Box::new(crate::merge::NormalizedMerge),
            max_sources: 3,
            adapt: AdaptMode::PerSource,
            max_results: 20,
            health: Arc::new(HealthBoard::default()),
            timeout_ms: 30_000,
            recorder: Arc::new(FlightRecorder::default()),
            slow_budget_us: None,
        }
    }
}

// Box<dyn Selector> / Box<dyn Merger> block `#[derive(Debug)]`; print
// the strategies by their registered names instead.
impl fmt::Debug for MetaConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetaConfig")
            .field("selector", &self.selector.name())
            .field("merger", &self.merger.name())
            .field("max_sources", &self.max_sources)
            .field("adapt", &self.adapt)
            .field("max_results", &self.max_results)
            .field("timeout_ms", &self.timeout_ms)
            .field("slow_budget_us", &self.slow_budget_us)
            .finish_non_exhaustive()
    }
}

/// Aggregate accounting for one metasearch, from the actual exchanges
/// (unlike `wave_latency_ms`/`total_cost`, which are quoted from the
/// catalog's link profiles, these reflect what really happened —
/// failed dispatches charge nothing).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    /// Query requests that completed.
    pub requests: u64,
    /// Sum of per-source simulated latencies (the serialized view).
    pub total_latency_ms: u64,
    /// Max per-source simulated latency (the parallel wall-clock view).
    pub max_latency_ms: u32,
    /// Total monetary cost charged.
    pub total_cost: f64,
    /// Request bytes sent to sources.
    pub bytes_sent: u64,
    /// Response bytes received from sources.
    pub bytes_received: u64,
}

impl QueryStats {
    /// Fold one exchange's accounting into the totals. Public so the
    /// serving layer (`starts-serve`) can account its pooled dispatches
    /// the same way the scoped metasearcher does.
    pub fn absorb(&mut self, e: &Exchange) {
        self.requests += 1;
        self.total_latency_ms += u64::from(e.latency_ms);
        self.max_latency_ms = self.max_latency_ms.max(e.latency_ms);
        self.total_cost += e.cost;
        self.bytes_sent += e.bytes_sent;
        self.bytes_received += e.bytes_received;
    }
}

/// The outcome of one metasearch.
#[derive(Debug)]
pub struct MetaResponse {
    /// The merged rank.
    pub merged: Vec<MergedDoc>,
    /// Ids of the sources contacted, in selection order.
    pub selected: Vec<String>,
    /// Raw per-source results (for analysis).
    pub per_source: Vec<SourceResult>,
    /// Simulated wall-clock latency of the parallel fan-out: the *max*
    /// per-source latency (queries run concurrently).
    pub wave_latency_ms: u32,
    /// Total monetary cost of the wave.
    pub total_cost: f64,
    /// Aggregate accounting from the exchanges that actually happened.
    pub stats: QueryStats,
    /// The trace id minted for this search; feed it to
    /// [`Metasearcher::trace_tree`] to stitch the per-query trace.
    pub query_id: String,
    /// The hierarchical cost breakdown of this search: client-side
    /// select/adapt/dispatch/merge stages, one `source` stage per
    /// completed exchange, and each host's `XQueryProfile` breakdown
    /// grafted under its dispatching stage. Also recorded on
    /// [`MetaConfig::recorder`].
    pub profile: QueryProfile,
}

/// The metasearcher.
pub struct Metasearcher<'n> {
    net: &'n SimNet,
    /// The discovered catalog.
    pub catalog: Catalog,
    /// Strategy configuration.
    pub config: MetaConfig,
}

impl<'n> Metasearcher<'n> {
    /// Build over a network and a discovered catalog.
    pub fn new(net: &'n SimNet, catalog: Catalog, config: MetaConfig) -> Self {
        if let Some(budget) = config.slow_budget_us {
            config.recorder.set_budget_us(budget);
        }
        Metasearcher {
            net,
            catalog,
            config,
        }
    }

    /// Extract `(field, word)` pairs for source selection from a query.
    pub fn selection_terms(query: &Query) -> Vec<(Option<String>, String)> {
        query.all_terms().into_iter().map(term_key).collect()
    }

    /// Stitch the trace tree for a finished search out of the span
    /// ring. Spans from both sides of the `SimNet` boundary — client
    /// select/adapt/dispatch/merge and host rewrite/translate/execute —
    /// appear under one root, linked by the trace context the query
    /// carried over the wire.
    pub fn trace_tree(&self, query_id: &str) -> TraceTree {
        TraceTree::build(query_id, &self.net.registry().recent_spans())
    }

    /// Run the full pipeline for one query.
    ///
    /// Composes the stages in [`crate::pipeline`] under a scoped
    /// per-query fan-out: one worker thread per selected source, joined
    /// before returning. A panicking worker does **not** poison the
    /// query — it is recorded as a failed-source outcome (health board,
    /// `meta.dispatch.failures`, `meta.dispatch.panics`) and the merge
    /// proceeds with the sources that answered. The concurrent serving
    /// layer (`starts-serve`) runs the same stages on a shared executor
    /// pool instead.
    pub fn search(&self, query: &Query) -> MetaResponse {
        let obs = self.net.registry();
        let query_id = starts_obs::trace::next_query_id();
        // Spans record on drop; the wire-visible QueryProfile keeps its
        // own explicit clock, all offsets relative to `t0`.
        let t0 = Instant::now();
        let elapsed_us = |t0: Instant| t0.elapsed().as_micros() as u64;
        let _root = obs.span_with("meta.search", vec![("trace", query_id.clone())]);
        obs.counter("meta.searches").inc();

        // 1+2. Select sources and adapt the query per source.
        let plan = pipeline::plan(&self.catalog, &self.config, query, obs, t0);

        // 3. Dispatch in parallel (the fan-out of Figure 1's client).
        let client = StartsClient::new(self.net);
        let mut slots: Vec<Option<pipeline::TaskSuccess>> = Vec::new();
        slots.resize_with(plan.tasks.len(), || None);
        let dispatch_start = elapsed_us(t0);
        {
            let dispatch = obs.span("dispatch");
            let dispatch_handle = dispatch.handle();
            let health = &self.config.health;
            let timeout_ms = self.config.timeout_ms;
            crossbeam::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (slot, task) in slots.iter_mut().zip(&plan.tasks) {
                    let client = &client;
                    let dispatch_handle = &dispatch_handle;
                    let query_id = &query_id;
                    let handle = scope.spawn(move |_| {
                        // The worker thread's span stack is empty;
                        // run_task parents to the dispatch span
                        // explicitly via the handle.
                        *slot = pipeline::run_task(
                            client,
                            task,
                            health,
                            timeout_ms,
                            dispatch_handle,
                            query_id,
                            t0,
                            None,
                        )
                        .ok();
                    });
                    handles.push((task.id.clone(), handle));
                }
                for (source, h) in handles {
                    // Panic isolation: a worker that panicked becomes a
                    // failed-source outcome instead of poisoning the
                    // whole query.
                    if h.join().is_err() {
                        pipeline::record_panicked_dispatch(obs, health, &source);
                    }
                }
            })
            .expect("crossbeam scope");
        }
        let dispatch_end = elapsed_us(t0);
        // Publish the refreshed scoreboard so every exporter (and the
        // /stats endpoint of anyone sharing this registry) carries it.
        self.config.health.export_to(obs);
        let mut stats = QueryStats::default();
        let mut source_stages = Vec::new();
        let per_source: Vec<SourceResult> = slots
            .into_iter()
            .flatten()
            .map(|success| {
                stats.absorb(&success.exchange);
                source_stages.push(success.stage);
                success.result
            })
            .collect();
        obs.gauge("meta.query_cost").add(stats.total_cost);

        // 4. Merge — bounded: per-source lists already arrive sorted by
        // score, so the merger only materialises the best
        // `max_results` documents instead of every candidate.
        let (merged, _mstats, merge_costs) = pipeline::merge_stage(
            self.config.merger.as_ref(),
            &per_source,
            self.config.max_results,
            obs,
            t0,
        );

        // 5. Assemble the per-query cost profile and hand it to the
        // flight recorder (which decides whether it was slow enough to
        // keep in the slow-log).
        let mut dispatch_stage = StageCost::new(
            "dispatch",
            dispatch_start,
            dispatch_end.saturating_sub(dispatch_start),
        )
        .with_meta("sources", source_stages.len());
        dispatch_stage.children = source_stages;
        let profile = QueryProfile {
            query_id: query_id.clone(),
            root: StageCost {
                name: "meta.search".to_string(),
                start_us: 0,
                duration_us: elapsed_us(t0),
                meta: vec![("results".to_string(), merged.len().to_string())],
                children: vec![
                    plan.select_stage.clone(),
                    plan.adapt_stage.clone(),
                    dispatch_stage,
                    merge_costs,
                ],
            },
        };
        self.config.recorder.record(&profile);
        self.config.recorder.export_to(obs);
        // Feed the continuous-monitoring layer: sample the registry
        // (health gauges above are fresh), evaluate SLO burn rates, and
        // advance the alert state machine. Between sample steps this is
        // a clock read.
        self.net.monitor().tick(obs);

        MetaResponse {
            merged,
            selected: plan.selected,
            per_source,
            wave_latency_ms: plan.wave_latency_ms,
            total_cost: plan.total_cost,
            stats,
            query_id,
            profile,
        }
    }
}

fn term_key(t: &QTerm) -> (Option<String>, String) {
    let field = match t.effective_field() {
        Field::Any => None,
        f => Some(f.name().to_string()),
    };
    (field, t.value.text.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use starts_index::Document;
    use starts_net::host::wire_source;
    use starts_net::LinkProfile;
    use starts_proto::query::parse_ranking;
    use starts_source::{vendors, Source, SourceConfig};

    /// Three topical sources: databases, cooking, astronomy.
    fn wire_topical_net(net: &SimNet) {
        let mk_docs = |words: &[&str], n: usize, tag: &str| -> Vec<Document> {
            (0..n)
                .map(|i| {
                    let body = format!(
                        "{} {} {} filler{} text",
                        words[i % words.len()],
                        words[(i + 1) % words.len()],
                        words[0],
                        i
                    );
                    Document::new()
                        .field("title", format!("{tag} doc {i}"))
                        .field("body-of-text", body)
                        .field("linkage", format!("http://{tag}/{i}"))
                })
                .collect()
        };
        let db = Source::build(
            SourceConfig::new("DB"),
            &mk_docs(&["databases", "queries", "transactions"], 12, "db"),
        );
        let food = Source::build(
            SourceConfig::new("Food"),
            &mk_docs(&["cooking", "recipes", "baking"], 12, "food"),
        );
        let stars = Source::build(
            SourceConfig::new("Stars"),
            &mk_docs(&["galaxies", "telescopes", "orbits"], 12, "stars"),
        );
        for s in [db, food, stars] {
            wire_source(net, s, LinkProfile::default());
        }
    }

    fn catalog_for(net: &SimNet, ids: &[&str]) -> Catalog {
        let client = StartsClient::new(net);
        let mut catalog = Catalog::default();
        for id in ids {
            catalog
                .discover_source(
                    &client,
                    &format!("starts://{}/metadata", id.to_lowercase()),
                    LinkProfile::default(),
                    false,
                )
                .unwrap();
        }
        catalog
    }

    fn ranked_query(terms: &str) -> Query {
        Query {
            ranking: Some(parse_ranking(terms).unwrap()),
            ..Query::default()
        }
    }

    #[test]
    fn end_to_end_selects_the_right_source() {
        let net = SimNet::new();
        wire_topical_net(&net);
        let catalog = catalog_for(&net, &["DB", "Food", "Stars"]);
        let meta = Metasearcher::new(
            &net,
            catalog,
            MetaConfig {
                max_sources: 1,
                ..MetaConfig::default()
            },
        );
        let resp = meta.search(&ranked_query(r#"list((body-of-text "databases"))"#));
        assert_eq!(resp.selected, vec!["DB".to_string()]);
        assert!(!resp.merged.is_empty());
        assert!(resp.merged[0].linkage.starts_with("http://db/"));

        let resp = meta.search(&ranked_query(r#"list((body-of-text "recipes"))"#));
        assert_eq!(resp.selected, vec!["Food".to_string()]);
    }

    #[test]
    fn fan_out_merges_multiple_sources() {
        let net = SimNet::new();
        wire_topical_net(&net);
        let catalog = catalog_for(&net, &["DB", "Food", "Stars"]);
        let meta = Metasearcher::new(
            &net,
            catalog,
            MetaConfig {
                max_sources: 3,
                ..MetaConfig::default()
            },
        );
        // "text" appears everywhere: all three sources contribute.
        let resp = meta.search(&ranked_query(r#"list((body-of-text "text"))"#));
        assert_eq!(resp.per_source.len(), 3);
        let origins: std::collections::HashSet<&str> = resp
            .merged
            .iter()
            .flat_map(|d| d.sources.iter().map(String::as_str))
            .collect();
        assert_eq!(origins.len(), 3);
        assert!(resp.merged.len() <= 20);
    }

    #[test]
    fn meta_config_debug_names_the_strategies() {
        let printed = format!("{:?}", MetaConfig::default());
        assert!(printed.contains("gGlOSS-Sum"), "{printed}");
        assert!(printed.contains("range-normalized"), "{printed}");
        assert!(printed.contains("max_sources: 3"), "{printed}");
        let printed = format!(
            "{:?}",
            MetaConfig {
                selector: Box::new(crate::select::CostAware {
                    inner: crate::select::BySize,
                    lambda: 1.0,
                    mu: 1.0,
                }),
                merger: Box::new(crate::merge::RoundRobinMerge),
                ..MetaConfig::default()
            }
        );
        assert!(printed.contains("cost-aware"), "{printed}");
        assert!(printed.contains("round-robin"), "{printed}");
    }

    #[test]
    fn query_stats_reflect_actual_exchanges() {
        let net = SimNet::new();
        wire_topical_net(&net);
        let mut catalog = catalog_for(&net, &["DB", "Food"]);
        catalog.entries[0].link = LinkProfile {
            latency_ms: 100,
            cost_per_query: 1.0,
        };
        catalog.entries[1].link = LinkProfile {
            latency_ms: 700,
            cost_per_query: 2.0,
        };
        let meta = Metasearcher::new(
            &net,
            catalog,
            MetaConfig {
                max_sources: 2,
                ..MetaConfig::default()
            },
        );
        let resp = meta.search(&ranked_query(r#"list((body-of-text "text"))"#));
        // The catalog profiles say 100/700 ms and 1+2 cost, but the wire
        // was registered with the default profile (50 ms, free): the
        // exchange-derived stats report what actually happened.
        assert_eq!(resp.stats.requests, 2);
        assert_eq!(resp.stats.total_latency_ms, 100);
        assert_eq!(resp.stats.max_latency_ms, 50);
        assert!(resp.stats.total_cost.abs() < 1e-9);
        assert!(resp.stats.bytes_sent > 0);
        assert!(resp.stats.bytes_received > 0);
        // The quoted view is still the catalog's.
        assert_eq!(resp.wave_latency_ms, 700);
        assert!((resp.total_cost - 3.0).abs() < 1e-9);
    }

    #[test]
    fn search_records_phase_spans_and_metrics() {
        let net = SimNet::new();
        wire_topical_net(&net);
        let catalog = catalog_for(&net, &["DB", "Food", "Stars"]);
        net.registry().reset(); // drop discovery-time traffic
        let meta = Metasearcher::new(&net, catalog, MetaConfig::default());
        let resp = meta.search(&ranked_query(r#"list((body-of-text "text"))"#));
        assert!(!resp.merged.is_empty());
        let snap = net.registry().snapshot();
        assert_eq!(snap.counter("meta.searches", &[]), 1);
        for phase in ["select", "adapt", "dispatch", "merge"] {
            let h = snap
                .histogram(
                    "span.duration_us",
                    &[("span", &format!("meta.search/{phase}"))],
                )
                .unwrap_or_else(|| panic!("missing {phase} span"));
            assert_eq!(h.count, 1, "{phase}");
        }
        // Per-source fan-out spans parent under dispatch, and each
        // source's simulated latency lands in its own histogram.
        for source in ["DB", "Food", "Stars"] {
            let h = snap
                .histogram("meta.source_latency_ms", &[("source", source)])
                .unwrap_or_else(|| panic!("missing latency histogram for {source}"));
            assert_eq!((h.count, h.max), (1, 50), "{source}");
        }
        let events = net.registry().recent_spans();
        let workers: Vec<_> = events
            .iter()
            .filter(|e| e.path == "meta.search/dispatch/source")
            .collect();
        assert_eq!(workers.len(), 3);
        assert!(workers.iter().all(|e| e.parent == "meta.search/dispatch"));
        // Merge accounting: all candidates were distinct linkages.
        let candidates = snap.counter("meta.merge.candidates", &[]);
        assert!(candidates >= resp.merged.len() as u64);
        assert_eq!(snap.counter("meta.merge.duplicates", &[]), 0);
    }

    #[test]
    fn search_feeds_the_health_board_and_trace_tree() {
        let net = SimNet::new();
        wire_topical_net(&net);
        let catalog = catalog_for(&net, &["DB", "Food", "Stars"]);
        net.registry().reset();
        let meta = Metasearcher::new(&net, catalog, MetaConfig::default());
        let resp = meta.search(&ranked_query(r#"list((body-of-text "text"))"#));

        // Health: one successful 50ms exchange per source, exported as
        // gauges into the shared registry.
        for source in ["DB", "Food", "Stars"] {
            let h = meta.config.health.health(source).expect("health recorded");
            assert_eq!((h.samples, h.timeouts), (1, 0));
            assert_eq!(h.availability, 1.0);
            assert_eq!(h.latency_p50_ms, 50);
            assert!(h.score > 0.9, "{source} score {}", h.score);
        }
        let snap = net.registry().snapshot();
        assert_eq!(snap.gauge("health.availability", &[("source", "DB")]), 1.0);
        assert!(snap.gauge("health.score", &[("source", "Food")]) > 0.9);

        // Trace: one tree rooted at meta.search, holding the client
        // phases and, via the wire context, the host-side execution.
        assert!(resp.query_id.starts_with("q-"));
        let tree = meta.trace_tree(&resp.query_id);
        assert_eq!(tree.roots.len(), 1, "{}", tree.render());
        assert_eq!(tree.roots[0].event.name, "meta.search");
        let host = tree.find("source.execute").expect("host span in tree");
        assert_eq!(host.event.parent, "meta.search/dispatch/source");
        assert!(host.children.iter().any(|c| c.event.name == "rewrite"));
        assert!(!tree.critical_path_summary().is_empty());
    }

    #[test]
    fn latency_is_max_cost_is_sum() {
        let net = SimNet::new();
        wire_topical_net(&net);
        let mut catalog = catalog_for(&net, &["DB", "Food"]);
        catalog.entries[0].link = LinkProfile {
            latency_ms: 100,
            cost_per_query: 1.0,
        };
        catalog.entries[1].link = LinkProfile {
            latency_ms: 700,
            cost_per_query: 2.0,
        };
        let meta = Metasearcher::new(
            &net,
            catalog,
            MetaConfig {
                max_sources: 2,
                ..MetaConfig::default()
            },
        );
        let resp = meta.search(&ranked_query(r#"list((body-of-text "text"))"#));
        assert_eq!(resp.wave_latency_ms, 700);
        assert!((resp.total_cost - 3.0).abs() < 1e-9);
    }

    #[test]
    fn panicking_source_worker_becomes_a_failed_source_not_a_poisoned_query() {
        let net = SimNet::new();
        wire_topical_net(&net);
        let catalog = catalog_for(&net, &["DB", "Food", "Stars"]);
        // Replace one source's query endpoint with a handler that
        // panics mid-request: its dispatch worker dies, the other two
        // keep going.
        let url = catalog.entry("Food").unwrap().query_url().to_string();
        net.register(
            url,
            LinkProfile::default(),
            Arc::new(|_req: &[u8]| -> Vec<u8> { panic!("endpoint blew up") }),
        );
        net.registry().reset();
        let meta = Metasearcher::new(&net, catalog, MetaConfig::default());
        let resp = meta.search(&ranked_query(r#"list((body-of-text "text"))"#));
        // The query survived with the two healthy sources merged…
        assert_eq!(resp.per_source.len(), 2);
        assert!(!resp.merged.is_empty());
        assert_eq!(resp.stats.requests, 2);
        // …and the panic is accounted as a failed source.
        let snap = net.registry().snapshot();
        assert_eq!(
            snap.counter("meta.dispatch.failures", &[("source", "Food")]),
            1
        );
        assert_eq!(
            snap.counter("meta.dispatch.panics", &[("source", "Food")]),
            1
        );
        let h = meta.config.health.health("Food").expect("health recorded");
        assert_eq!(h.availability, 0.0);
        // A healthy source is untouched.
        assert_eq!(snap.counter("meta.dispatch.panics", &[("source", "DB")]), 0);
        assert_eq!(meta.config.health.health("DB").unwrap().availability, 1.0);
    }

    #[test]
    fn heterogeneous_fleet_end_to_end() {
        // The full vendor fleet — Boolean-only, rank-only, 1000-scale —
        // behind one metasearcher.
        let net = SimNet::new();
        let docs: Vec<Document> = (0..10)
            .map(|i| {
                Document::new()
                    .field("title", format!("doc {i}"))
                    .field(
                        "body-of-text",
                        format!("databases distributed systems item{i}"),
                    )
                    .field("linkage", format!("http://fleet/{i}"))
            })
            .collect();
        for cfg in vendors::fleet() {
            wire_source(&net, Source::build(cfg, &docs), LinkProfile::default());
        }
        let client = StartsClient::new(&net);
        let mut catalog = Catalog::default();
        for id in [
            "acme-src",
            "bolt-src",
            "okapi-src",
            "glimpse-src",
            "rankonly-src",
        ] {
            catalog
                .discover_source(
                    &client,
                    &format!("starts://{id}/metadata"),
                    LinkProfile::default(),
                    false,
                )
                .unwrap();
        }
        let meta = Metasearcher::new(
            &net,
            catalog,
            MetaConfig {
                max_sources: 5,
                ..MetaConfig::default()
            },
        );
        let resp = meta.search(&ranked_query(
            r#"list((body-of-text "databases") (body-of-text "distributed"))"#,
        ));
        // Every vendor answered (even the Boolean-only one, via
        // adaptation), and normalization kept the 1000-scale vendor from
        // flooding the top ranks with garbage scores.
        assert_eq!(resp.per_source.len(), 5);
        assert!(!resp.merged.is_empty());
        for d in &resp.merged {
            assert!(
                d.score <= 1.0 + 1e-9,
                "unnormalized score leaked: {}",
                d.score
            );
        }
    }

    #[test]
    fn lcd_mode_loses_capability() {
        let net = SimNet::new();
        wire_topical_net(&net);
        // Glimpse (filter-only) joins the catalog: LCD drops ranking for
        // everyone.
        let g = Source::build(
            vendors::glimpse("Glim"),
            &[Document::new()
                .field("body-of-text", "databases here")
                .field("linkage", "http://glim/0")],
        );
        wire_source(&net, g, LinkProfile::default());
        let client = StartsClient::new(&net);
        let mut catalog = catalog_for(&net, &["DB"]);
        catalog
            .discover_source(
                &client,
                "starts://glim/metadata",
                LinkProfile::default(),
                false,
            )
            .unwrap();
        let meta = Metasearcher::new(
            &net,
            catalog,
            MetaConfig {
                max_sources: 2,
                adapt: AdaptMode::Lcd,
                ..MetaConfig::default()
            },
        );
        let resp = meta.search(&ranked_query(r#"list((body-of-text "databases"))"#));
        // LCD stripped the ranking part; with no filter either, sources
        // got an empty query.
        assert!(resp.merged.is_empty());
        // Per-source adaptation instead converts for Glimpse and keeps
        // ranking at DB.
        let meta = Metasearcher::new(
            &net,
            meta.catalog,
            MetaConfig {
                max_sources: 2,
                adapt: AdaptMode::PerSource,
                ..MetaConfig::default()
            },
        );
        let resp = meta.search(&ranked_query(r#"list((body-of-text "databases"))"#));
        assert!(!resp.merged.is_empty());
    }
}
