//! The end-to-end metasearcher: select → adapt → dispatch (parallel) →
//! merge, with latency and cost accounting.
//!
//! This is the component the paper's §1 describes and §3.4 specifies:
//! it gives "users the illusion of a single combined document source"
//! over heterogeneous STARTS sources.

use starts_net::{SimNet, StartsClient};
use starts_proto::{Field, QTerm, Query};

use crate::adapt::{adapt_query, least_common_denominator};
use crate::catalog::Catalog;
use crate::merge::{MergedDoc, Merger, SourceResult};
use crate::select::Selector;

/// How queries are adjusted before dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdaptMode {
    /// Send the query verbatim; sources rewrite per the protocol.
    Verbatim,
    /// Adapt per source capability (fold query parts, expand stems).
    #[default]
    PerSource,
    /// Strip to the least common denominator of all selected sources —
    /// the baseline §5 attributes to early metasearchers.
    Lcd,
}

/// Metasearcher configuration.
pub struct MetaConfig {
    /// Source-selection strategy.
    pub selector: Box<dyn Selector>,
    /// Rank-merging strategy.
    pub merger: Box<dyn Merger>,
    /// How many sources to contact per query.
    pub max_sources: usize,
    /// Query adjustment mode.
    pub adapt: AdaptMode,
    /// Final result-list cap.
    pub max_results: usize,
}

impl Default for MetaConfig {
    fn default() -> Self {
        MetaConfig {
            selector: Box::new(crate::select::GGlossSum),
            merger: Box::new(crate::merge::NormalizedMerge),
            max_sources: 3,
            adapt: AdaptMode::PerSource,
            max_results: 20,
        }
    }
}

/// The outcome of one metasearch.
#[derive(Debug)]
pub struct MetaResponse {
    /// The merged rank.
    pub merged: Vec<MergedDoc>,
    /// Ids of the sources contacted, in selection order.
    pub selected: Vec<String>,
    /// Raw per-source results (for analysis).
    pub per_source: Vec<SourceResult>,
    /// Simulated wall-clock latency of the parallel fan-out: the *max*
    /// per-source latency (queries run concurrently).
    pub wave_latency_ms: u32,
    /// Total monetary cost of the wave.
    pub total_cost: f64,
}

/// The metasearcher.
pub struct Metasearcher<'n> {
    net: &'n SimNet,
    /// The discovered catalog.
    pub catalog: Catalog,
    /// Strategy configuration.
    pub config: MetaConfig,
}

impl<'n> Metasearcher<'n> {
    /// Build over a network and a discovered catalog.
    pub fn new(net: &'n SimNet, catalog: Catalog, config: MetaConfig) -> Self {
        Metasearcher {
            net,
            catalog,
            config,
        }
    }

    /// Extract `(field, word)` pairs for source selection from a query.
    pub fn selection_terms(query: &Query) -> Vec<(Option<String>, String)> {
        query
            .all_terms()
            .into_iter()
            .map(term_key)
            .collect()
    }

    /// Run the full pipeline for one query.
    pub fn search(&self, query: &Query) -> MetaResponse {
        // 1. Select sources.
        let owned_terms = Self::selection_terms(query);
        let terms: Vec<(Option<&str>, &str)> = owned_terms
            .iter()
            .map(|(f, t)| (f.as_deref(), t.as_str()))
            .collect();
        let ranked = self.config.selector.rank(&self.catalog, &terms);
        let chosen: Vec<(usize, f64)> = ranked
            .into_iter()
            .take(self.config.max_sources.max(1))
            .collect();
        let selected: Vec<String> = chosen
            .iter()
            .map(|(i, _)| self.catalog.entries[*i].id.clone())
            .collect();

        // 2. Adapt queries.
        let lcd_query = if self.config.adapt == AdaptMode::Lcd {
            let metas: Vec<&starts_proto::SourceMetadata> = chosen
                .iter()
                .map(|(i, _)| &self.catalog.entries[*i].metadata)
                .collect();
            Some(least_common_denominator(query, &metas))
        } else {
            None
        };
        let prepared: Vec<(usize, f64, Query)> = chosen
            .iter()
            .map(|&(i, score)| {
                let entry = &self.catalog.entries[i];
                let q = match self.config.adapt {
                    AdaptMode::Verbatim => query.clone(),
                    AdaptMode::PerSource => {
                        adapt_query(query, &entry.metadata, &entry.summary)
                    }
                    AdaptMode::Lcd => lcd_query.clone().expect("computed above"),
                };
                (i, score, q)
            })
            .collect();

        // 3. Dispatch in parallel (the fan-out of Figure 1's client).
        let client = StartsClient::new(self.net);
        let max_belief = chosen
            .iter()
            .map(|(_, s)| *s)
            .fold(f64::MIN, f64::max)
            .max(1e-12);
        let mut slots: Vec<Option<SourceResult>> = Vec::new();
        slots.resize_with(prepared.len(), || None);
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (slot, (i, score, q)) in slots.iter_mut().zip(&prepared) {
                let entry = &self.catalog.entries[*i];
                let client = &client;
                handles.push(scope.spawn(move |_| {
                    let results = client.query(entry.query_url(), q).ok();
                    if let Some(results) = results {
                        *slot = Some(SourceResult {
                            metadata: entry.metadata.clone(),
                            results,
                            source_weight: (score / max_belief).clamp(0.0, 1.0),
                        });
                    }
                }));
            }
            for h in handles {
                h.join().expect("dispatch thread panicked");
            }
        })
        .expect("crossbeam scope");
        let per_source: Vec<SourceResult> = slots.into_iter().flatten().collect();

        // 4. Accounting: the wave runs concurrently, so the user-visible
        // latency is the slowest selected link; costs add up.
        let wave_latency_ms = chosen
            .iter()
            .map(|(i, _)| self.catalog.entries[*i].link.latency_ms)
            .max()
            .unwrap_or(0);
        let total_cost: f64 = chosen
            .iter()
            .map(|(i, _)| self.catalog.entries[*i].link.cost_per_query)
            .sum();

        // 5. Merge.
        let mut merged = self.config.merger.merge(&per_source);
        merged.truncate(self.config.max_results);
        MetaResponse {
            merged,
            selected,
            per_source,
            wave_latency_ms,
            total_cost,
        }
    }
}

fn term_key(t: &QTerm) -> (Option<String>, String) {
    let field = match t.effective_field() {
        Field::Any => None,
        f => Some(f.name().to_string()),
    };
    (field, t.value.text.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use starts_index::Document;
    use starts_net::host::wire_source;
    use starts_net::LinkProfile;
    use starts_proto::query::parse_ranking;
    use starts_source::{vendors, Source, SourceConfig};

    /// Three topical sources: databases, cooking, astronomy.
    fn wire_topical_net(net: &SimNet) {
        let mk_docs = |words: &[&str], n: usize, tag: &str| -> Vec<Document> {
            (0..n)
                .map(|i| {
                    let body = format!(
                        "{} {} {} filler{} text",
                        words[i % words.len()],
                        words[(i + 1) % words.len()],
                        words[0],
                        i
                    );
                    Document::new()
                        .field("title", format!("{tag} doc {i}"))
                        .field("body-of-text", body)
                        .field("linkage", format!("http://{tag}/{i}"))
                })
                .collect()
        };
        let db = Source::build(
            SourceConfig::new("DB"),
            &mk_docs(&["databases", "queries", "transactions"], 12, "db"),
        );
        let food = Source::build(
            SourceConfig::new("Food"),
            &mk_docs(&["cooking", "recipes", "baking"], 12, "food"),
        );
        let stars = Source::build(
            SourceConfig::new("Stars"),
            &mk_docs(&["galaxies", "telescopes", "orbits"], 12, "stars"),
        );
        for s in [db, food, stars] {
            wire_source(net, s, LinkProfile::default());
        }
    }

    fn catalog_for(net: &SimNet, ids: &[&str]) -> Catalog {
        let client = StartsClient::new(net);
        let mut catalog = Catalog::default();
        for id in ids {
            catalog
                .discover_source(
                    &client,
                    &format!("starts://{}/metadata", id.to_lowercase()),
                    LinkProfile::default(),
                    false,
                )
                .unwrap();
        }
        catalog
    }

    fn ranked_query(terms: &str) -> Query {
        Query {
            ranking: Some(parse_ranking(terms).unwrap()),
            ..Query::default()
        }
    }

    #[test]
    fn end_to_end_selects_the_right_source() {
        let net = SimNet::new();
        wire_topical_net(&net);
        let catalog = catalog_for(&net, &["DB", "Food", "Stars"]);
        let meta = Metasearcher::new(
            &net,
            catalog,
            MetaConfig {
                max_sources: 1,
                ..MetaConfig::default()
            },
        );
        let resp = meta.search(&ranked_query(r#"list((body-of-text "databases"))"#));
        assert_eq!(resp.selected, vec!["DB".to_string()]);
        assert!(!resp.merged.is_empty());
        assert!(resp.merged[0].linkage.starts_with("http://db/"));

        let resp = meta.search(&ranked_query(r#"list((body-of-text "recipes"))"#));
        assert_eq!(resp.selected, vec!["Food".to_string()]);
    }

    #[test]
    fn fan_out_merges_multiple_sources() {
        let net = SimNet::new();
        wire_topical_net(&net);
        let catalog = catalog_for(&net, &["DB", "Food", "Stars"]);
        let meta = Metasearcher::new(
            &net,
            catalog,
            MetaConfig {
                max_sources: 3,
                ..MetaConfig::default()
            },
        );
        // "text" appears everywhere: all three sources contribute.
        let resp = meta.search(&ranked_query(r#"list((body-of-text "text"))"#));
        assert_eq!(resp.per_source.len(), 3);
        let origins: std::collections::HashSet<&str> = resp
            .merged
            .iter()
            .flat_map(|d| d.sources.iter().map(String::as_str))
            .collect();
        assert_eq!(origins.len(), 3);
        assert!(resp.merged.len() <= 20);
    }

    #[test]
    fn latency_is_max_cost_is_sum() {
        let net = SimNet::new();
        wire_topical_net(&net);
        let mut catalog = catalog_for(&net, &["DB", "Food"]);
        catalog.entries[0].link = LinkProfile {
            latency_ms: 100,
            cost_per_query: 1.0,
        };
        catalog.entries[1].link = LinkProfile {
            latency_ms: 700,
            cost_per_query: 2.0,
        };
        let meta = Metasearcher::new(
            &net,
            catalog,
            MetaConfig {
                max_sources: 2,
                ..MetaConfig::default()
            },
        );
        let resp = meta.search(&ranked_query(r#"list((body-of-text "text"))"#));
        assert_eq!(resp.wave_latency_ms, 700);
        assert!((resp.total_cost - 3.0).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_fleet_end_to_end() {
        // The full vendor fleet — Boolean-only, rank-only, 1000-scale —
        // behind one metasearcher.
        let net = SimNet::new();
        let docs: Vec<Document> = (0..10)
            .map(|i| {
                Document::new()
                    .field("title", format!("doc {i}"))
                    .field(
                        "body-of-text",
                        format!("databases distributed systems item{i}"),
                    )
                    .field("linkage", format!("http://fleet/{i}"))
            })
            .collect();
        for cfg in vendors::fleet() {
            wire_source(&net, Source::build(cfg, &docs), LinkProfile::default());
        }
        let client = StartsClient::new(&net);
        let mut catalog = Catalog::default();
        for id in ["acme-src", "bolt-src", "okapi-src", "glimpse-src", "rankonly-src"] {
            catalog
                .discover_source(
                    &client,
                    &format!("starts://{id}/metadata"),
                    LinkProfile::default(),
                    false,
                )
                .unwrap();
        }
        let meta = Metasearcher::new(
            &net,
            catalog,
            MetaConfig {
                max_sources: 5,
                ..MetaConfig::default()
            },
        );
        let resp = meta.search(&ranked_query(
            r#"list((body-of-text "databases") (body-of-text "distributed"))"#,
        ));
        // Every vendor answered (even the Boolean-only one, via
        // adaptation), and normalization kept the 1000-scale vendor from
        // flooding the top ranks with garbage scores.
        assert_eq!(resp.per_source.len(), 5);
        assert!(!resp.merged.is_empty());
        for d in &resp.merged {
            assert!(d.score <= 1.0 + 1e-9, "unnormalized score leaked: {}", d.score);
        }
    }

    #[test]
    fn lcd_mode_loses_capability() {
        let net = SimNet::new();
        wire_topical_net(&net);
        // Glimpse (filter-only) joins the catalog: LCD drops ranking for
        // everyone.
        let g = Source::build(
            vendors::glimpse("Glim"),
            &[Document::new()
                .field("body-of-text", "databases here")
                .field("linkage", "http://glim/0")],
        );
        wire_source(&net, g, LinkProfile::default());
        let client = StartsClient::new(&net);
        let mut catalog = catalog_for(&net, &["DB"]);
        catalog
            .discover_source(&client, "starts://glim/metadata", LinkProfile::default(), false)
            .unwrap();
        let meta = Metasearcher::new(
            &net,
            catalog,
            MetaConfig {
                max_sources: 2,
                adapt: AdaptMode::Lcd,
                ..MetaConfig::default()
            },
        );
        let resp = meta.search(&ranked_query(r#"list((body-of-text "databases"))"#));
        // LCD stripped the ranking part; with no filter either, sources
        // got an empty query.
        assert!(resp.merged.is_empty());
        // Per-source adaptation instead converts for Glimpse and keeps
        // ranking at DB.
        let meta = Metasearcher::new(
            &net,
            meta.catalog,
            MetaConfig {
                max_sources: 2,
                adapt: AdaptMode::PerSource,
                ..MetaConfig::default()
            },
        );
        let resp = meta.search(&ranked_query(r#"list((body-of-text "databases"))"#));
        assert!(!resp.merged.is_empty());
    }
}
