//! Rank merging (§3.2, §4.2): combining per-source results into one
//! rank.
//!
//! "Merging query results from sources that use different and unknown
//! ranking algorithms is hard" — source S1 reports 0.3, source S2
//! reports 1,000, and even identical algorithms disagree because of
//! collection skew. STARTS' answer is to ship enough *raw material*
//! (unnormalized score, ScoreRange, RankingAlgorithmID, and per-term
//! TermStats) for the metasearcher "to experiment with a variety of
//! formulas". This module implements that variety:
//!
//! | strategy | uses | faithful to |
//! |---|---|---|
//! | [`RawScoreMerge`] | RawScore only | the broken naive baseline of §3.2 |
//! | [`NormalizedMerge`] | RawScore + ScoreRange | range normalization |
//! | [`RoundRobinMerge`] | per-source rank order | collection fusion interleaving (ref \[6\]) |
//! | [`TfMerge`] | TermStats term frequencies | Example 9's re-ranking |
//! | [`TfIdfMerge`] | TermStats + summary global df | §4.2's "as if they all belonged in a single, large document source" |
//! | [`WeightedMerge`] | normalized score × source belief | CORI-style weighted merging (ref \[5\]) |

use std::collections::{BinaryHeap, HashMap, HashSet};

use starts_proto::{Field, QueryResults, ResultDocument, SourceMetadata};

/// One source's contribution to a merge.
#[derive(Debug, Clone)]
pub struct SourceResult {
    /// The source's metadata (ScoreRange, RankingAlgorithmID, …).
    pub metadata: SourceMetadata,
    /// The results it returned.
    pub results: QueryResults,
    /// An optional source-goodness weight (e.g. the selection belief)
    /// consumed by [`WeightedMerge`]; 1.0 when absent.
    pub source_weight: f64,
}

/// A merged document.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedDoc {
    /// The document's URL (the dedup key).
    pub linkage: String,
    /// Title, if returned.
    pub title: Option<String>,
    /// The merged score (meaning depends on the strategy).
    pub score: f64,
    /// Sources that returned the document.
    pub sources: Vec<String>,
}

/// A merging strategy.
///
/// ```
/// use starts_meta::merge::{Merger, NormalizedMerge, SourceResult};
/// use starts_proto::{QueryResults, SourceMetadata};
///
/// // Two sources with different score scales return results…
/// let unit = SourceResult {
///     metadata: SourceMetadata { source_id: "Unit".into(), score_range: (0.0, 1.0),
///                                ..SourceMetadata::default() },
///     results: QueryResults::default(),
///     source_weight: 1.0,
/// };
/// // …and a strategy combines them into one deduplicated rank.
/// let merged = NormalizedMerge.merge(&[unit]);
/// assert!(merged.is_empty()); // no documents in this toy input
/// ```
pub trait Merger: Send + Sync {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Merge per-source results into a single rank, best first,
    /// deduplicated by linkage.
    fn merge(&self, inputs: &[SourceResult]) -> Vec<MergedDoc>;

    /// Merge keeping only the best `k` documents, plus the dedup
    /// accounting a bounded merge would otherwise lose. The result is
    /// exactly `self.merge(inputs)` truncated to `k`.
    ///
    /// The default runs the full merge; strategies whose per-source
    /// transform preserves each source's rank order ([`RawScoreMerge`],
    /// [`NormalizedMerge`]) override it with a bounded k-way heap merge
    /// over the already-sorted per-source lists.
    fn merge_top_k(&self, inputs: &[SourceResult], k: usize) -> (Vec<MergedDoc>, MergeStats) {
        full_merge_top_k(self, inputs, k)
    }
}

/// Accounting from a merge: how many per-source result documents went
/// in and how many distinct linkages they collapsed to. The difference
/// is the cross-source duplicate count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Per-source result documents fed into the merge.
    pub candidates: usize,
    /// Distinct linkages among them (documents without a linkage are
    /// unidentifiable across sources and drop out).
    pub distinct: usize,
}

impl MergeStats {
    /// Candidates that collapsed into an already-seen linkage.
    pub fn duplicates(&self) -> usize {
        self.candidates.saturating_sub(self.distinct)
    }
}

/// The fallback `merge_top_k`: full merge, then truncate.
fn full_merge_top_k(
    merger: &(impl Merger + ?Sized),
    inputs: &[SourceResult],
    k: usize,
) -> (Vec<MergedDoc>, MergeStats) {
    let mut merged = merger.merge(inputs);
    let stats = MergeStats {
        candidates: inputs.iter().map(|i| i.results.documents.len()).sum(),
        distinct: merged.len(),
    };
    merged.truncate(k);
    (merged, stats)
}

fn doc_title(d: &ResultDocument) -> Option<String> {
    d.field(&Field::Title).map(str::to_string)
}

/// Deduplicate scored documents, keeping the best score per linkage and
/// accumulating source lists, then sort descending.
fn collect(scored: Vec<(f64, &ResultDocument, &str)>) -> Vec<MergedDoc> {
    let mut by_url: HashMap<String, MergedDoc> = HashMap::new();
    for (score, doc, source_id) in scored {
        let Some(url) = doc.linkage() else {
            continue; // unidentifiable across sources
        };
        let entry = by_url.entry(url.to_string()).or_insert_with(|| MergedDoc {
            linkage: url.to_string(),
            title: doc_title(doc),
            score: f64::NEG_INFINITY,
            sources: Vec::new(),
        });
        if score > entry.score {
            entry.score = score;
        }
        if !entry.sources.iter().any(|s| s == source_id) {
            entry.sources.push(source_id.to_string());
        }
        if entry.title.is_none() {
            entry.title = doc_title(doc);
        }
    }
    let mut out: Vec<MergedDoc> = by_url.into_values().collect();
    out.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.linkage.cmp(&b.linkage)));
    out
}

/// Bounded k-way merge over per-source scored lists, equivalent to
/// [`collect`] + sort + truncate but doing only `O(n log s)` heap work
/// for the selection.
///
/// Requires every input list to be non-increasing in its (transformed)
/// score — true whenever the per-source transform is monotone and the
/// source returned ranked results. Returns `None` when any input
/// violates that, so the caller can fall back to the full merge.
///
/// Exactness over the heap sketch needs two refinements. Equal-score
/// runs are drained completely and emitted in linkage order, because the
/// full sort breaks score ties by linkage ascending — a plain heap pop
/// would interleave them arbitrarily. And after the top `k` linkages are
/// fixed, one linear pass over all inputs (in input order) rebuilds each
/// winner's source list and title exactly as the unbounded merge
/// accumulates them, and counts distinct linkages for the stats.
fn bounded_merge<'a>(
    inputs: &'a [SourceResult],
    scored: &[Vec<(f64, &'a ResultDocument)>],
    k: usize,
) -> Option<(Vec<MergedDoc>, MergeStats)> {
    for list in scored {
        if list
            .windows(2)
            .any(|w| w[0].0.total_cmp(&w[1].0) == std::cmp::Ordering::Less)
        {
            return None;
        }
    }
    // Max-heap of (score, input index): pop order visits every
    // occurrence in score-descending order, so the first occurrence of a
    // linkage carries its final (maximum) score.
    struct Head(f64, usize);
    impl PartialEq for Head {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == std::cmp::Ordering::Equal
        }
    }
    impl Eq for Head {}
    impl PartialOrd for Head {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Head {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
        }
    }
    let mut cursors = vec![0usize; scored.len()];
    let mut heap: BinaryHeap<Head> = BinaryHeap::with_capacity(scored.len());
    for (i, list) in scored.iter().enumerate() {
        if let Some(&(s, _)) = list.first() {
            heap.push(Head(s, i));
        }
    }
    let mut emitted: HashMap<&str, usize> = HashMap::new();
    let mut out: Vec<MergedDoc> = Vec::with_capacity(k.min(64));
    let mut tie_batch: Vec<&str> = Vec::new();
    while out.len() < k && !heap.is_empty() {
        let tie_score = heap.peek().expect("nonempty").0;
        tie_batch.clear();
        // Drain the whole equal-score run across all inputs.
        while let Some(Head(s, _)) = heap.peek() {
            if s.total_cmp(&tie_score) != std::cmp::Ordering::Equal {
                break;
            }
            let Head(_, i) = heap.pop().expect("peeked");
            let (_, doc) = scored[i][cursors[i]];
            cursors[i] += 1;
            if let Some(&(next, _)) = scored[i].get(cursors[i]) {
                heap.push(Head(next, i));
            }
            if let Some(url) = doc.linkage() {
                if !emitted.contains_key(url) && !tie_batch.contains(&url) {
                    tie_batch.push(url);
                }
            }
        }
        tie_batch.sort_unstable();
        for url in tie_batch.drain(..) {
            if out.len() == k {
                break;
            }
            emitted.insert(url, out.len());
            out.push(MergedDoc {
                linkage: url.to_string(),
                title: None,
                score: tie_score,
                sources: Vec::new(),
            });
        }
    }
    // Rebuild pass: sources, titles and dedup accounting accumulate in
    // input order, exactly as the unbounded `collect` does.
    let mut distinct: HashSet<&str> = HashSet::new();
    let mut candidates = 0usize;
    for input in inputs {
        let sid = source_id(input);
        for d in &input.results.documents {
            candidates += 1;
            let Some(url) = d.linkage() else { continue };
            distinct.insert(url);
            if let Some(&i) = emitted.get(url) {
                if !out[i].sources.iter().any(|s| s == sid) {
                    out[i].sources.push(sid.to_string());
                }
                if out[i].title.is_none() {
                    out[i].title = doc_title(d);
                }
            }
        }
    }
    let stats = MergeStats {
        candidates,
        distinct: distinct.len(),
    };
    Some((out, stats))
}

fn source_id(input: &SourceResult) -> &str {
    &input.metadata.source_id
}

/// Naive: compare raw scores across sources directly. This is the §3.2
/// mistake made executable — sources with big score scales (the "top doc
/// = 1000" vendor) dominate regardless of relevance.
#[derive(Debug, Clone, Copy, Default)]
pub struct RawScoreMerge;

fn raw_scored(input: &SourceResult) -> Vec<(f64, &ResultDocument)> {
    input
        .results
        .documents
        .iter()
        .map(|d| (d.raw_score.unwrap_or(0.0), d))
        .collect()
}

impl Merger for RawScoreMerge {
    fn name(&self) -> &'static str {
        "raw-score"
    }

    fn merge(&self, inputs: &[SourceResult]) -> Vec<MergedDoc> {
        let mut scored = Vec::new();
        for input in inputs {
            for (s, d) in raw_scored(input) {
                scored.push((s, d, source_id(input)));
            }
        }
        collect(scored)
    }

    fn merge_top_k(&self, inputs: &[SourceResult], k: usize) -> (Vec<MergedDoc>, MergeStats) {
        let scored: Vec<_> = inputs.iter().map(raw_scored).collect();
        bounded_merge(inputs, &scored, k).unwrap_or_else(|| full_merge_top_k(self, inputs, k))
    }
}

/// Range normalization: map each source's scores into \[0,1\] using its
/// exported `ScoreRange` (the first thing the metadata makes possible).
/// Unbounded ranges fall back to per-result max normalization.
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalizedMerge;

fn normalized_scored(input: &SourceResult) -> Vec<(f64, &ResultDocument)> {
    let (min, max) = input.metadata.score_range;
    let observed_max = input
        .results
        .documents
        .iter()
        .filter_map(|d| d.raw_score)
        .fold(0.0_f64, f64::max);
    let (lo, hi) = if min.is_finite() && max.is_finite() && max > min {
        (min, max)
    } else {
        (0.0, observed_max.max(1e-12))
    };
    input
        .results
        .documents
        .iter()
        .map(|d| {
            let raw = d.raw_score.unwrap_or(lo);
            (((raw - lo) / (hi - lo)).clamp(0.0, 1.0), d)
        })
        .collect()
}

impl Merger for NormalizedMerge {
    fn name(&self) -> &'static str {
        "range-normalized"
    }

    fn merge(&self, inputs: &[SourceResult]) -> Vec<MergedDoc> {
        let mut scored = Vec::new();
        for input in inputs {
            for (s, d) in normalized_scored(input) {
                scored.push((s, d, source_id(input)));
            }
        }
        collect(scored)
    }

    fn merge_top_k(&self, inputs: &[SourceResult], k: usize) -> (Vec<MergedDoc>, MergeStats) {
        let scored: Vec<_> = inputs.iter().map(normalized_scored).collect();
        bounded_merge(inputs, &scored, k).unwrap_or_else(|| full_merge_top_k(self, inputs, k))
    }
}

/// Round-robin interleaving: take the best remaining document from each
/// source in turn (Voorhees et al.'s collection-fusion baseline,
/// ref \[6\]). Scores are synthetic (descending by merge position).
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinMerge;

impl Merger for RoundRobinMerge {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn merge(&self, inputs: &[SourceResult]) -> Vec<MergedDoc> {
        let mut cursors: Vec<(usize, &SourceResult)> = inputs.iter().map(|i| (0, i)).collect();
        let total: usize = inputs.iter().map(|i| i.results.documents.len()).sum();
        let mut out: Vec<MergedDoc> = Vec::with_capacity(total);
        let mut seen: HashMap<String, usize> = HashMap::new();
        let mut rank = 0usize;
        loop {
            let mut progressed = false;
            for (cursor, input) in cursors.iter_mut() {
                if *cursor >= input.results.documents.len() {
                    continue;
                }
                let d = &input.results.documents[*cursor];
                *cursor += 1;
                progressed = true;
                let Some(url) = d.linkage() else { continue };
                match seen.get(url) {
                    Some(&i) => {
                        let sid = source_id(input).to_string();
                        if !out[i].sources.contains(&sid) {
                            out[i].sources.push(sid);
                        }
                    }
                    None => {
                        seen.insert(url.to_string(), out.len());
                        out.push(MergedDoc {
                            linkage: url.to_string(),
                            title: doc_title(d),
                            score: total as f64 - rank as f64,
                            sources: vec![source_id(input).to_string()],
                        });
                        rank += 1;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        out
    }
}

/// Example 9's re-ranking: "discard the sources' scores, and compute a
/// new score for each document based on … the number of times that the
/// words in the ranking expression appear in the documents" — from the
/// `TermStats` the protocol requires, without retrieving any document.
#[derive(Debug, Clone, Copy, Default)]
pub struct TfMerge;

impl Merger for TfMerge {
    fn name(&self) -> &'static str {
        "termstats-tf"
    }

    fn merge(&self, inputs: &[SourceResult]) -> Vec<MergedDoc> {
        let mut scored = Vec::new();
        for input in inputs {
            for d in &input.results.documents {
                let tf_sum: f64 = d
                    .term_stats
                    .iter()
                    .map(|ts| f64::from(ts.term_frequency))
                    .sum();
                scored.push((tf_sum, d, source_id(input)));
            }
        }
        collect(scored)
    }
}

/// Global tf–idf re-ranking: score documents "as if they all belonged in
/// a single, large document source" (§4.2). Global document frequencies
/// come from summing each source's exported `Document-frequency`
/// statistics; global N is the summed collection size. Document length
/// normalization uses `DocCount`.
#[derive(Debug, Clone)]
pub struct TfIdfMerge {
    /// Global document frequency per term text (assembled by the caller
    /// from TermStats or content summaries).
    pub global_df: HashMap<String, u64>,
    /// Global number of documents.
    pub global_n: u64,
}

impl TfIdfMerge {
    /// Assemble global statistics from the inputs' own TermStats
    /// (df summed over sources) plus the total document counts.
    pub fn from_inputs(inputs: &[SourceResult], collection_sizes: &[u64]) -> Self {
        let mut global_df: HashMap<String, u64> = HashMap::new();
        for input in inputs {
            let mut seen_here: HashMap<&str, u64> = HashMap::new();
            for d in &input.results.documents {
                for ts in &d.term_stats {
                    // df is a per-source constant; record it once.
                    seen_here
                        .entry(ts.term.value.text.as_str())
                        .or_insert(u64::from(ts.document_frequency));
                }
            }
            for (term, df) in seen_here {
                *global_df.entry(term.to_string()).or_insert(0) += df;
            }
        }
        TfIdfMerge {
            global_df,
            global_n: collection_sizes.iter().sum::<u64>().max(1),
        }
    }
}

impl Merger for TfIdfMerge {
    fn name(&self) -> &'static str {
        "termstats-tfidf"
    }

    fn merge(&self, inputs: &[SourceResult]) -> Vec<MergedDoc> {
        let mut scored = Vec::new();
        for input in inputs {
            for d in &input.results.documents {
                let mut score = 0.0;
                for ts in &d.term_stats {
                    if ts.term_frequency == 0 {
                        continue;
                    }
                    let df = self
                        .global_df
                        .get(&ts.term.value.text)
                        .copied()
                        .unwrap_or(u64::from(ts.document_frequency).max(1));
                    let tf = 1.0 + f64::from(ts.term_frequency).ln();
                    let idf = (1.0 + self.global_n as f64 / df.max(1) as f64).ln();
                    score += tf * idf;
                }
                // Light length normalization so long documents do not
                // dominate purely by containing everything.
                let len = (d.doc_count as f64).max(1.0);
                scored.push((
                    score / len.sqrt().max(1.0).ln().max(1.0),
                    d,
                    source_id(input),
                ));
            }
        }
        collect(scored)
    }
}

/// CORI-style weighted merge (ref \[5\]): range-normalize per source, then
/// scale by the source's selection belief (`source_weight`), so
/// documents from more promising collections rank higher on ties.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightedMerge;

impl Merger for WeightedMerge {
    fn name(&self) -> &'static str {
        "belief-weighted"
    }

    fn merge(&self, inputs: &[SourceResult]) -> Vec<MergedDoc> {
        let normalized = NormalizedMerge;
        // Reuse range normalization per source, then scale.
        let mut scored = Vec::new();
        for input in inputs {
            for d in normalized.merge(std::slice::from_ref(input)) {
                scored.push((d.score * input.source_weight, d));
            }
        }
        let mut out: HashMap<String, MergedDoc> = HashMap::new();
        for (score, mut d) in scored {
            d.score = score;
            match out.get_mut(&d.linkage) {
                Some(existing) => {
                    if d.score > existing.score {
                        existing.score = d.score;
                    }
                    for s in d.sources {
                        if !existing.sources.contains(&s) {
                            existing.sources.push(s);
                        }
                    }
                }
                None => {
                    out.insert(d.linkage.clone(), d);
                }
            }
        }
        let mut v: Vec<MergedDoc> = out.into_values().collect();
        v.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.linkage.cmp(&b.linkage)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starts_proto::query::ast::QTerm;
    use starts_proto::{Field, TermStatsEntry};

    fn doc(url: &str, score: f64, stats: &[(&str, u32, u32)]) -> ResultDocument {
        ResultDocument {
            raw_score: Some(score),
            sources: vec![],
            fields: vec![
                (Field::Linkage, url.to_string()),
                (Field::Title, format!("Title of {url}")),
            ],
            term_stats: stats
                .iter()
                .map(|(t, tf, df)| TermStatsEntry {
                    term: QTerm::fielded(Field::BodyOfText, *t),
                    term_frequency: *tf,
                    term_weight: 0.0,
                    document_frequency: *df,
                })
                .collect(),
            doc_size_kb: 1,
            doc_count: 100,
        }
    }

    fn input(id: &str, range: (f64, f64), docs: Vec<ResultDocument>) -> SourceResult {
        SourceResult {
            metadata: SourceMetadata {
                source_id: id.to_string(),
                score_range: range,
                ..SourceMetadata::default()
            },
            results: QueryResults {
                sources: vec![id.to_string()],
                actual_filter: None,
                actual_ranking: None,
                documents: docs,
                trace: None,
                profile: None,
            },
            source_weight: 1.0,
        }
    }

    /// The paper's own scenario: S1 reports 0.3, S2 reports 1000 for the
    /// same query (§3.2).
    fn paper_scenario() -> Vec<SourceResult> {
        vec![
            // Example 8: doc at S1, score 0.82, tf 10+15.
            input(
                "Source-1",
                (0.0, 1.0),
                vec![doc(
                    "http://x/dood",
                    0.82,
                    &[("distributed", 10, 190), ("databases", 15, 232)],
                )],
            ),
            // Example 9: doc at S2, score 0.27, tf 20+34 — the BETTER
            // match despite the lower raw score.
            input(
                "Source-2",
                (0.0, 1.0),
                vec![doc(
                    "http://x/lagunita",
                    0.27,
                    &[("distributed", 20, 901), ("databases", 34, 788)],
                )],
            ),
        ]
    }

    #[test]
    fn raw_score_merge_is_fooled() {
        let merged = RawScoreMerge.merge(&paper_scenario());
        assert_eq!(merged[0].linkage, "http://x/dood");
    }

    #[test]
    fn example9_tf_merge_reverses_the_rank() {
        // "such a metasearcher would rank the Source-2 document higher
        // than the Source-1 document, since the former … contains the
        // words 20 and 34 times … whereas the latter only 10 and 15."
        let merged = TfMerge.merge(&paper_scenario());
        assert_eq!(merged[0].linkage, "http://x/lagunita");
        assert_eq!(merged[0].score, 54.0);
        assert_eq!(merged[1].score, 25.0);
    }

    #[test]
    fn normalized_merge_handles_vendor_scales() {
        // A 1000-scale vendor vs a [0,1] vendor: raw merge puts every
        // vendor document first; normalization repairs it.
        let inputs = vec![
            input("Unit", (0.0, 1.0), vec![doc("u/best", 0.9, &[])]),
            input(
                "Grand",
                (0.0, 1000.0),
                vec![doc("g/meh", 150.0, &[]), doc("g/good", 800.0, &[])],
            ),
        ];
        let raw = RawScoreMerge.merge(&inputs);
        assert_eq!(raw[0].linkage, "g/good");
        assert_eq!(raw[1].linkage, "g/meh"); // 150 > 0.9: nonsense
        let norm = NormalizedMerge.merge(&inputs);
        assert_eq!(norm[0].linkage, "u/best"); // 0.9 > 0.8
        assert_eq!(norm[1].linkage, "g/good");
        assert_eq!(norm[2].linkage, "g/meh");
    }

    #[test]
    fn normalized_merge_with_unbounded_range() {
        let inputs = vec![input(
            "BM25",
            (0.0, f64::INFINITY),
            vec![doc("a", 7.5, &[]), doc("b", 2.5, &[])],
        )];
        let merged = NormalizedMerge.merge(&inputs);
        assert!((merged[0].score - 1.0).abs() < 1e-9); // max-normalized
        assert!((merged[1].score - 2.5 / 7.5).abs() < 1e-9);
    }

    #[test]
    fn round_robin_interleaves() {
        let inputs = vec![
            input(
                "A",
                (0.0, 1.0),
                vec![doc("a1", 0.9, &[]), doc("a2", 0.8, &[])],
            ),
            input(
                "B",
                (0.0, 1.0),
                vec![doc("b1", 0.9, &[]), doc("b2", 0.8, &[])],
            ),
        ];
        let merged = RoundRobinMerge.merge(&inputs);
        let urls: Vec<&str> = merged.iter().map(|d| d.linkage.as_str()).collect();
        assert_eq!(urls, vec!["a1", "b1", "a2", "b2"]);
        // Scores strictly decrease.
        for w in merged.windows(2) {
            assert!(w[0].score > w[1].score);
        }
    }

    #[test]
    fn duplicates_deduplicated_across_sources() {
        let inputs = vec![
            input("A", (0.0, 1.0), vec![doc("shared", 0.5, &[])]),
            input("B", (0.0, 1.0), vec![doc("shared", 0.8, &[])]),
        ];
        for merger in [&RawScoreMerge as &dyn Merger, &NormalizedMerge, &TfMerge] {
            let merged = merger.merge(&inputs);
            assert_eq!(merged.len(), 1, "{} failed dedup", merger.name());
            assert_eq!(merged[0].sources.len(), 2);
        }
        let rr = RoundRobinMerge.merge(&inputs);
        assert_eq!(rr.len(), 1);
        assert_eq!(rr[0].sources.len(), 2);
    }

    #[test]
    fn tfidf_merge_uses_global_df() {
        let inputs = paper_scenario();
        let merger = TfIdfMerge::from_inputs(&inputs, &[1000, 2000]);
        // Global df assembled: distributed 190+901, databases 232+788.
        assert_eq!(merger.global_df["distributed"], 1091);
        assert_eq!(merger.global_df["databases"], 1020);
        assert_eq!(merger.global_n, 3000);
        let merged = merger.merge(&inputs);
        assert_eq!(merged[0].linkage, "http://x/lagunita");
    }

    #[test]
    fn weighted_merge_respects_source_belief() {
        let mut inputs = vec![
            input("Trusted", (0.0, 1.0), vec![doc("t", 0.6, &[])]),
            input("Dubious", (0.0, 1.0), vec![doc("d", 0.8, &[])]),
        ];
        inputs[0].source_weight = 1.0;
        inputs[1].source_weight = 0.5;
        let merged = WeightedMerge.merge(&inputs);
        // 0.6×1.0 > 0.8×0.5.
        assert_eq!(merged[0].linkage, "t");
    }

    #[test]
    fn empty_inputs() {
        for merger in [
            &RawScoreMerge as &dyn Merger,
            &NormalizedMerge,
            &TfMerge,
            &RoundRobinMerge,
        ] {
            assert!(merger.merge(&[]).is_empty(), "{}", merger.name());
        }
    }

    #[test]
    fn titles_carried_through() {
        let merged = RawScoreMerge.merge(&paper_scenario());
        assert_eq!(merged[0].title.as_deref(), Some("Title of http://x/dood"));
    }

    /// A messier fixture for the bounded merge: score ties within and
    /// across sources, cross-source duplicates, mixed scales.
    fn tied_inputs() -> Vec<SourceResult> {
        vec![
            input(
                "A",
                (0.0, 1.0),
                vec![
                    doc("u/zz", 0.9, &[]),
                    doc("u/aa", 0.9, &[]),
                    doc("u/shared", 0.5, &[]),
                    doc("u/low", 0.1, &[]),
                ],
            ),
            input(
                "B",
                (0.0, 1000.0),
                vec![
                    doc("u/shared", 900.0, &[]),
                    doc("u/mm", 900.0, &[]),
                    doc("u/aa", 500.0, &[]),
                ],
            ),
        ]
    }

    #[test]
    fn bounded_merge_equals_full_merge_truncated() {
        let inputs = tied_inputs();
        for merger in [&RawScoreMerge as &dyn Merger, &NormalizedMerge] {
            let full = merger.merge(&inputs);
            for k in 0..=full.len() + 1 {
                let (bounded, stats) = merger.merge_top_k(&inputs, k);
                assert_eq!(
                    bounded,
                    full[..k.min(full.len())],
                    "{} k={k}",
                    merger.name()
                );
                assert_eq!(stats.candidates, 7, "{}", merger.name());
                assert_eq!(stats.distinct, 5, "{}", merger.name());
                assert_eq!(stats.duplicates(), 2, "{}", merger.name());
            }
        }
    }

    #[test]
    fn bounded_merge_falls_back_on_unsorted_input() {
        // Ascending raw scores: not a ranked list, so the bounded path
        // must detect it and fall back to the exact full merge.
        let inputs = vec![input(
            "A",
            (0.0, 1.0),
            vec![doc("u/a", 0.1, &[]), doc("u/b", 0.9, &[])],
        )];
        let full = RawScoreMerge.merge(&inputs);
        let (bounded, stats) = RawScoreMerge.merge_top_k(&inputs, 1);
        assert_eq!(bounded, full[..1]);
        assert_eq!((stats.candidates, stats.distinct), (2, 2));
    }

    #[test]
    fn default_merge_top_k_truncates_any_strategy() {
        let inputs = tied_inputs();
        for merger in [&TfMerge as &dyn Merger, &RoundRobinMerge, &WeightedMerge] {
            let full = merger.merge(&inputs);
            let (bounded, stats) = merger.merge_top_k(&inputs, 2);
            assert_eq!(bounded, full[..2], "{}", merger.name());
            assert_eq!(stats.candidates, 7, "{}", merger.name());
        }
    }
}
