#![warn(missing_docs)]

//! `starts-meta` — a metasearcher built on the STARTS protocol.
//!
//! §1: a metasearcher performs three tasks — "choosing the best sources
//! to evaluate a query, evaluating the query at these sources, and
//! merging the query results from these sources." This crate implements
//! all three, consuming exactly the information STARTS makes sources
//! export:
//!
//! * [`catalog`] — periodic discovery: resource listings, source
//!   metadata, content summaries, sample-database results (§3.4);
//! * [`cache`] — a TTL'd cache over those fetches, so "periodically"
//!   means one wire round-trip per source per refresh window;
//! * [`select`] — source selection from content summaries: bGlOSS and
//!   gGlOSS (the paper's refs \[7, 8\]), CORI (ref \[5\]), plus naive and
//!   cost-aware strategies (§3.3);
//! * [`adapt`] — client-side query adaptation per source capability,
//!   with the least-common-denominator strategy §4.1.1 warns about as a
//!   baseline (§3.1, refs \[3, 4\]);
//! * [`merge`] — rank merging: raw-score (broken), score-range
//!   normalized, Example 9's term-frequency re-ranking, global tf–idf
//!   re-ranking from TermStats, round-robin interleaving (ref \[6\]), and
//!   CORI-weighted merging (§3.2, §4.2);
//! * [`calibrate`] — black-box score calibration from
//!   `SampleDatabaseResults` (§4.2), including a first-class
//!   sample-calibrated merge strategy;
//! * [`eval`] — precision/recall/rank-correlation metrics against
//!   generator-known relevance;
//! * [`savvy`] — a SavvySearch-style learned selector (§5);
//! * [`pipeline`] — the pipeline decomposed into reusable stages
//!   (plan / per-source dispatch / merge) shared by the scoped
//!   metasearcher and the `starts-serve` executor pool;
//! * [`metasearcher`] — the end-to-end pipeline over the simulated
//!   network, with parallel fan-out and latency/cost accounting.

pub mod adapt;
pub mod cache;
pub mod calibrate;
pub mod catalog;
pub mod eval;
pub mod merge;
pub mod metasearcher;
pub mod pipeline;
pub mod savvy;
pub mod select;

pub use cache::CatalogCache;
pub use catalog::{Catalog, CatalogEntry};
pub use merge::{MergeStats, MergedDoc, Merger, SourceResult};
pub use metasearcher::{MetaConfig, MetaResponse, Metasearcher, QueryStats};
pub use select::Selector;
