//! Black-box score calibration from `SampleDatabaseResults` (§4.2).
//!
//! "The metasearchers would treat each source as a 'black box' that
//! receives queries and produces document ranks. However, the
//! metasearchers would try to approximate how each source ranks
//! documents using their knowledge of what is in the sample collection.
//! So, if the sample queries are carefully designed, the metasearchers
//! might be able to draw some conclusions on how to calibrate the query
//! results in order to produce a single document rank."
//!
//! Implementation: every source publishes results of the same fixed
//! queries over the same fixed sample collection. Pairing two sources'
//! scores *for the same sample document under the same query* gives a
//! paired sample `(x_i, y_i)`; least-squares fitting `y ≈ α·x + β` gives
//! an affine map from one source's score scale into the other's.

use std::collections::HashMap;

use starts_proto::{Query, QueryResults};

/// An affine score map `y = alpha·x + beta`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreMap {
    /// Scale.
    pub alpha: f64,
    /// Offset.
    pub beta: f64,
    /// Number of paired observations behind the fit.
    pub n: usize,
    /// Pearson correlation of the paired scores (fit quality).
    pub correlation: f64,
}

impl ScoreMap {
    /// Identity map.
    pub fn identity() -> Self {
        ScoreMap {
            alpha: 1.0,
            beta: 0.0,
            n: 0,
            correlation: 1.0,
        }
    }

    /// Apply the map.
    pub fn apply(&self, score: f64) -> f64 {
        self.alpha * score + self.beta
    }
}

/// Collect `(query index, linkage) → score` pairs from sample results.
fn score_table(samples: &[(Query, QueryResults)]) -> HashMap<(usize, String), f64> {
    let mut table = HashMap::new();
    for (qi, (_, results)) in samples.iter().enumerate() {
        for d in &results.documents {
            if let (Some(url), Some(score)) = (d.linkage(), d.raw_score) {
                table.insert((qi, url.to_string()), score);
            }
        }
    }
    table
}

/// Fit a map from `from`'s score scale into `to`'s, using their sample
/// results. Returns `None` if fewer than two paired observations exist
/// or the `from` scores are constant.
pub fn fit_score_map(
    from: &[(Query, QueryResults)],
    to: &[(Query, QueryResults)],
) -> Option<ScoreMap> {
    let from_table = score_table(from);
    let to_table = score_table(to);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (key, x) in &from_table {
        if let Some(y) = to_table.get(key) {
            xs.push(*x);
            ys.push(*y);
        }
    }
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = xs.iter().sum::<f64>() / nf;
    let mean_y = ys.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(&ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    if sxx <= 0.0 {
        return None;
    }
    let alpha = sxy / sxx;
    let beta = mean_y - alpha * mean_x;
    let correlation = if syy > 0.0 {
        sxy / (sxx * syy).sqrt()
    } else {
        1.0
    };
    Some(ScoreMap {
        alpha,
        beta,
        n,
        correlation,
    })
}

/// A merge strategy that maps every source's raw scores into a common
/// reference scale using sample-results score maps, then merges like
/// [`crate::merge::RawScoreMerge`] — calibration as a first-class
/// merger.
#[derive(Debug, Clone, Default)]
pub struct CalibratedMerge {
    /// Per-source affine maps into the reference scale.
    pub maps: std::collections::HashMap<String, ScoreMap>,
}

impl CalibratedMerge {
    /// Fit maps for every catalogued source against a reference source's
    /// sample results (conventionally the first entry with samples).
    /// Sources without samples, or without enough paired observations,
    /// get the identity map.
    pub fn from_catalog(catalog: &crate::catalog::Catalog) -> Self {
        let reference = catalog
            .entries
            .iter()
            .find(|e| !e.sample_results.is_empty())
            .map(|e| e.sample_results.clone())
            .unwrap_or_default();
        let mut maps = std::collections::HashMap::new();
        for entry in &catalog.entries {
            let map = if entry.sample_results.is_empty() || reference.is_empty() {
                ScoreMap::identity()
            } else {
                fit_score_map(&entry.sample_results, &reference).unwrap_or_else(ScoreMap::identity)
            };
            maps.insert(entry.id.clone(), map);
        }
        CalibratedMerge { maps }
    }
}

impl crate::merge::Merger for CalibratedMerge {
    fn name(&self) -> &'static str {
        "sample-calibrated"
    }

    fn merge(&self, inputs: &[crate::merge::SourceResult]) -> Vec<crate::merge::MergedDoc> {
        let calibrated: Vec<crate::merge::SourceResult> = inputs
            .iter()
            .map(|input| {
                let map = self
                    .maps
                    .get(&input.metadata.source_id)
                    .copied()
                    .unwrap_or_else(ScoreMap::identity);
                let mut input = input.clone();
                for d in &mut input.results.documents {
                    if let Some(s) = d.raw_score {
                        d.raw_score = Some(map.apply(s));
                    }
                }
                input
            })
            .collect();
        crate::merge::RawScoreMerge.merge(&calibrated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starts_source::sample::sample_results;
    use starts_source::SourceConfig;

    #[test]
    fn identity_between_identical_personalities() {
        let a = sample_results(&SourceConfig::new("A"));
        let b = sample_results(&SourceConfig::new("B"));
        let map = fit_score_map(&a, &b).expect("overlapping samples");
        assert!(map.n >= 4);
        assert!((map.alpha - 1.0).abs() < 1e-9, "alpha {}", map.alpha);
        assert!(map.beta.abs() < 1e-9, "beta {}", map.beta);
        assert!(map.correlation > 0.999);
    }

    #[test]
    fn vendor_1000_maps_back_to_unit_scale() {
        // The §3.2 pair: a [0,1] engine and a ×1000 engine. The sample
        // collection exposes the relationship.
        let unit = sample_results(&SourceConfig::new("Unit"));
        let mut grand_cfg = SourceConfig::new("Grand");
        grand_cfg.engine.ranking_id = "Vendor-K".to_string();
        let grand = sample_results(&grand_cfg);
        let map = fit_score_map(&grand, &unit).expect("paired docs");
        // Scores shrink by roughly three orders of magnitude.
        assert!(map.alpha < 0.01, "alpha {}", map.alpha);
        assert!(map.alpha > 0.0);
        assert!(map.correlation > 0.8, "correlation {}", map.correlation);
        // A calibrated 1000-score lands near the unit engine's top end.
        let mapped = map.apply(1000.0);
        assert!(
            (0.05..=1.5).contains(&mapped),
            "1000 mapped to {mapped} (alpha {}, beta {})",
            map.alpha,
            map.beta
        );
    }

    #[test]
    fn unrelated_rankers_have_lower_correlation_than_identical() {
        let unit = sample_results(&SourceConfig::new("Unit"));
        let mut bm = SourceConfig::new("BM");
        bm.engine.ranking_id = "Okapi-1".to_string();
        let okapi = sample_results(&bm);
        let same = fit_score_map(&unit, &unit).unwrap();
        let cross = fit_score_map(&okapi, &unit).unwrap();
        assert!(same.correlation >= cross.correlation);
        assert!(cross.n >= 2);
    }

    #[test]
    fn too_little_overlap() {
        let a = sample_results(&SourceConfig::new("A"));
        assert!(fit_score_map(&a, &[]).is_none());
        assert!(fit_score_map(&[], &a).is_none());
    }

    #[test]
    fn calibrated_merge_tames_vendor_scales() {
        use crate::catalog::{Catalog, CatalogEntry};
        use crate::merge::{Merger, RawScoreMerge, SourceResult};
        use starts_net::LinkProfile;
        use starts_proto::summary::ContentSummary;
        use starts_proto::{Field, QueryResults, ResultDocument, SourceMetadata};

        let unit_cfg = SourceConfig::new("Unit");
        let mut grand_cfg = SourceConfig::new("Grand");
        grand_cfg.engine.ranking_id = "Vendor-K".to_string();
        let entry = |cfg: &SourceConfig| CatalogEntry {
            id: cfg.id.clone(),
            metadata_url: String::new(),
            metadata: SourceMetadata {
                source_id: cfg.id.clone(),
                ..SourceMetadata::default()
            },
            summary: ContentSummary::default(),
            sample_results: sample_results(cfg),
            link: LinkProfile::default(),
        };
        let catalog = Catalog {
            entries: vec![entry(&unit_cfg), entry(&grand_cfg)],
        };
        let merger = CalibratedMerge::from_catalog(&catalog);
        // The Vendor-K map shrinks by ~1000x; Unit is identity.
        assert!((merger.maps["Unit"].alpha - 1.0).abs() < 1e-9);
        assert!(merger.maps["Grand"].alpha < 0.01);
        // A mediocre Grand document (score 300/1000) must NOT outrank a
        // strong Unit document (score 0.4) after calibration.
        let doc = |url: &str, score: f64| ResultDocument {
            raw_score: Some(score),
            sources: vec![],
            fields: vec![(Field::Linkage, url.to_string())],
            term_stats: vec![],
            doc_size_kb: 1,
            doc_count: 10,
        };
        let inputs = vec![
            SourceResult {
                metadata: SourceMetadata {
                    source_id: "Unit".to_string(),
                    ..SourceMetadata::default()
                },
                results: QueryResults {
                    documents: vec![doc("u/strong", 0.4)],
                    ..QueryResults::default()
                },
                source_weight: 1.0,
            },
            SourceResult {
                metadata: SourceMetadata {
                    source_id: "Grand".to_string(),
                    ..SourceMetadata::default()
                },
                results: QueryResults {
                    documents: vec![doc("g/meh", 300.0)],
                    ..QueryResults::default()
                },
                source_weight: 1.0,
            },
        ];
        let raw = RawScoreMerge.merge(&inputs);
        assert_eq!(raw[0].linkage, "g/meh"); // 300 > 0.4: the §3.2 trap
        let cal = merger.merge(&inputs);
        assert_eq!(cal[0].linkage, "u/strong", "calibration must fix the order");
    }

    #[test]
    fn calibrated_merge_without_samples_is_raw() {
        use crate::catalog::Catalog;
        let merger = CalibratedMerge::from_catalog(&Catalog::default());
        assert!(merger.maps.is_empty());
    }

    #[test]
    fn apply_and_identity() {
        let id = ScoreMap::identity();
        assert_eq!(id.apply(0.73), 0.73);
        let m = ScoreMap {
            alpha: 0.001,
            beta: 0.0,
            n: 10,
            correlation: 1.0,
        };
        assert!((m.apply(1000.0) - 1.0).abs() < 1e-12);
    }
}
