//! Source selection: "choosing the best sources to evaluate a query"
//! (§1), using the exported content summaries (§3.3, §4.3.2).
//!
//! The paper delegates the algorithms to its references: GlOSS \[7\] for
//! Boolean queries, gGlOSS \[8\] for vector-space queries; CORI-style
//! collection ranking comes from Callan et al. \[5\]. All are implemented
//! here over exactly the data a STARTS summary provides (per-term
//! document frequencies and the collection size), plus cost-aware and
//! naive baselines for the X6 experiment.

use starts_proto::summary::ContentSummary;

use crate::catalog::{Catalog, CatalogEntry};

/// A selection strategy: scores every catalogued source for a query
/// (higher = more promising). Queries are presented as bags of
/// `(field, term)` pairs — the shape of both filter and ranking terms
/// after normalization.
pub trait Selector: Send + Sync {
    /// A short name for reports.
    fn name(&self) -> &'static str;

    /// Score one source. `terms` are `(field, word)` pairs.
    fn score_source(
        &self,
        entry: &CatalogEntry,
        catalog: &Catalog,
        terms: &[(Option<&str>, &str)],
    ) -> f64;

    /// Rank all sources, best first. Sources scoring 0 are kept (they
    /// rank last) so callers can still force coverage.
    fn rank(&self, catalog: &Catalog, terms: &[(Option<&str>, &str)]) -> Vec<(usize, f64)> {
        let mut scored: Vec<(usize, f64)> = catalog
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (i, self.score_source(e, catalog, terms)))
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        scored
    }
}

/// bGlOSS (Gravano, García-Molina, Tomasic 1994 — ref \[7\]): estimate the
/// number of documents matching a conjunctive query under the term
/// independence assumption:
///
/// `est(s, q) = n_s · Π_t (df_t(s) / n_s)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct BGloss;

impl Selector for BGloss {
    fn name(&self) -> &'static str {
        "bGlOSS"
    }

    fn score_source(
        &self,
        entry: &CatalogEntry,
        _catalog: &Catalog,
        terms: &[(Option<&str>, &str)],
    ) -> f64 {
        let n = f64::from(entry.summary.num_docs);
        if n == 0.0 || terms.is_empty() {
            return 0.0;
        }
        let mut est = n;
        for (field, term) in terms {
            est *= f64::from(summary_df(&entry.summary, *field, term)) / n;
        }
        est
    }
}

/// gGlOSS (Gravano & García-Molina 1995 — ref \[8\]), `Sum(0)` flavour:
/// the goodness of a source is the summed within-source weight mass of
/// the query terms. With the statistics a STARTS summary exports, the
/// per-term mass is `df_t(s) · idf_t(s)` with
/// `idf_t(s) = ln(1 + n_s/df_t(s))`, weighted by the query.
#[derive(Debug, Clone, Copy, Default)]
pub struct GGlossSum;

impl Selector for GGlossSum {
    fn name(&self) -> &'static str {
        "gGlOSS-Sum"
    }

    fn score_source(
        &self,
        entry: &CatalogEntry,
        _catalog: &Catalog,
        terms: &[(Option<&str>, &str)],
    ) -> f64 {
        let n = f64::from(entry.summary.num_docs);
        if n == 0.0 {
            return 0.0;
        }
        terms
            .iter()
            .map(|(field, term)| {
                let df = f64::from(summary_df(&entry.summary, *field, term));
                if df == 0.0 {
                    0.0
                } else {
                    df * (1.0 + n / df).ln()
                }
            })
            .sum()
    }
}

/// CORI collection ranking (Callan, Lu & Croft 1995 — ref \[5\]): a belief
/// per source,
///
/// `T = df / (df + 50 + 150·cw/avg_cw)`,
/// `I = ln((|C| + 0.5)/cf) / ln(|C| + 1)`,
/// `belief = mean_t (b + (1-b)·T·I)` with `b = 0.4`,
///
/// where `cf` is the number of collections containing the term and `cw`
/// a collection-size proxy (document count, from the summaries).
#[derive(Debug, Clone, Copy)]
pub struct Cori {
    /// The default belief.
    pub b: f64,
}

impl Default for Cori {
    fn default() -> Self {
        Cori { b: 0.4 }
    }
}

impl Selector for Cori {
    fn name(&self) -> &'static str {
        "CORI"
    }

    fn score_source(
        &self,
        entry: &CatalogEntry,
        catalog: &Catalog,
        terms: &[(Option<&str>, &str)],
    ) -> f64 {
        if terms.is_empty() {
            return 0.0;
        }
        let n_collections = catalog.len() as f64;
        let avg_cw = (catalog.total_docs() as f64 / n_collections.max(1.0)).max(1.0);
        let cw = f64::from(entry.summary.num_docs);
        let mut belief = 0.0;
        for (field, term) in terms {
            let df = f64::from(summary_df(&entry.summary, *field, term));
            let cf = catalog
                .entries
                .iter()
                .filter(|e| summary_df(&e.summary, *field, term) > 0)
                .count() as f64;
            let t = df / (df + 50.0 + 150.0 * cw / avg_cw);
            let i = if cf > 0.0 {
                ((n_collections + 0.5) / cf).ln() / (n_collections + 1.0).ln()
            } else {
                0.0
            };
            belief += self.b + (1.0 - self.b) * t * i;
        }
        belief / terms.len() as f64
    }
}

/// Naive baseline: prefer bigger sources, regardless of the query (what
/// a metasearcher without summaries is reduced to).
#[derive(Debug, Clone, Copy, Default)]
pub struct BySize;

impl Selector for BySize {
    fn name(&self) -> &'static str {
        "by-size"
    }

    fn score_source(
        &self,
        entry: &CatalogEntry,
        _catalog: &Catalog,
        _terms: &[(Option<&str>, &str)],
    ) -> f64 {
        f64::from(entry.summary.num_docs)
    }
}

/// Cost-aware wrapper (§3.3: fees and response times matter): divides an
/// inner selector's goodness by a cost proxy
/// `1 + λ·latency_s + μ·fee`.
pub struct CostAware<S> {
    /// The goodness estimator.
    pub inner: S,
    /// Weight of latency (per second).
    pub lambda: f64,
    /// Weight of monetary cost (per unit fee).
    pub mu: f64,
}

impl<S: Selector> Selector for CostAware<S> {
    fn name(&self) -> &'static str {
        "cost-aware"
    }

    fn score_source(
        &self,
        entry: &CatalogEntry,
        catalog: &Catalog,
        terms: &[(Option<&str>, &str)],
    ) -> f64 {
        let goodness = self.inner.score_source(entry, catalog, terms);
        let cost = 1.0
            + self.lambda * f64::from(entry.link.latency_ms) / 1000.0
            + self.mu * entry.link.cost_per_query;
        goodness / cost
    }
}

/// Health-aware wrapper (§3.3: sources come and go, and responsiveness
/// varies): multiplies an inner selector's goodness by the source's
/// rolling health score from the [`starts_obs::HealthBoard`] the metasearcher
/// maintains — a degraded source still gets `floor` of its goodness, so
/// it keeps receiving occasional probes and can recover.
///
/// When coupled to a [`starts_obs::Monitor`] (via
/// [`HealthAware::with_monitor`]), a source with a *firing* alert is
/// hard-demoted straight to the probe floor: an alert is a confirmed,
/// debounced judgement of degradation, stronger than the raw health
/// score it was derived from. The source keeps receiving the floor's
/// trickle of probes, so recovery resolves the alert and restores it.
pub struct HealthAware<S> {
    /// The goodness estimator.
    pub inner: S,
    /// The scoreboard to consult (share the metasearcher's via `Arc`).
    pub board: std::sync::Arc<starts_obs::HealthBoard>,
    /// The alerting layer to consult for firing per-source alerts
    /// (share the `SimNet`'s via `Arc`); `None` disables the coupling.
    pub monitor: Option<std::sync::Arc<starts_obs::Monitor>>,
    /// Minimum health multiplier in `(0, 1]`; keeps degraded sources
    /// probe-able instead of starving them forever.
    pub floor: f64,
}

impl<S: Selector> HealthAware<S> {
    /// Wrap a selector with the default probe floor (0.01).
    pub fn new(inner: S, board: std::sync::Arc<starts_obs::HealthBoard>) -> Self {
        HealthAware {
            inner,
            board,
            monitor: None,
            floor: 0.01,
        }
    }

    /// Wrap a selector and couple it to a monitor: sources with firing
    /// alerts are demoted to the probe floor outright.
    pub fn with_monitor(
        inner: S,
        board: std::sync::Arc<starts_obs::HealthBoard>,
        monitor: std::sync::Arc<starts_obs::Monitor>,
    ) -> Self {
        HealthAware {
            inner,
            board,
            monitor: Some(monitor),
            floor: 0.01,
        }
    }
}

impl<S: Selector> Selector for HealthAware<S> {
    fn name(&self) -> &'static str {
        "health-aware"
    }

    fn score_source(
        &self,
        entry: &CatalogEntry,
        catalog: &Catalog,
        terms: &[(Option<&str>, &str)],
    ) -> f64 {
        let goodness = self.inner.score_source(entry, catalog, terms);
        if let Some(monitor) = &self.monitor {
            if monitor.is_source_firing(&entry.id) {
                return goodness * self.floor;
            }
        }
        goodness * self.board.score(&entry.id).max(self.floor)
    }
}

/// Estimate df for a term in a summary regardless of stemming mismatch:
/// if the summary is stemmed, look up the stem.
pub fn summary_df(summary: &ContentSummary, field: Option<&str>, term: &str) -> u32 {
    if summary.stemmed {
        summary.df(field, &starts_text::porter_stem(term))
    } else {
        summary.df(field, term)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starts_net::LinkProfile;
    use starts_proto::summary::{SummarySection, TermSummary};
    use starts_proto::SourceMetadata;

    fn entry(id: &str, num_docs: u32, terms: &[(&str, u32)], link: LinkProfile) -> CatalogEntry {
        CatalogEntry {
            id: id.to_string(),
            metadata_url: String::new(),
            metadata: SourceMetadata {
                source_id: id.to_string(),
                ..SourceMetadata::default()
            },
            summary: ContentSummary {
                num_docs,
                sections: vec![SummarySection {
                    field: None,
                    language: None,
                    terms: terms
                        .iter()
                        .map(|(t, df)| TermSummary {
                            term: (*t).to_string(),
                            total_postings: Some(u64::from(*df) * 2),
                            doc_freq: Some(*df),
                        })
                        .collect(),
                }],
                ..ContentSummary::default()
            },
            sample_results: Vec::new(),
            link,
        }
    }

    fn catalog() -> Catalog {
        Catalog {
            entries: vec![
                // CS source: "databases" very common.
                entry(
                    "CS",
                    1000,
                    &[("databases", 800), ("distributed", 300), ("cooking", 1)],
                    LinkProfile::default(),
                ),
                // Cooking source: "databases" rare.
                entry(
                    "Food",
                    1000,
                    &[("databases", 5), ("cooking", 700)],
                    LinkProfile::default(),
                ),
                // Small mixed source.
                entry(
                    "Tiny",
                    50,
                    &[("databases", 10), ("distributed", 10)],
                    LinkProfile {
                        latency_ms: 10,
                        cost_per_query: 0.0,
                    },
                ),
            ],
        }
    }

    #[test]
    fn bgloss_estimates_conjunction_size() {
        let c = catalog();
        let terms = [(None, "databases"), (None, "distributed")];
        let s = BGloss;
        let cs = s.score_source(&c.entries[0], &c, &terms);
        // 1000 · (800/1000) · (300/1000) = 240.
        assert!((cs - 240.0).abs() < 1e-9);
        let food = s.score_source(&c.entries[1], &c, &terms);
        assert_eq!(food, 0.0); // no "distributed" at all
        let ranked = s.rank(&c, &terms);
        assert_eq!(ranked[0].0, 0, "CS source must rank first");
    }

    #[test]
    fn ggloss_prefers_topic_source() {
        let c = catalog();
        let s = GGlossSum;
        let db = s.rank(&c, &[(None, "databases")]);
        assert_eq!(db[0].0, 0);
        let cook = s.rank(&c, &[(None, "cooking")]);
        assert_eq!(cook[0].0, 1);
    }

    #[test]
    fn cori_discriminates_and_stays_bounded() {
        let c = catalog();
        let s = Cori::default();
        let terms = [(None, "cooking")];
        let food = s.score_source(&c.entries[1], &c, &terms);
        let cs = s.score_source(&c.entries[0], &c, &terms);
        assert!(food > cs, "{food} vs {cs}");
        for e in &c.entries {
            let v = s.score_source(e, &c, &terms);
            assert!((0.0..=1.0).contains(&v), "belief out of range: {v}");
        }
    }

    #[test]
    fn by_size_ignores_query() {
        let c = catalog();
        let s = BySize;
        let a = s.rank(&c, &[(None, "databases")]);
        let b = s.rank(&c, &[(None, "cooking")]);
        assert_eq!(a, b);
        assert_ne!(a[0].0, 2, "tiny source must not lead");
    }

    #[test]
    fn cost_aware_demotes_expensive_sources() {
        let mut c = catalog();
        // Make the CS source expensive and slow (a Dialog-like service).
        c.entries[0].link = LinkProfile {
            latency_ms: 2000,
            cost_per_query: 10.0,
        };
        let plain = GGlossSum;
        let costed = CostAware {
            inner: GGlossSum,
            lambda: 1.0,
            mu: 10.0,
        };
        let terms = [(None, "databases")];
        assert_eq!(plain.rank(&c, &terms)[0].0, 0);
        // Under cost-awareness the free Tiny source can win despite fewer
        // matching documents.
        let ranked = costed.rank(&c, &terms);
        assert_ne!(ranked[0].0, 0, "expensive source still first: {ranked:?}");
    }

    #[test]
    fn health_aware_demotes_flaky_sources_but_keeps_probing() {
        use starts_obs::{HealthBoard, SourceOutcome};
        let c = catalog();
        let board = std::sync::Arc::new(HealthBoard::default());
        // CS keeps failing; Food answers fast.
        for _ in 0..20 {
            board.record("CS", SourceOutcome::failed());
            board.record("Food", SourceOutcome::ok(20));
        }
        let plain = GGlossSum;
        let healthy = HealthAware::new(GGlossSum, std::sync::Arc::clone(&board));
        let terms = [(None, "databases")];
        // Plain ranking prefers CS (it has the term mass)…
        assert_eq!(plain.rank(&c, &terms)[0].0, 0);
        // …health-awareness flips it to the reliable source.
        let ranked = healthy.rank(&c, &terms);
        assert_ne!(ranked[0].0, 0, "dead source still first: {ranked:?}");
        // But the floor keeps the flaky source scoreable (probe-able).
        let cs = healthy.score_source(&c.entries[0], &c, &terms);
        assert!(cs > 0.0, "floored score must stay positive");
        // Unseen sources are not penalized at all.
        let tiny_plain = plain.score_source(&c.entries[2], &c, &terms);
        let tiny_healthy = healthy.score_source(&c.entries[2], &c, &terms);
        assert!((tiny_plain - tiny_healthy).abs() < 1e-12);
    }

    #[test]
    fn firing_alert_hard_demotes_to_the_probe_floor() {
        use starts_obs::monitor::{
            Aspect, ManualClock, MonitorConfig, SloOp, SloSpec, StoreConfig,
        };
        use starts_obs::{HealthBoard, Monitor, Registry, SourceOutcome};
        let c = catalog();
        let board = std::sync::Arc::new(HealthBoard::default());
        // The board sees CS as perfectly healthy...
        for _ in 0..10 {
            board.record("CS", SourceOutcome::ok(10));
        }
        // ...but the monitor has a firing per-source alert about it.
        let clock = std::sync::Arc::new(ManualClock::new(1_000));
        let monitor = std::sync::Arc::new(Monitor::new(MonitorConfig {
            store: StoreConfig {
                step_ms: 1_000,
                retention: 16,
            },
            slos: vec![SloSpec {
                short_window: 1,
                long_window: 2,
                for_ms: 0,
                ..SloSpec::new(
                    "source-error-rate",
                    "health.error_rate",
                    &[("source", "*")],
                    Aspect::Value,
                    SloOp::Lt,
                    0.01,
                )
            }],
            anomaly: starts_obs::monitor::AnomalyConfig {
                metrics: Vec::new(),
                ..Default::default()
            },
            clock: clock.clone(),
            log_path: None,
            events_kept: 16,
        }));
        let reg = Registry::new();
        let gauge = reg.gauge_with("health.error_rate", &[("source", "CS")]);
        for _ in 0..3 {
            gauge.set(1.0);
            clock.advance(1_000);
            monitor.tick(&reg);
        }
        assert!(monitor.is_source_firing("CS"));

        let plain = HealthAware::new(GGlossSum, std::sync::Arc::clone(&board));
        let coupled = HealthAware::with_monitor(GGlossSum, board, monitor);
        let terms = [(None, "databases")];
        let uncoupled_score = plain.score_source(&c.entries[0], &c, &terms);
        let demoted = coupled.score_source(&c.entries[0], &c, &terms);
        // The board alone would rank CS highly; the firing alert
        // overrides it down to the probe floor — but not to zero.
        assert!(
            demoted < uncoupled_score * 0.05,
            "{demoted} vs {uncoupled_score}"
        );
        assert!(demoted > 0.0);
        // Sources without firing alerts are untouched by the coupling.
        let food_plain = plain.score_source(&c.entries[1], &c, &terms);
        let food_coupled = coupled.score_source(&c.entries[1], &c, &terms);
        assert!((food_plain - food_coupled).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        let c = Catalog::default();
        assert!(BGloss.rank(&c, &[(None, "x")]).is_empty());
        let c = catalog();
        assert_eq!(BGloss.score_source(&c.entries[0], &c, &[]), 0.0);
    }

    #[test]
    fn stemmed_summary_lookup() {
        let mut summary = ContentSummary {
            stemmed: true,
            num_docs: 10,
            sections: vec![SummarySection {
                field: None,
                language: None,
                terms: vec![TermSummary {
                    term: "databas".to_string(), // the stem
                    total_postings: Some(4),
                    doc_freq: Some(3),
                }],
            }],
            ..ContentSummary::default()
        };
        assert_eq!(summary_df(&summary, None, "databases"), 3);
        summary.stemmed = false;
        assert_eq!(summary_df(&summary, None, "databases"), 0);
    }
}
