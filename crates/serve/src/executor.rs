//! The query executor: fixed pools, admission control, hedging,
//! deadlines.
//!
//! A [`Server`] owns two fixed pools over one shared network:
//!
//! ```text
//! callers ──▶ bounded admission queue ──▶ query workers (plan, cache,
//!             (LIFO pop, shed oldest)     singleflight, lead waves)
//!                                              │
//!                                              ▼
//!                              dispatch queue ──▶ dispatch workers
//!                              (per-source exchanges, hedges)
//! ```
//!
//! Query workers run [`starts_meta::pipeline`] stages; per-source
//! exchanges go through the dispatch pool so one slow query cannot
//! monopolise threads, and a hedge or a straggler can outlive the query
//! that launched it (it holds its own [`CancelToken`] and its share of
//! the wave state). All coordination is plain `Mutex`/`Condvar` —
//! no async runtime, matching the repo's std-only execution model.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use starts_meta::catalog::Catalog;
use starts_meta::merge::{MergedDoc, SourceResult};
use starts_meta::metasearcher::{MetaConfig, QueryStats};
use starts_meta::pipeline::{self, DispatchTask, QueryPlan, TaskError, TaskSuccess};
use starts_net::{CancelToken, SimNet, StartsClient};
use starts_obs::{Registry, SpanHandle};
use starts_proto::{Query, QueryProfile, StageCost};

use crate::cache::ResultCache;
use crate::flight::{ResponseSlot, Singleflight};

/// Hedged-dispatch policy.
#[derive(Debug, Clone)]
pub struct HedgeConfig {
    /// Whether to hedge at all.
    pub enabled: bool,
    /// Hedge a source after `p95 × factor` (its health-board p95).
    pub factor: f64,
    /// Floor on the hedge delay in *simulated* milliseconds — also the
    /// delay used for sources with no health history. Under SimNet
    /// pacing the delay converts at the pacing rate; with pacing off it
    /// is taken as wall milliseconds (exchanges complete in
    /// microseconds then, so hedges effectively never fire).
    pub min_delay_ms: u64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            enabled: true,
            factor: 3.0,
            min_delay_ms: 50,
        }
    }
}

/// Serving-layer configuration (strategy lives in [`MetaConfig`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Query-pool size; `0` = one per available core.
    pub query_workers: usize,
    /// Dispatch-pool size; `0` = `max(4, 2 × query workers)`.
    pub dispatch_workers: usize,
    /// Bound on *waiting* queries; at capacity the oldest waiter is
    /// shed. Minimum 1.
    pub queue_capacity: usize,
    /// Result-cache freshness window; `Duration::ZERO` disables
    /// caching.
    pub cache_ttl: Duration,
    /// Default wall-clock budget per query in milliseconds; `0` waits
    /// for every source. Overridable per call via
    /// [`Server::search_with`].
    pub deadline_ms: u64,
    /// Hedged-dispatch policy.
    pub hedge: HedgeConfig,
    /// Replica query URLs by source id: a hedge for a listed source
    /// goes to the replica instead of re-asking the same endpoint.
    pub replicas: HashMap<String, String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            query_workers: 0,
            dispatch_workers: 0,
            queue_capacity: 64,
            cache_ttl: Duration::from_secs(60),
            deadline_ms: 0,
            hedge: HedgeConfig::default(),
            replicas: HashMap::new(),
        }
    }
}

/// Why a request produced no response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// Shed by admission control: the queue was full and this request
    /// had waited longest.
    Shed,
    /// The server is shutting down.
    Shutdown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shed => write!(f, "shed by admission control (queue full)"),
            ServeError::Shutdown => write!(f, "server shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// How a response reached the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// This request led the dispatch wave.
    Executed,
    /// Collapsed onto a concurrent identical query's wave.
    Coalesced,
    /// Served from the result cache without touching the wire.
    CacheHit,
}

/// Per-source completeness of a (possibly partial) response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceStatus {
    /// The source answered and its results are in the merge.
    Complete,
    /// Every attempt at the source failed.
    Failed,
    /// The source was still in flight when the deadline expired; its
    /// attempts were cancelled and it contributed nothing.
    TimedOut,
}

/// One source's completeness flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceCompleteness {
    /// The source id.
    pub source: String,
    /// What happened to it.
    pub status: SourceStatus,
}

/// The outcome of one served metasearch.
#[derive(Debug)]
pub struct ServeResponse {
    /// The merged rank over the sources that finished.
    pub merged: Vec<MergedDoc>,
    /// Ids of the selected sources, in selection order.
    pub selected: Vec<String>,
    /// Raw per-source results from the sources that finished, in
    /// selection order (a partial response is a prefix-consistent
    /// subset: exactly the finished sources, original order kept).
    pub per_source: Vec<SourceResult>,
    /// Per-source completeness, in selection order.
    pub completeness: Vec<SourceCompleteness>,
    /// `true` when the deadline expired before every source answered.
    pub partial: bool,
    /// Aggregate accounting from the exchanges that completed.
    pub stats: QueryStats,
    /// The trace id minted for this wave.
    pub query_id: String,
    /// The hierarchical cost breakdown, rooted at `serve.query`.
    pub profile: QueryProfile,
}

/// A response plus how it was served.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// The (possibly shared) response.
    pub response: Arc<ServeResponse>,
    /// Executed, coalesced, or cache hit.
    pub via: Served,
}

impl PartialEq for ServeOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.via == other.via && Arc::ptr_eq(&self.response, &other.response)
    }
}

/// One admitted query waiting for a worker.
struct QueryJob {
    query: Query,
    deadline_ms: Option<u64>,
    slot: Arc<ResponseSlot>,
}

/// Per-source state of one dispatch wave.
#[derive(Default)]
struct TaskSlot {
    /// The final outcome; `None` while attempts are in flight (or after
    /// every attempt was cancelled by the deadline).
    outcome: Option<Result<TaskSuccess, TaskError>>,
    /// Attempts currently queued or running.
    inflight: usize,
    /// Cancellation tokens of every attempt (primary + hedge).
    tokens: Vec<CancelToken>,
    /// Whether a hedge was already launched.
    hedged: bool,
}

/// Shared state between a wave's leader and its dispatch workers.
struct WaveState {
    slots: Mutex<Vec<TaskSlot>>,
    cv: Condvar,
}

/// One per-source exchange queued for the dispatch pool.
struct DispatchJob {
    wave: Arc<WaveState>,
    index: usize,
    /// 0 = primary, 1 = hedge.
    attempt: usize,
    task: DispatchTask,
    cancel: CancelToken,
    parent: SpanHandle,
    query_id: String,
    t0: Instant,
    timeout_ms: u64,
}

struct ServerInner {
    net: Arc<SimNet>,
    catalog: Catalog,
    config: MetaConfig,
    serve: ServeConfig,
    queue: Mutex<VecDeque<QueryJob>>,
    queue_cv: Condvar,
    dispatch_q: Mutex<VecDeque<DispatchJob>>,
    dispatch_cv: Condvar,
    flights: Singleflight,
    cache: ResultCache,
    shutdown: AtomicBool,
}

/// The concurrent serving layer over one catalog and one network.
///
/// Spawns its fixed pools at construction and joins them on drop
/// (in-flight and queued work drains first; late callers get
/// [`ServeError::Shutdown`]).
pub struct Server {
    inner: Arc<ServerInner>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Build over a shared network and a discovered catalog, spawning
    /// the worker pools.
    pub fn new(net: Arc<SimNet>, catalog: Catalog, config: MetaConfig, serve: ServeConfig) -> Self {
        if let Some(budget) = config.slow_budget_us {
            config.recorder.set_budget_us(budget);
        }
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let query_workers = match serve.query_workers {
            0 => cores,
            n => n,
        };
        let dispatch_workers = match serve.dispatch_workers {
            0 => (2 * query_workers).max(4),
            n => n,
        };
        let serve = ServeConfig {
            queue_capacity: serve.queue_capacity.max(1),
            ..serve
        };
        let cache_ttl = serve.cache_ttl;
        let inner = Arc::new(ServerInner {
            net,
            catalog,
            config,
            serve,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            dispatch_q: Mutex::new(VecDeque::new()),
            dispatch_cv: Condvar::new(),
            flights: Singleflight::default(),
            cache: ResultCache::new(cache_ttl),
            shutdown: AtomicBool::new(false),
        });
        let mut workers = Vec::with_capacity(query_workers + dispatch_workers);
        for i in 0..query_workers {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-query-{i}"))
                    .spawn(move || query_worker(&inner))
                    .expect("spawn query worker"),
            );
        }
        for i in 0..dispatch_workers {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-dispatch-{i}"))
                    .spawn(move || dispatch_worker(&inner))
                    .expect("spawn dispatch worker"),
            );
        }
        Server { inner, workers }
    }

    /// Serve one query under the configured default deadline.
    pub fn search(&self, query: &Query) -> Result<ServeOutcome, ServeError> {
        self.search_with(query, None)
    }

    /// Serve one query, optionally overriding the wall-clock deadline
    /// (`Some(0)` waits for every source). Blocks until the response is
    /// ready, the request is shed, or the server shuts down.
    pub fn search_with(
        &self,
        query: &Query,
        deadline_ms: Option<u64>,
    ) -> Result<ServeOutcome, ServeError> {
        let inner = &self.inner;
        let obs = inner.net.registry();
        obs.counter("serve.requests").inc();
        let slot = ResponseSlot::new();
        let start = Instant::now();
        {
            let mut queue = inner.queue.lock().expect("serve queue");
            if inner.shutdown.load(Ordering::SeqCst) {
                return Err(ServeError::Shutdown);
            }
            if queue.len() >= inner.serve.queue_capacity {
                // Overload: shed the *oldest* waiter — it has burned
                // the most of its deadline already — and keep admitting
                // fresh work (LIFO shed).
                if let Some(old) = queue.pop_front() {
                    obs.counter("serve.shed").inc();
                    old.slot.fulfill(Err(ServeError::Shed));
                }
            }
            queue.push_back(QueryJob {
                query: query.clone(),
                deadline_ms,
                slot: Arc::clone(&slot),
            });
            obs.gauge("serve.queue_depth").set(queue.len() as f64);
        }
        inner.queue_cv.notify_one();
        let outcome = slot.wait();
        if outcome.is_ok() {
            obs.histogram("serve.latency_us")
                .observe(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        }
        outcome
    }

    /// Stale every cached response that consulted `source` (call after
    /// its metadata or content summary changed). Other entries keep
    /// serving.
    pub fn invalidate_source(&self, source: &str) {
        self.inner.cache.invalidate_source(source);
    }

    /// Stale the whole result cache.
    pub fn invalidate_cache(&self) {
        self.inner.cache.invalidate_all();
    }

    /// Number of cached responses (fresh or stale).
    pub fn cached_responses(&self) -> usize {
        self.inner.cache.len()
    }

    /// The catalog being served.
    pub fn catalog(&self) -> &Catalog {
        &self.inner.catalog
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
        self.inner.dispatch_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Workers drain queued work before exiting; anything that still
        // slipped past them gets a clean shutdown error instead of a
        // hang.
        let mut queue = self.inner.queue.lock().expect("serve queue");
        for job in queue.drain(..) {
            job.slot.fulfill(Err(ServeError::Shutdown));
        }
    }
}

/// Query-pool body: pop newest-first and execute whole queries.
fn query_worker(inner: &Arc<ServerInner>) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().expect("serve queue");
            loop {
                // LIFO: the newest request has the most deadline left.
                if let Some(job) = queue.pop_back() {
                    inner
                        .net
                        .registry()
                        .gauge("serve.queue_depth")
                        .set(queue.len() as f64);
                    break job;
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner.queue_cv.wait(queue).expect("serve queue");
            }
        };
        let obs = inner.net.registry();
        obs.gauge("serve.inflight").add(1.0);
        run_query(inner, job);
        obs.gauge("serve.inflight").add(-1.0);
    }
}

/// Plan → cache → singleflight → (lead the wave) → fulfill.
fn run_query(inner: &Arc<ServerInner>, job: QueryJob) {
    let obs: &Registry = inner.net.registry();
    let query_id = starts_obs::trace::next_query_id();
    let t0 = Instant::now();
    let _root = obs.span_with("serve.query", vec![("trace", query_id.clone())]);

    // Plan on this thread: selection and adaptation are wire-free, and
    // the flight key needs the selected source set.
    let plan = pipeline::plan(&inner.catalog, &inner.config, &job.query, obs, t0);
    let mut key = pipeline::normalized_query_key(&job.query);
    key.push('|');
    key.push_str(&plan.selected.join(","));

    if let Some(hit) = inner.cache.lookup(&key, obs) {
        job.slot.fulfill(Ok(ServeOutcome {
            response: hit,
            via: Served::CacheHit,
        }));
        return;
    }

    if !inner.flights.lead_or_join(&key, &job.slot) {
        // A wave for this exact query is already in flight: the leader
        // will fulfill our slot; this worker is free for the next job.
        obs.counter("serve.singleflight.coalesced").inc();
        return;
    }
    obs.counter("serve.singleflight.leader").inc();

    let response = Arc::new(run_wave(inner, &job, plan, &query_id, t0));
    inner
        .cache
        .store(key.clone(), Arc::clone(&response), &response.selected);
    job.slot.fulfill(Ok(ServeOutcome {
        response: Arc::clone(&response),
        via: Served::Executed,
    }));
    for follower in inner.flights.complete(&key) {
        follower.fulfill(Ok(ServeOutcome {
            response: Arc::clone(&response),
            via: Served::Coalesced,
        }));
    }
}

/// Lead one dispatch wave: submit primaries, hedge stragglers, honour
/// the deadline, merge whatever finished.
fn run_wave(
    inner: &Arc<ServerInner>,
    job: &QueryJob,
    plan: QueryPlan,
    query_id: &str,
    t0: Instant,
) -> ServeResponse {
    let obs: &Registry = inner.net.registry();
    let elapsed_us = |t0: Instant| t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    let deadline_ms = job.deadline_ms.unwrap_or(inner.serve.deadline_ms);
    let deadline = (deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(deadline_ms));

    let dispatch_start = elapsed_us(t0);
    let dispatch_span = obs.span("dispatch");
    let parent = dispatch_span.handle();
    let wave = Arc::new(WaveState {
        slots: Mutex::new(Vec::new()),
        cv: Condvar::new(),
    });

    // Submit every primary to the shared dispatch pool.
    {
        let mut slots = wave.slots.lock().expect("wave slots");
        let mut dispatch_q = inner.dispatch_q.lock().expect("dispatch queue");
        for (index, task) in plan.tasks.iter().enumerate() {
            let cancel = CancelToken::new();
            slots.push(TaskSlot {
                outcome: None,
                inflight: 1,
                tokens: vec![cancel.clone()],
                hedged: false,
            });
            dispatch_q.push_back(DispatchJob {
                wave: Arc::clone(&wave),
                index,
                attempt: 0,
                task: task.clone(),
                cancel,
                parent: parent.clone(),
                query_id: query_id.to_string(),
                t0,
                timeout_ms: inner.config.timeout_ms,
            });
        }
    }
    inner.dispatch_cv.notify_all();

    // Hedge schedule: per-source wake times derived from health p95s.
    let submitted = Instant::now();
    let hedge_at: Vec<Instant> = plan
        .tasks
        .iter()
        .map(|t| submitted + hedge_delay(inner, &t.id))
        .collect();

    // Wait for the wave: done, or deadline, launching due hedges.
    let mut expired = false;
    let mut slots = wave.slots.lock().expect("wave slots");
    loop {
        if slots.iter().all(|s| s.outcome.is_some()) {
            break;
        }
        let now = Instant::now();
        if let Some(d) = deadline {
            if now >= d {
                expired = true;
                break;
            }
        }
        let mut due: Vec<(usize, CancelToken)> = Vec::new();
        if inner.serve.hedge.enabled {
            for (i, slot) in slots.iter_mut().enumerate() {
                if slot.outcome.is_none() && !slot.hedged && now >= hedge_at[i] {
                    let cancel = CancelToken::new();
                    slot.tokens.push(cancel.clone());
                    slot.inflight += 1;
                    slot.hedged = true;
                    due.push((i, cancel));
                }
            }
        }
        if !due.is_empty() {
            drop(slots);
            {
                let mut dispatch_q = inner.dispatch_q.lock().expect("dispatch queue");
                for (index, cancel) in due {
                    let task = hedged_task(inner, &plan.tasks[index]);
                    obs.counter_with("serve.hedge.launched", &[("source", &task.id)])
                        .inc();
                    dispatch_q.push_back(DispatchJob {
                        wave: Arc::clone(&wave),
                        index,
                        attempt: 1,
                        task,
                        cancel,
                        parent: parent.clone(),
                        query_id: query_id.to_string(),
                        t0,
                        timeout_ms: inner.config.timeout_ms,
                    });
                }
            }
            inner.dispatch_cv.notify_all();
            slots = wave.slots.lock().expect("wave slots");
            continue;
        }
        // Sleep until the next event: a completion (condvar), the
        // earliest pending hedge, or the deadline.
        let mut wake = deadline;
        if inner.serve.hedge.enabled {
            for (i, slot) in slots.iter().enumerate() {
                if slot.outcome.is_none() && !slot.hedged {
                    wake = Some(wake.map_or(hedge_at[i], |w| w.min(hedge_at[i])));
                }
            }
        }
        slots = match wake {
            Some(at) => {
                let timeout = at.saturating_duration_since(Instant::now());
                wave.cv.wait_timeout(slots, timeout).expect("wave slots").0
            }
            None => wave.cv.wait(slots).expect("wave slots"),
        };
    }

    // Collect outcomes; on expiry cancel the stragglers first so they
    // abandon their (simulated) flights instead of finishing for
    // nobody.
    if expired {
        obs.counter("serve.partial").inc();
        for slot in slots.iter() {
            if slot.outcome.is_none() {
                for token in &slot.tokens {
                    token.cancel();
                }
            }
        }
    }
    let mut successes: Vec<TaskSuccess> = Vec::new();
    let mut completeness: Vec<SourceCompleteness> = Vec::new();
    for (i, slot) in slots.iter_mut().enumerate() {
        let source = plan.tasks[i].id.clone();
        let status = match slot.outcome.take() {
            Some(Ok(success)) => {
                successes.push(success);
                SourceStatus::Complete
            }
            Some(Err(_)) => SourceStatus::Failed,
            None => SourceStatus::TimedOut,
        };
        completeness.push(SourceCompleteness { source, status });
    }
    drop(slots);
    drop(dispatch_span);
    let dispatch_end = elapsed_us(t0);

    inner.config.health.export_to(obs);
    let mut stats = QueryStats::default();
    let mut source_stages = Vec::new();
    let per_source: Vec<SourceResult> = successes
        .into_iter()
        .map(|success| {
            stats.absorb(&success.exchange);
            source_stages.push(success.stage);
            success.result
        })
        .collect();
    obs.gauge("meta.query_cost").add(stats.total_cost);

    let (merged, _mstats, merge_costs) = pipeline::merge_stage(
        inner.config.merger.as_ref(),
        &per_source,
        inner.config.max_results,
        obs,
        t0,
    );

    let mut dispatch_stage = StageCost::new(
        "dispatch",
        dispatch_start,
        dispatch_end.saturating_sub(dispatch_start),
    )
    .with_meta("sources", source_stages.len())
    .with_meta("partial", expired);
    dispatch_stage.children = source_stages;
    let profile = QueryProfile {
        query_id: query_id.to_string(),
        root: StageCost {
            name: "serve.query".to_string(),
            start_us: 0,
            duration_us: elapsed_us(t0),
            meta: vec![
                ("results".to_string(), merged.len().to_string()),
                ("partial".to_string(), expired.to_string()),
            ],
            children: vec![
                plan.select_stage.clone(),
                plan.adapt_stage.clone(),
                dispatch_stage,
                merge_costs,
            ],
        },
    };
    inner.config.recorder.record(&profile);
    inner.config.recorder.export_to(obs);
    inner.net.monitor().tick(obs);

    ServeResponse {
        merged,
        selected: plan.selected,
        per_source,
        completeness,
        partial: expired,
        stats,
        query_id: query_id.to_string(),
        profile,
    }
}

/// The hedge's task: same source, replica URL when configured.
fn hedged_task(inner: &ServerInner, base: &DispatchTask) -> DispatchTask {
    let mut task = base.clone();
    if let Some(url) = inner.serve.replicas.get(&task.id) {
        task.url = url.clone();
    }
    task
}

/// Health-derived hedge delay for one source, converted to wall time
/// under the network's current pacing.
fn hedge_delay(inner: &ServerInner, source: &str) -> Duration {
    let cfg = &inner.serve.hedge;
    let p95 = inner
        .config
        .health
        .health(source)
        .map(|h| h.latency_p95_ms)
        .unwrap_or(0);
    let sim_ms = ((p95 as f64 * cfg.factor).ceil() as u64)
        .max(cfg.min_delay_ms)
        .max(1);
    match inner.net.pacing() {
        0 => Duration::from_millis(sim_ms),
        us_per_ms => Duration::from_micros(sim_ms.saturating_mul(us_per_ms)),
    }
}

/// Dispatch-pool body: run per-source exchanges; first finisher wins
/// its slot and cancels the sibling attempt. Panics in an exchange are
/// isolated into failed-source outcomes (the pool thread survives).
fn dispatch_worker(inner: &Arc<ServerInner>) {
    loop {
        let job = {
            let mut queue = inner.dispatch_q.lock().expect("dispatch queue");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner.dispatch_cv.wait(queue).expect("dispatch queue");
            }
        };
        let obs = inner.net.registry();
        let client = StartsClient::new(&inner.net);
        let hedge_span = (job.attempt > 0)
            .then(|| obs.span_under("hedge", &job.parent, vec![("source", job.task.id.clone())]));
        let outcome = match catch_unwind(AssertUnwindSafe(|| {
            pipeline::run_task(
                &client,
                &job.task,
                &inner.config.health,
                job.timeout_ms,
                &job.parent,
                &job.query_id,
                job.t0,
                Some(&job.cancel),
            )
        })) {
            Ok(outcome) => outcome,
            Err(_) => {
                pipeline::record_panicked_dispatch(obs, &inner.config.health, &job.task.id);
                Err(TaskError::Failed)
            }
        };
        drop(hedge_span);

        let mut slots = job.wave.slots.lock().expect("wave slots");
        let slot = &mut slots[job.index];
        slot.inflight = slot.inflight.saturating_sub(1);
        match &outcome {
            Ok(_) if slot.outcome.is_none() => {
                // First success wins the slot; any sibling attempt is
                // now pointless.
                for token in &slot.tokens {
                    token.cancel();
                }
                if job.attempt > 0 {
                    obs.counter_with("serve.hedge.wins", &[("source", &job.task.id)])
                        .inc();
                }
                slot.outcome = Some(outcome);
                job.wave.cv.notify_all();
            }
            Err(TaskError::Failed) if slot.outcome.is_none() && slot.inflight == 0 => {
                // Every attempt failed.
                slot.outcome = Some(Err(TaskError::Failed));
                job.wave.cv.notify_all();
            }
            _ => {
                // Lost the hedge race, was cancelled by the deadline,
                // or the slot is already decided: drop the result.
            }
        }
    }
}
