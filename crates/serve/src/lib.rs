//! The concurrent serving layer: a query executor over the metasearch
//! pipeline built for sustained multi-client load.
//!
//! [`Metasearcher::search`](starts_meta::Metasearcher) spawns one
//! scoped thread per selected source per query — fine for a single
//! caller, wasteful under concurrency. [`Server`] runs the same
//! pipeline stages ([`starts_meta::pipeline`]) under a serving regime:
//!
//! * **Fixed worker pools** — a query pool executes whole queries off a
//!   bounded admission queue; a shared dispatch pool runs the
//!   per-source exchanges. No thread is ever spawned per query.
//! * **Singleflight** — concurrent identical queries (same normalized
//!   query text, same selected source set) collapse into one dispatch
//!   wave; followers wait on the leader and share its response.
//! * **Result cache** — responses are cached under a TTL with
//!   per-source generation stamps: invalidating one source (say, after
//!   its content summary changed) stales exactly the responses that
//!   consulted it.
//! * **Hedged dispatch** — a source that has not answered within a
//!   health-derived delay (p95 × factor, floored) gets a backup
//!   request, optionally to a replica URL; the first response wins and
//!   the loser is cancelled. Cancellations never count against health.
//! * **Deadline-bounded partial results** — a query past its wall-clock
//!   budget cancels its stragglers and returns the merge of the sources
//!   that finished, flagged `partial: true` with per-source
//!   completeness.
//! * **Load shedding** — the admission queue is bounded; under overload
//!   the oldest waiting query is shed (`ServeError::Shed`) and workers
//!   pop newest-first (LIFO), keeping fresh requests inside their
//!   deadlines instead of serving a queue full of expired ones.
//!
//! Everything is observable on the shared registry as `serve.*`
//! metrics, and `serve-p99` / `serve-shed-rate` ship in
//! [`starts_obs::monitor::default_slos`].
//!
//! | module | contents |
//! |--------|----------|
//! | [`executor`] | [`Server`], its worker pools, hedging and deadlines |
//! | [`flight`] | singleflight registry and response slots |
//! | [`cache`] | TTL + generation-stamped result cache |

pub mod cache;
pub mod executor;
pub mod flight;

pub use executor::{
    HedgeConfig, ServeConfig, ServeError, ServeOutcome, ServeResponse, Served, Server,
    SourceCompleteness, SourceStatus,
};
