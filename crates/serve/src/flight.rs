//! Singleflight: collapse concurrent identical queries into one wave.
//!
//! A query's flight key is its normalized SOIF encoding plus the
//! selected source set (see
//! [`starts_meta::pipeline::normalized_query_key`]): two queries with
//! the same key are wire-identical to every source, so dispatching both
//! buys nothing. The first executor worker to take a key becomes the
//! *leader* and runs the wave; workers that find the key in flight park
//! the caller's `ResponseSlot` on the leader's entry and move on to
//! the next queued query — a duplicate costs no pool capacity while it
//! waits.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use crate::executor::{ServeError, ServeOutcome};

/// A one-shot rendezvous between a waiting caller and whichever worker
/// (or leader) produces its response. The caller blocks in
/// [`ResponseSlot::wait`]; the first [`ResponseSlot::fulfill`] wins and
/// later ones are ignored (a shed job may race its own completion).
#[derive(Default)]
pub(crate) struct ResponseSlot {
    state: Mutex<Option<Result<ServeOutcome, ServeError>>>,
    cv: Condvar,
}

impl ResponseSlot {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(ResponseSlot::default())
    }

    /// Deliver the outcome; only the first delivery sticks.
    pub(crate) fn fulfill(&self, outcome: Result<ServeOutcome, ServeError>) {
        let mut state = self.state.lock().expect("slot lock");
        if state.is_none() {
            *state = Some(outcome);
            self.cv.notify_all();
        }
    }

    /// Block until the outcome arrives.
    pub(crate) fn wait(&self) -> Result<ServeOutcome, ServeError> {
        let mut state = self.state.lock().expect("slot lock");
        loop {
            if let Some(outcome) = state.as_ref() {
                return outcome.clone();
            }
            state = self.cv.wait(state).expect("slot lock");
        }
    }
}

/// The in-flight registry: key → the followers waiting on the leader.
///
/// The leader's own slot is *not* registered; it fulfills itself after
/// [`Singleflight::complete`] hands back the followers.
#[derive(Default)]
pub(crate) struct Singleflight {
    flights: Mutex<HashMap<String, Vec<Arc<ResponseSlot>>>>,
}

impl Singleflight {
    /// Either become the leader for `key` (returns `true`) or join an
    /// existing flight as a follower (returns `false`; `slot` will be
    /// fulfilled by the leader). Atomic under one lock, so exactly one
    /// caller per key leads at a time.
    pub(crate) fn lead_or_join(&self, key: &str, slot: &Arc<ResponseSlot>) -> bool {
        let mut flights = self.flights.lock().expect("flights lock");
        match flights.get_mut(key) {
            Some(followers) => {
                followers.push(Arc::clone(slot));
                false
            }
            None => {
                flights.insert(key.to_string(), Vec::new());
                true
            }
        }
    }

    /// Close the flight: remove the key and return the followers for
    /// the leader to fulfill.
    pub(crate) fn complete(&self, key: &str) -> Vec<Arc<ResponseSlot>> {
        self.flights
            .lock()
            .expect("flights lock")
            .remove(key)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_leader_per_key_and_followers_accumulate() {
        let sf = Singleflight::default();
        let a = ResponseSlot::new();
        let b = ResponseSlot::new();
        let c = ResponseSlot::new();
        assert!(sf.lead_or_join("k", &a));
        assert!(!sf.lead_or_join("k", &b));
        assert!(!sf.lead_or_join("k", &c));
        // A different key leads independently.
        assert!(sf.lead_or_join("other", &b));
        let followers = sf.complete("k");
        assert_eq!(followers.len(), 2);
        // The key is free again after completion.
        assert!(sf.lead_or_join("k", &a));
        assert!(sf.complete("missing").is_empty());
    }

    #[test]
    fn slot_first_fulfill_wins() {
        let slot = ResponseSlot::new();
        slot.fulfill(Err(ServeError::Shed));
        slot.fulfill(Err(ServeError::Shutdown));
        assert_eq!(slot.wait(), Err(ServeError::Shed));
    }

    #[test]
    fn slot_wakes_a_blocked_waiter() {
        let slot = ResponseSlot::new();
        let waiter = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || slot.wait())
        };
        std::thread::sleep(std::time::Duration::from_millis(5));
        slot.fulfill(Err(ServeError::Shed));
        assert_eq!(waiter.join().unwrap(), Err(ServeError::Shed));
    }
}
