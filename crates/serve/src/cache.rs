//! The TTL'd, generation-stamped query-result cache.
//!
//! Same freshness model as [`starts_meta::CatalogCache`] — an entry is
//! fresh while its age is under the TTL *and* its generation stamps
//! still match — but where the catalog cache keeps one global
//! generation, results are stamped **per source**: a response caches
//! the generation of every source it consulted, and
//! `ResultCache::invalidate_source` (called when a source's content
//! summary changes) stales exactly the responses that touched that
//! source. Responses built from other sources stay servable.
//!
//! Lookups land on the shared registry as `serve.cache.hits` /
//! `serve.cache.misses`. A zero TTL disables the cache entirely (no
//! storage, no counters) — the bench uses that to measure raw
//! execution.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use starts_obs::Registry;

use crate::executor::ServeResponse;

/// Soft bound on stored responses: a store that finds the map at this
/// size first evicts every stale entry.
const SWEEP_AT: usize = 1024;

struct CachedResponse {
    value: Arc<ServeResponse>,
    fetched_at: Instant,
    epoch: u64,
    /// `(source id, generation at store time)` for every source the
    /// response consulted.
    stamps: Vec<(String, u64)>,
}

#[derive(Default)]
struct CacheInner {
    /// Global epoch: bumped by [`ResultCache::invalidate_all`].
    epoch: u64,
    /// Per-source generation counters (absent = 0).
    generations: HashMap<String, u64>,
    entries: HashMap<String, CachedResponse>,
}

impl CacheInner {
    fn generation(&self, source: &str) -> u64 {
        self.generations.get(source).copied().unwrap_or(0)
    }

    fn fresh(&self, entry: &CachedResponse, ttl: Duration) -> bool {
        entry.epoch == self.epoch
            && entry.fetched_at.elapsed() < ttl
            && entry
                .stamps
                .iter()
                .all(|(source, gen)| self.generation(source) == *gen)
    }
}

/// A freshness-window cache over whole serve responses, keyed by
/// normalized query + selected source set.
pub(crate) struct ResultCache {
    ttl: Duration,
    state: Mutex<CacheInner>,
}

impl ResultCache {
    pub(crate) fn new(ttl: Duration) -> Self {
        ResultCache {
            ttl,
            state: Mutex::new(CacheInner::default()),
        }
    }

    /// Fetch a fresh entry, counting the hit or miss on `obs`.
    pub(crate) fn lookup(&self, key: &str, obs: &Registry) -> Option<Arc<ServeResponse>> {
        if self.ttl.is_zero() {
            return None;
        }
        let state = self.state.lock().expect("cache lock");
        let fresh = state
            .entries
            .get(key)
            .filter(|e| state.fresh(e, self.ttl))
            .map(|e| Arc::clone(&e.value));
        drop(state);
        let counter = if fresh.is_some() {
            "serve.cache.hits"
        } else {
            "serve.cache.misses"
        };
        obs.counter(counter).inc();
        fresh
    }

    /// Store a response, stamping the current generation of every
    /// source it consulted.
    pub(crate) fn store(&self, key: String, value: Arc<ServeResponse>, sources: &[String]) {
        if self.ttl.is_zero() {
            return;
        }
        let mut state = self.state.lock().expect("cache lock");
        if state.entries.len() >= SWEEP_AT {
            let (epoch, ttl) = (state.epoch, self.ttl);
            let generations = std::mem::take(&mut state.generations);
            state.entries.retain(|_, e| {
                e.epoch == epoch
                    && e.fetched_at.elapsed() < ttl
                    && e.stamps
                        .iter()
                        .all(|(s, g)| generations.get(s).copied().unwrap_or(0) == *g)
            });
            state.generations = generations;
        }
        let stamps = sources
            .iter()
            .map(|s| (s.clone(), state.generation(s)))
            .collect();
        let epoch = state.epoch;
        state.entries.insert(
            key,
            CachedResponse {
                value,
                fetched_at: Instant::now(),
                epoch,
                stamps,
            },
        );
    }

    /// Bump one source's generation: every cached response that
    /// consulted it is instantly stale; responses that did not are
    /// untouched.
    pub(crate) fn invalidate_source(&self, source: &str) {
        let mut state = self.state.lock().expect("cache lock");
        *state.generations.entry(source.to_string()).or_insert(0) += 1;
    }

    /// Stale every cached response at once.
    pub(crate) fn invalidate_all(&self) {
        self.state.lock().expect("cache lock").epoch += 1;
    }

    /// Number of stored responses (fresh or stale).
    pub(crate) fn len(&self) -> usize {
        self.state.lock().expect("cache lock").entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn response() -> Arc<ServeResponse> {
        Arc::new(ServeResponse {
            merged: Vec::new(),
            selected: Vec::new(),
            per_source: Vec::new(),
            completeness: Vec::new(),
            partial: false,
            stats: Default::default(),
            query_id: "q-test".to_string(),
            profile: Default::default(),
        })
    }

    #[test]
    fn per_source_generations_stale_only_consulting_entries() {
        let cache = ResultCache::new(Duration::from_secs(60));
        let obs = Registry::new();
        cache.store("a".into(), response(), &["DB".into(), "Food".into()]);
        cache.store("b".into(), response(), &["Stars".into()]);
        assert!(cache.lookup("a", &obs).is_some());
        assert!(cache.lookup("b", &obs).is_some());

        cache.invalidate_source("Food");
        // "a" consulted Food → stale; "b" did not → still fresh.
        assert!(cache.lookup("a", &obs).is_none());
        assert!(cache.lookup("b", &obs).is_some());

        let snap = obs.snapshot();
        assert_eq!(snap.counter("serve.cache.hits", &[]), 3);
        assert_eq!(snap.counter("serve.cache.misses", &[]), 1);
    }

    #[test]
    fn epoch_bump_stales_everything_and_zero_ttl_disables() {
        let cache = ResultCache::new(Duration::from_secs(60));
        let obs = Registry::new();
        cache.store("a".into(), response(), &[]);
        cache.invalidate_all();
        assert!(cache.lookup("a", &obs).is_none());
        // A re-store in the new epoch is fresh again.
        cache.store("a".into(), response(), &[]);
        assert!(cache.lookup("a", &obs).is_some());

        let off = ResultCache::new(Duration::ZERO);
        off.store("a".into(), response(), &[]);
        assert_eq!(off.len(), 0);
        assert!(off.lookup("a", &obs).is_none());
        // Disabled cache counts nothing.
        assert_eq!(obs.snapshot().counter("serve.cache.misses", &[]), 1);
    }

    #[test]
    fn sweep_evicts_stale_entries_under_pressure() {
        let cache = ResultCache::new(Duration::from_secs(60));
        for i in 0..SWEEP_AT {
            cache.store(format!("k{i}"), response(), &["S".into()]);
        }
        assert_eq!(cache.len(), SWEEP_AT);
        // Everything consulted S; staling S lets the next store sweep.
        cache.invalidate_source("S");
        cache.store("fresh".into(), response(), &[]);
        assert_eq!(cache.len(), 1);
    }
}
