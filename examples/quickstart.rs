//! Quickstart: one STARTS source, one query, over the (simulated) wire.
//!
//! Run with `cargo run --example quickstart`.
//!
//! This walks the protocol end to end exactly as the paper's Examples
//! 6–8 do: build a source, fetch its metadata, submit an `@SQuery`, and
//! read back the `@SQResults`/`@SQRDocument` stream — including the
//! *actual query* the source executed and the per-term statistics that
//! make rank merging possible.

use starts::index::Document;
use starts::net::{host::wire_source, LinkProfile, SimNet, StartsClient};
use starts::proto::query::{parse_filter, parse_ranking};
use starts::proto::{AnswerSpec, Field, Query};
use starts::source::{Source, SourceConfig};

fn main() {
    // A small document collection, echoing the paper's running examples.
    let docs = vec![
        Document::new()
            .field(
                "title",
                "A Comparison Between Deductive and Object-Oriented Database Systems",
            )
            .field("author", "Jeffrey D. Ullman")
            .field(
                "body-of-text",
                "deductive databases and object-oriented databases compared; \
                 distributed databases briefly discussed",
            )
            .field("date-last-modified", "1996-03-31")
            .field("linkage", "http://www-db.stanford.edu/~ullman/pub/dood.ps"),
        Document::new()
            .field("title", "Database Research: Achievements and Opportunities")
            .field("author", "Avi Silberschatz, Mike Stonebraker, Jeff Ullman")
            .field(
                "body-of-text",
                "distributed databases distributed systems databases research \
                 agenda for databases into the next century",
            )
            .field("date-last-modified", "1996-09-15")
            .field("linkage", "http://elib.stanford.edu/lagunita.ps"),
        Document::new()
            .field("title", "Compilers: Principles and Techniques")
            .field("author", "Alfred Aho")
            .field("body-of-text", "lexing parsing and code generation")
            .field("date-last-modified", "1995-02-11")
            .field("linkage", "http://example.org/dragon.ps"),
    ];

    // Build the source and publish it on a simulated network.
    let net = SimNet::new();
    let source = Source::build(SourceConfig::new("Source-1"), &docs);
    let query_url = wire_source(&net, source, LinkProfile::default());
    let client = StartsClient::new(&net);

    // Every source exports metadata; a metasearcher reads it first.
    let metadata = client.fetch_metadata("starts://source-1/metadata").unwrap();
    println!("== Source metadata (@SMetaAttributes) ==");
    println!(
        "source: {} | ranking algorithm: {} | score range: {} .. {}",
        metadata.source_id,
        metadata.ranking_algorithm_id,
        metadata.score_range.0,
        metadata.score_range.1
    );
    println!(
        "stop words: {} | can disable: {}",
        metadata.stop_word_list.len(),
        metadata.turn_off_stop_words
    );
    println!();

    // The paper's Example 6 query: filter + ranking + answer spec.
    let query = Query {
        filter: Some(parse_filter(r#"((author "Ullman") and (title stem "databases"))"#).unwrap()),
        ranking: Some(
            parse_ranking(r#"list((body-of-text "distributed") (body-of-text "databases"))"#)
                .unwrap(),
        ),
        answer: AnswerSpec {
            fields: vec![Field::Title, Field::Author],
            min_doc_score: 0.0,
            max_documents: 10,
            ..AnswerSpec::default()
        },
        ..Query::default()
    };
    println!("== The query on the wire (@SQuery) ==");
    print!(
        "{}",
        String::from_utf8_lossy(&starts::soif::write_object(&query.to_soif()))
    );
    println!();

    let results = client.query(&query_url, &query).unwrap();
    println!("== Results ==");
    println!(
        "actual filter : {}",
        results
            .actual_filter
            .as_ref()
            .map(starts::proto::query::print_filter)
            .unwrap_or_else(|| "(none)".to_string())
    );
    println!(
        "actual ranking: {}",
        results
            .actual_ranking
            .as_ref()
            .map(starts::proto::query::print_ranking)
            .unwrap_or_else(|| "(none)".to_string())
    );
    for doc in &results.documents {
        println!(
            "  score {:>7.4}  {}  ({})",
            doc.raw_score.unwrap_or(0.0),
            doc.field(&Field::Title).unwrap_or("?"),
            doc.linkage().unwrap_or("?"),
        );
        for ts in &doc.term_stats {
            println!(
                "      term {:<28} tf {:>3}  weight {:.4}  df {:>3}",
                starts::proto::query::print_term(&ts.term),
                ts.term_frequency,
                ts.term_weight,
                ts.document_frequency
            );
        }
    }
    println!();
    println!(
        "network: {} requests, {} ms simulated latency",
        client.net().stats().requests,
        client.net().stats().total_latency_ms
    );
    println!();

    // == Federated search, with observability ==
    //
    // Publish two more libraries, discover all three, and run the same
    // ranking through the metasearcher. The SimNet's registry has been
    // recording the whole time; after the federated query we print the
    // aggregate QueryStats and the metrics snapshot.
    let more = [
        Document::new()
            .field(
                "title",
                "Mediators in the Architecture of Future Information Systems",
            )
            .field("author", "Gio Wiederhold")
            .field(
                "body-of-text",
                "mediated architectures over distributed databases",
            )
            .field("linkage", "http://example.org/mediators.ps"),
        Document::new()
            .field("title", "Querying Heterogeneous Information Sources")
            .field("author", "Hector Garcia-Molina")
            .field(
                "body-of-text",
                "querying distributed heterogeneous databases with tsimmis",
            )
            .field("linkage", "http://example.org/tsimmis.ps"),
    ];
    wire_source(
        &net,
        Source::build(SourceConfig::new("Source-2"), &more[..1]),
        LinkProfile {
            latency_ms: 80,
            cost_per_query: 0.25,
        },
    );
    wire_source(
        &net,
        Source::build(SourceConfig::new("Source-3"), &more[1..]),
        LinkProfile::default(),
    );
    let mut catalog = starts::meta::Catalog::default();
    for (id, profile) in [
        ("source-1", LinkProfile::default()),
        (
            "source-2",
            LinkProfile {
                latency_ms: 80,
                cost_per_query: 0.25,
            },
        ),
        ("source-3", LinkProfile::default()),
    ] {
        catalog
            .discover_source(&client, &format!("starts://{id}/metadata"), profile, false)
            .unwrap();
    }
    let meta = starts::meta::Metasearcher::new(&net, catalog, starts::meta::MetaConfig::default());
    let federated = Query {
        ranking: query.ranking.clone(),
        answer: query.answer.clone(),
        ..Query::default()
    };
    let resp = meta.search(&federated);
    println!("== Federated search over 3 sources ==");
    for doc in resp.merged.iter().take(5) {
        println!(
            "  score {:>7.4}  {}  [{}]",
            doc.score,
            doc.linkage,
            doc.sources.join(", ")
        );
    }
    println!();
    println!("== Query statistics (actual exchanges) ==");
    println!(
        "requests: {} | summed link latency: {} ms (parallel wall clock: slowest link, {} ms) | cost: {} | {} B sent, {} B received",
        resp.stats.requests,
        resp.stats.total_latency_ms,
        resp.stats.max_latency_ms,
        resp.stats.total_cost,
        resp.stats.bytes_sent,
        resp.stats.bytes_received,
    );
    println!();

    // The metasearcher ticks the net's continuous monitor after every
    // search: the stock SLOs (meta.search p99, per-source error rate)
    // are already being watched.
    println!("== SLO summary (continuous monitoring) ==");
    println!("{}", net.monitor().summary_line());
    println!();

    // EXPLAIN: the per-query cost tree, client stages with each
    // source's own stage costs grafted in over the wire.
    println!("== EXPLAIN (QueryProfile cost tree) ==");
    print!("{}", resp.profile.render());
    println!("critical path: {}", resp.profile.critical_path_summary());
    println!();

    // The registry snapshot: phase timings, per-source latencies, costs.
    let snap = net.registry().snapshot();
    println!("== Metrics snapshot (Prometheus text, excerpt) ==");
    for line in starts::obs::export::prometheus(&snap).lines().filter(|l| {
        l.starts_with("meta_")
            || l.starts_with("recorder_")
            || l.starts_with("span_duration_us{span=\"meta")
    }) {
        println!("{line}");
    }
    println!();
    println!("== The same snapshot as SOIF (@SStats, excerpt) ==");
    let soif = starts::soif::write_object(&starts::obs::export::to_soif(&snap));
    for line in String::from_utf8_lossy(&soif).lines().take(8) {
        println!("{line}");
    }
    println!("...");
}
