//! The Figure 1 scenario: a *resource* (like Knight-Ridder's Dialog)
//! hosting several sources; the client queries one member, names its
//! siblings in `AdditionalSources`, and the resource eliminates
//! duplicate documents from the merged result.
//!
//! Run with `cargo run --example dialog_resource`.

use starts::index::Document;
use starts::net::{host::wire_resource, LinkProfile, SimNet, StartsClient};
use starts::proto::query::parse_ranking;
use starts::proto::{Field, Query};
use starts::source::{ResourceHost, Source, SourceConfig};

fn collection(tag: &str, shared: bool) -> Vec<Document> {
    let mut docs = vec![
        Document::new()
            .field("title", format!("{tag} indexing techniques"))
            .field(
                "body-of-text",
                format!("indexing and retrieval for {tag} databases collections"),
            )
            .field("linkage", format!("dialog://{tag}/indexing")),
        Document::new()
            .field("title", format!("{tag} systems overview"))
            .field(
                "body-of-text",
                format!("an overview of {tag} databases systems and databases engines"),
            )
            .field("linkage", format!("dialog://{tag}/overview")),
    ];
    if shared {
        // The same technical report is carried by both collections — the
        // duplicate Figure 1 says the resource should eliminate.
        docs.push(
            Document::new()
                .field("title", "Shared Technical Report on Databases")
                .field(
                    "body-of-text",
                    "databases databases databases a shared report carried by \
                     multiple collections",
                )
                .field("linkage", "dialog://shared/tr-42"),
        );
    }
    docs
}

fn main() {
    // Two sources inside one resource, like Inspec and the Computer
    // Database inside Dialog (§3).
    let inspec = Source::build(SourceConfig::new("Inspec"), &collection("inspec", true));
    let compdb = Source::build(SourceConfig::new("CompDB"), &collection("compdb", true));
    let net = SimNet::new();
    wire_resource(
        &net,
        ResourceHost::new(vec![inspec, compdb]),
        "starts://dialog",
        LinkProfile {
            latency_ms: 250,
            cost_per_query: 1.5, // Dialog charges per query (§3.3)
        },
    );
    let client = StartsClient::new(&net);

    // Discover the resource (Example 12's @SResource object).
    let resource = client.fetch_resource("starts://dialog").unwrap();
    println!("== Resource listing (@SResource) ==");
    for (id, url) in &resource.sources {
        println!("  {id}  metadata at {url}");
    }
    println!();

    // Query Inspec, asking it to also evaluate at CompDB (Figure 1).
    let query = Query {
        ranking: Some(parse_ranking(r#"list((body-of-text "databases"))"#).unwrap()),
        additional_sources: vec!["CompDB".to_string()],
        ..Query::default()
    };
    let results = client.query("starts://inspec/query", &query).unwrap();

    println!("== Merged result from the resource ==");
    println!("sources consulted: {}", results.sources.join(", "));
    for doc in &results.documents {
        println!(
            "  score {:>7.4}  [{}]  {}",
            doc.raw_score.unwrap_or(0.0),
            doc.sources.join("+"),
            doc.field(&Field::Title).unwrap_or("?"),
        );
    }
    let shared = results
        .documents
        .iter()
        .find(|d| d.linkage() == Some("dialog://shared/tr-42"))
        .expect("the shared report is in the result");
    println!();
    println!(
        "duplicate elimination: the shared report appears ONCE, attributed to [{}]",
        shared.sources.join(", ")
    );
    assert_eq!(shared.sources.len(), 2);

    let stats = client.net().stats();
    println!(
        "session: {} requests, {} ms latency, ${:.2} charged",
        stats.requests, stats.total_latency_ms, stats.total_cost
    );
}
