//! A federated digital library (the NCSTRL/CS-TR scenario of §3): many
//! topical sources behind one metasearcher, end to end — discovery,
//! GlOSS source selection from content summaries, capability-aware
//! dispatch, and merged results.
//!
//! Run with `cargo run --example federated_library`.

use starts::corpus::{generate_corpus, generate_workload, CorpusConfig, WorkloadConfig};
use starts::meta::catalog::Catalog;
use starts::meta::eval::{recall_at_k, selection_recall};
use starts::meta::metasearcher::{MetaConfig, Metasearcher};
use starts::meta::select::{GGlossSum, Selector};
use starts::net::{host::wire_source, LinkProfile, SimNet, StartsClient};
use starts::source::{Source, SourceConfig};

fn main() {
    // Generate eight topical "department libraries".
    let corpus = generate_corpus(&CorpusConfig {
        n_sources: 8,
        docs_per_source: 60,
        n_topics: 4,
        topic_skew: 0.4,
        seed: 2026,
        ..CorpusConfig::default()
    });
    let workload = generate_workload(
        &corpus,
        &WorkloadConfig {
            n_queries: 12,
            ..WorkloadConfig::default()
        },
    );

    // Publish each library as a STARTS source.
    let net = SimNet::new();
    for source in &corpus.sources {
        wire_source(
            &net,
            Source::build(SourceConfig::new(&source.id), &source.docs),
            LinkProfile {
                latency_ms: 40,
                cost_per_query: 0.0,
            },
        );
    }

    // Discovery: the §3.4 periodic crawl.
    let client = StartsClient::new(&net);
    let mut catalog = Catalog::default();
    for source in &corpus.sources {
        catalog
            .discover_source(
                &client,
                &format!("starts://{}/metadata", source.id.to_lowercase()),
                LinkProfile {
                    latency_ms: 40,
                    cost_per_query: 0.0,
                },
                false,
            )
            .unwrap();
    }
    println!(
        "discovered {} sources holding {} documents; discovery cost {} requests",
        catalog.len(),
        catalog.total_docs(),
        client.net().stats().requests
    );
    println!();

    // Search with GlOSS selection over the exported summaries.
    let meta = Metasearcher::new(
        &net,
        catalog,
        MetaConfig {
            selector: Box::new(GGlossSum),
            max_sources: 2,
            ..MetaConfig::default()
        },
    );
    let mut recalls = Vec::new();
    let mut sel_recalls = Vec::new();
    for gq in &workload.queries {
        let resp = meta.search(&gq.query);
        let ranked: Vec<String> = resp.merged.iter().map(|d| d.linkage.clone()).collect();
        let r10 = recall_at_k(&ranked, &gq.relevant, 10);
        // How much of the total merit did the 2 selected sources hold?
        let selected_idx: Vec<usize> = resp
            .selected
            .iter()
            .filter_map(|id| corpus.sources.iter().position(|s| &s.id == id))
            .collect();
        let sr = selection_recall(&selected_idx, &gq.relevant_by_source);
        println!(
            "query {:<28} -> sources [{}]  merit covered {:>5.1}%  recall@10 {:>5.1}%",
            gq.terms.join(" "),
            resp.selected.join(", "),
            sr * 100.0,
            r10 * 100.0,
        );
        recalls.push(r10);
        sel_recalls.push(sr);
    }
    println!();
    println!(
        "selector {}: mean merit coverage {:.1}% (contacting only 2 of 8 sources), mean recall@10 {:.1}%",
        GGlossSum.name(),
        100.0 * starts::meta::eval::mean(&sel_recalls),
        100.0 * starts::meta::eval::mean(&recalls),
    );
    let stats = net.stats();
    println!(
        "total traffic: {} requests, {:.1} KB on the wire",
        stats.requests,
        (stats.bytes_sent + stats.bytes_received) as f64 / 1024.0
    );
}
