//! The §3.2 rank-merging problem, live: three web-scale sources with
//! *incompatible score scales* answer the same query, and the example
//! compares merge strategies side by side.
//!
//! Run with `cargo run --example web_metasearch`.
//!
//! One source is the paper's "top document always has a score of 1,000"
//! vendor; naive raw-score merging lets it flood the top ranks.
//! STARTS' TermStats make Example 9's re-ranking possible without
//! retrieving a single document.

use starts::index::Document;
use starts::meta::merge::{
    Merger, NormalizedMerge, RawScoreMerge, RoundRobinMerge, SourceResult, TfIdfMerge, TfMerge,
};
use starts::net::{host::wire_source, LinkProfile, SimNet, StartsClient};
use starts::proto::query::parse_ranking;
use starts::proto::Query;
use starts::source::{vendors, Source, SourceConfig};

/// Build a web-ish collection where relevance is controlled: document i
/// mentions "databases"/"distributed" with known frequencies.
fn collection(tag: &str, sizes: &[(u32, u32)]) -> Vec<Document> {
    sizes
        .iter()
        .enumerate()
        .map(|(i, (db, dist))| {
            let mut body = String::new();
            for _ in 0..*db {
                body.push_str("databases ");
            }
            for _ in 0..*dist {
                body.push_str("distributed ");
            }
            for f in 0..12 {
                body.push_str(&format!("filler{f} "));
            }
            Document::new()
                .field("title", format!("{tag} page {i} (db={db}, dist={dist})"))
                .field("body-of-text", body)
                .field("linkage", format!("http://{tag}/page{i}"))
        })
        .collect()
}

fn main() {
    let net = SimNet::new();
    // Three vendors: [0,1] cosine, [0,1000] scaled, and unbounded BM25.
    let fleet: Vec<(SourceConfig, Vec<Document>)> = vec![
        (
            vendors::acme("Acme"),
            collection("acme", &[(9, 7), (2, 1), (1, 0)]),
        ),
        (
            vendors::bolt("Bolt"), // Vendor-K: top doc = 1000
            collection("bolt", &[(3, 1), (1, 1), (0, 1)]),
        ),
        (
            vendors::okapi("Okapi"), // BM25, unbounded
            collection("okapi", &[(6, 5), (4, 2), (1, 1)]),
        ),
    ];
    for (cfg, docs) in fleet {
        wire_source(&net, Source::build(cfg, &docs), LinkProfile::default());
    }
    let client = StartsClient::new(&net);

    let query = Query {
        ranking: Some(
            parse_ranking(r#"list((body-of-text "databases") (body-of-text "distributed"))"#)
                .unwrap(),
        ),
        ..Query::default()
    };

    // Fan out manually and collect per-source results + metadata.
    let mut inputs = Vec::new();
    for id in ["acme", "bolt", "okapi"] {
        let metadata = client
            .fetch_metadata(&format!("starts://{id}/metadata"))
            .unwrap();
        let results = client
            .query(&format!("starts://{id}/query"), &query)
            .unwrap();
        println!(
            "{:<6} ranking algorithm {:<9} score range {:>6} .. {:<9} top raw score {:.3}",
            metadata.source_id,
            metadata.ranking_algorithm_id,
            metadata.score_range.0,
            if metadata.score_range.1.is_finite() {
                format!("{}", metadata.score_range.1)
            } else {
                "inf".to_string()
            },
            results
                .documents
                .first()
                .and_then(|d| d.raw_score)
                .unwrap_or(0.0)
        );
        inputs.push(SourceResult {
            metadata,
            results,
            source_weight: 1.0,
        });
    }
    println!();

    // Compare merge strategies.
    let collection_sizes = [3u64, 3, 3];
    let tfidf = TfIdfMerge::from_inputs(&inputs, &collection_sizes);
    let strategies: Vec<&dyn Merger> = vec![
        &RawScoreMerge,
        &NormalizedMerge,
        &RoundRobinMerge,
        &TfMerge,
        &tfidf,
    ];
    for merger in strategies {
        let merged = merger.merge(&inputs);
        let top: Vec<String> = merged
            .iter()
            .take(4)
            .map(|d| {
                format!(
                    "{} ({:.2})",
                    d.linkage.trim_start_matches("http://"),
                    d.score
                )
            })
            .collect();
        println!("{:<18} {}", merger.name(), top.join("  >  "));
    }
    println!();
    println!(
        "note how `raw-score` puts Bolt's 1000-scale pages first regardless of content,\n\
         while the TermStats-based strategies rank by actual term occurrences (Example 9)."
    );
}
