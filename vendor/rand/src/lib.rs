//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `rand` to this crate via a path dependency in
//! `[workspace.dependencies]` in the root `Cargo.toml`. It implements the slice of the rand 0.8 surface the
//! workspace uses — [`Rng::gen_range`] over integer and float ranges,
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and the
//! [`rngs::StdRng`]/[`rngs::SmallRng`] generators — on top of
//! xoshiro256++ seeded through SplitMix64. Sequences are deterministic
//! per seed (the workspace's experiments rely on within-process
//! reproducibility, not on bit-compatibility with upstream rand).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }

    /// Sample a value of a supported primitive type uniformly.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    #[doc(hidden)]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    #[doc(hidden)]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array in real rand).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators (`rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding recipe.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                return StdRng::from_u64(0);
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            StdRng::from_u64(state)
        }
    }

    /// A small fast generator; here the same engine as [`StdRng`].
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u32> = (0..8).map(|_| a.gen_range(0..1000u32)).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.gen_range(0..1000u32)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=12i32);
            assert!((1..=12).contains(&y));
            let f = rng.gen_range(0.0..2.5f64);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn uniformity_over_buckets() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
