//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `criterion` to this crate via a path dependency
//! in `[workspace.dependencies]` in the root `Cargo.toml`. It keeps the call shape of criterion 0.5
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `bench_with_input`) but replaces the
//! statistical machinery with a simple calibrated-iteration timer: each
//! benchmark is warmed up, iteration count is chosen to fill a short
//! measurement window, and the best-of-three mean is printed.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter display.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter display.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration of the best measurement round.
    best_ns: f64,
}

impl Bencher {
    /// Time the closure: warm-up, pick an iteration count that fills a
    /// short window, then keep the best of three timed rounds.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-iteration cost estimate.
        let warmup = Instant::now();
        let mut warm_iters: u64 = 0;
        while warmup.elapsed() < Duration::from_millis(30) {
            black_box(f());
            warm_iters += 1;
        }
        let est_ns = (warmup.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);
        // Fill roughly 50ms per round.
        let iters = ((50_000_000.0 / est_ns) as u64).clamp(1, 1_000_000);
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
            best = best.min(per_iter);
        }
        self.best_ns = best;
    }
}

fn run_one(name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { best_ns: f64::NAN };
    f(&mut b);
    if b.best_ns.is_nan() {
        println!("{name:<40} (no measurement)");
    } else if b.best_ns >= 1_000_000.0 {
        println!("{name:<40} {:>12.3} ms/iter", b.best_ns / 1_000_000.0);
    } else if b.best_ns >= 1_000.0 {
        println!("{name:<40} {:>12.3} µs/iter", b.best_ns / 1_000.0);
    } else {
        println!("{name:<40} {:>12.1} ns/iter", b.best_ns);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a closure under this group.
    pub fn bench_function(&mut self, id: impl fmt::Display, f: impl FnOnce(&mut Bencher)) {
        run_one(&format!("{}/{}", self.name, id), f);
    }

    /// Benchmark a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
    }

    /// Finish the group (no-op in the stand-in).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmark a closure.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Define a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
