//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `crossbeam` to this crate via a path dependency
//! in `[workspace.dependencies]` in the root `Cargo.toml`. It provides `crossbeam::thread::scope` with the
//! crossbeam 0.8 call shape (`scope(|s| …)` returning a `Result`, spawn
//! closures receiving a `&Scope` argument), implemented over the
//! standard library's scoped threads.

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    use std::any::Any;

    /// A scope for spawning borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the
        /// scope again (crossbeam's signature) so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
        }
    }

    /// Create a scope in which threads may borrow from the enclosing
    /// stack frame. Unlike crossbeam, a panic in an unjoined thread
    /// propagates when the scope closes instead of being collected into
    /// the returned `Result`; joined threads report panics through
    /// [`ScopedJoinHandle::join`] just as crossbeam does.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_spawn_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let n = crate::thread::scope(|scope| {
            let h = scope.spawn(|inner| inner.spawn(|_| 7).join().unwrap());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }
}
