//! `any::<T>()` — canonical strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical generation strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// The canonical strategy for an [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        loop {
            if let Some(c) = char::from_u32((rng.next_u64() % 0x11_0000) as u32) {
                return c;
            }
        }
    }
}

impl Arbitrary for () {
    fn arbitrary(_rng: &mut TestRng) -> Self {}
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::string::sample_pattern("\\PC{0,16}", rng)
    }
}
