//! The case-running loop and its deterministic RNG.

use std::fmt;

/// A deterministic xoshiro256++ generator driving all strategies.
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed via SplitMix64 expansion.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "TestRng::below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform value in `lo..=hi`.
    pub fn range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was discarded (filter/assume); another will be drawn.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// The outcome of one generated case.
pub enum CaseResult {
    /// Body ran and all assertions held.
    Pass,
    /// Input generation or an assumption rejected the case.
    Reject,
    /// An assertion failed.
    Fail(TestCaseError),
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// FNV-1a, for a stable per-test-name seed.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drive `case` until the configured number of cases pass, panicking on
/// the first failure. Deterministic per test name unless `PROPTEST_SEED`
/// is set.
pub fn run_cases(name: &str, mut case: impl FnMut(&mut TestRng) -> CaseResult) {
    let cases = env_usize("PROPTEST_CASES", 64);
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| hash_name(name));
    let mut rng = TestRng::seeded(seed);
    let mut passed = 0usize;
    let mut rejected = 0usize;
    let reject_cap = cases * 64 + 1024;
    while passed < cases {
        match case(&mut rng) {
            CaseResult::Pass => passed += 1,
            CaseResult::Reject => {
                rejected += 1;
                assert!(
                    rejected <= reject_cap,
                    "proptest '{name}': too many rejected cases \
                     ({rejected} rejects for {passed} passes; seed {seed})"
                );
            }
            CaseResult::Fail(e) => {
                panic!("proptest '{name}' failed at case {passed} (seed {seed}): {e}")
            }
        }
    }
}
