//! Collection strategies (`proptest::collection`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size bound for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generate a `Vec` of values from an element strategy.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`vec()`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let n = rng.range_inclusive(self.size.lo, self.size.hi);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.element.generate(rng)?);
        }
        Some(out)
    }
}
