//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `proptest` to this crate via a path dependency
//! in `[workspace.dependencies]` in the root `Cargo.toml`. It reimplements the slice of the proptest 1.x
//! surface the workspace's property tests use:
//!
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`], [`prop_assume!`] and [`prop_oneof!`] macros;
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_filter`,
//!   `prop_recursive` and `boxed`;
//! * strategies for regex-like string literals (a practical regex
//!   subset: classes, escapes, groups, alternation, quantifiers),
//!   integer/float ranges, tuples, [`strategy::Just`],
//!   [`collection::vec`], [`option::of`] and [`arbitrary::any`].
//!
//! Semantics differ from upstream in one deliberate way: there is **no
//! shrinking**. A failing case reports the test name, the case number
//! and the deterministic seed so the run can be reproduced, but it does
//! not minimize the input. Generation is deterministic per test name,
//! overridable with `PROPTEST_SEED`; case count defaults to 64,
//! overridable with `PROPTEST_CASES`.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Run a block of property tests. Each function inside becomes a
/// `#[test]` that generates inputs from the given strategies and runs
/// the body for a number of cases.
#[macro_export]
macro_rules! proptest {
    ($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(stringify!($name), |__rng| {
                $(
                    let $pat = match $crate::strategy::Strategy::generate(&($strat), __rng) {
                        ::core::option::Option::Some(v) => v,
                        ::core::option::Option::None => {
                            return $crate::test_runner::CaseResult::Reject;
                        }
                    };
                )+
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || { $body ::core::result::Result::Ok(()) })();
                match __outcome {
                    ::core::result::Result::Ok(()) => $crate::test_runner::CaseResult::Pass,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) =>
                        $crate::test_runner::CaseResult::Reject,
                    ::core::result::Result::Err(e) => $crate::test_runner::CaseResult::Fail(e),
                }
            });
        }
        $crate::proptest! { $($rest)* }
    };
    () => {};
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left), stringify!($right), __l, __r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&($left), &($right)) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!($($fmt)*),
                    ));
                }
            }
        }
    };
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __l
                        ),
                    ));
                }
            }
        }
    };
}

/// Discard the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Choose among strategies (uniformly, or by `weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
