//! A generator for regex-like string patterns.
//!
//! Supports the subset of regex syntax property tests actually use for
//! *generation*: literals, character classes (ranges, negation, a
//! trailing literal `-`), escapes (`\d`, `\w`, `\s`, `\PC`/`\p{..}`,
//! escaped metacharacters), `.`, groups with alternation, and the
//! quantifiers `{n}`, `{m,n}`, `{m,}`, `*`, `+`, `?`. Unbounded
//! quantifiers are capped at a small maximum so outputs stay short.

use crate::test_runner::TestRng;

const UNBOUNDED_MAX: u32 = 8;

#[derive(Debug, Clone)]
enum Node {
    Lit(char),
    /// A class: included ranges; `negated` samples the complement
    /// within printable ASCII.
    Class {
        ranges: Vec<(char, char)>,
        negated: bool,
    },
    /// `.`, `\PC`, `\p{..}`: any printable (non-control) character,
    /// including non-ASCII.
    AnyPrintable,
    /// Alternation of sequences, from a `( … | … )` group.
    Group(Vec<Vec<Node>>),
    Repeat(Box<Node>, u32, u32),
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser {
            chars: pattern.chars().peekable(),
            pattern,
        }
    }

    fn fail(&self, what: &str) -> ! {
        panic!("unsupported pattern {:?}: {what}", self.pattern)
    }

    fn parse_alternation(&mut self, in_group: bool) -> Vec<Vec<Node>> {
        let mut branches = vec![Vec::new()];
        loop {
            match self.chars.peek().copied() {
                None => {
                    if in_group {
                        self.fail("unterminated group");
                    }
                    break;
                }
                Some(')') if in_group => break,
                Some('|') => {
                    self.chars.next();
                    branches.push(Vec::new());
                }
                Some(_) => {
                    let node = self.parse_atom();
                    let node = self.maybe_quantify(node);
                    branches.last_mut().unwrap().push(node);
                }
            }
        }
        branches
    }

    fn parse_atom(&mut self) -> Node {
        match self.chars.next().unwrap() {
            '(' => {
                let branches = self.parse_alternation(true);
                match self.chars.next() {
                    Some(')') => Node::Group(branches),
                    _ => self.fail("unterminated group"),
                }
            }
            '[' => self.parse_class(),
            '\\' => self.parse_escape(),
            '.' => Node::AnyPrintable,
            c @ ('*' | '+' | '?' | '{' | ')') => {
                self.fail(&format!("dangling metacharacter {c:?}"))
            }
            c => Node::Lit(c),
        }
    }

    fn parse_escape(&mut self) -> Node {
        let Some(c) = self.chars.next() else {
            self.fail("trailing backslash")
        };
        match c {
            'd' => Node::Class {
                ranges: vec![('0', '9')],
                negated: false,
            },
            'w' => Node::Class {
                ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
                negated: false,
            },
            's' => Node::Class {
                ranges: vec![(' ', ' '), ('\t', '\t')],
                negated: false,
            },
            'n' => Node::Lit('\n'),
            't' => Node::Lit('\t'),
            'r' => Node::Lit('\r'),
            // Unicode category escapes: `\PC` ("not control") and any
            // `\p{..}`/`\P{..}` map to printable characters.
            'p' | 'P' => {
                match self.chars.peek() {
                    Some('{') => {
                        for c in self.chars.by_ref() {
                            if c == '}' {
                                break;
                            }
                        }
                    }
                    Some(_) => {
                        self.chars.next();
                    }
                    None => self.fail("trailing \\p"),
                }
                Node::AnyPrintable
            }
            c => Node::Lit(c),
        }
    }

    fn parse_class(&mut self) -> Node {
        let negated = matches!(self.chars.peek(), Some('^'));
        if negated {
            self.chars.next();
        }
        let mut ranges: Vec<(char, char)> = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            match self.chars.next() {
                None => self.fail("unterminated class"),
                Some(']') => {
                    if let Some(p) = prev {
                        ranges.push((p, p));
                    }
                    break;
                }
                Some('-') => {
                    // Range if between two chars; literal at the edges.
                    let lo = match prev.take() {
                        Some(lo) => lo,
                        None => {
                            prev = Some('-');
                            continue;
                        }
                    };
                    match self.chars.peek().copied() {
                        Some(']') | None => {
                            ranges.push((lo, lo));
                            prev = Some('-');
                        }
                        Some(hi) => {
                            self.chars.next();
                            let hi = if hi == '\\' {
                                match self.parse_escape() {
                                    Node::Lit(c) => c,
                                    _ => self.fail("class range on a char class"),
                                }
                            } else {
                                hi
                            };
                            if lo > hi {
                                self.fail(&format!("inverted class range {lo:?}-{hi:?}"));
                            }
                            ranges.push((lo, hi));
                        }
                    }
                }
                Some('\\') => {
                    if let Some(p) = prev.take() {
                        ranges.push((p, p));
                    }
                    match self.parse_escape() {
                        Node::Lit(c) => prev = Some(c),
                        Node::Class {
                            ranges: mut sub, ..
                        } => ranges.append(&mut sub),
                        _ => {}
                    }
                }
                Some(c) => {
                    if let Some(p) = prev.replace(c) {
                        ranges.push((p, p));
                    }
                }
            }
        }
        if ranges.is_empty() {
            self.fail("empty character class");
        }
        Node::Class { ranges, negated }
    }

    fn maybe_quantify(&mut self, node: Node) -> Node {
        let (lo, hi) = match self.chars.peek().copied() {
            Some('*') => (0, UNBOUNDED_MAX),
            Some('+') => (1, UNBOUNDED_MAX),
            Some('?') => (0, 1),
            Some('{') => {
                self.chars.next();
                let (lo, hi) = self.parse_counts();
                return Node::Repeat(Box::new(node), lo, hi);
            }
            _ => return node,
        };
        self.chars.next();
        Node::Repeat(Box::new(node), lo, hi)
    }

    fn parse_counts(&mut self) -> (u32, u32) {
        let mut lo: u32 = 0;
        let mut hi: Option<u32> = None;
        let mut saw_comma = false;
        loop {
            match self.chars.next() {
                Some(c) if c.is_ascii_digit() => {
                    let d = c as u32 - '0' as u32;
                    if saw_comma {
                        hi = Some(hi.unwrap_or(0) * 10 + d);
                    } else {
                        lo = lo * 10 + d;
                    }
                }
                Some(',') => saw_comma = true,
                Some('}') => break,
                _ => self.fail("malformed counted repetition"),
            }
        }
        let hi = match (saw_comma, hi) {
            (false, _) => lo,
            (true, Some(h)) => h,
            (true, None) => lo + UNBOUNDED_MAX,
        };
        assert!(lo <= hi, "inverted repetition bounds {lo},{hi}");
        (lo, hi)
    }
}

/// Sample a printable (never control) character, mostly ASCII with a
/// tail of accented Latin, Greek, CJK and astral-plane characters so
/// Unicode handling gets exercised.
fn printable_char(rng: &mut TestRng) -> char {
    let bucket = rng.below(100);
    let (lo, hi) = match bucket {
        0..=69 => (0x20u32, 0x7Eu32), // ASCII printable
        70..=84 => (0x00C0, 0x024F),  // accented Latin
        85..=92 => (0x0391, 0x03C9),  // Greek
        93..=97 => (0x4E00, 0x4EFF),  // CJK
        _ => (0x1F600, 0x1F64F),      // emoji (astral)
    };
    loop {
        let cp = lo + rng.below((hi - lo + 1) as usize) as u32;
        if let Some(c) = char::from_u32(cp) {
            if !c.is_control() {
                return c;
            }
        }
    }
}

fn sample_class(ranges: &[(char, char)], negated: bool, rng: &mut TestRng) -> char {
    if negated {
        // Complement within printable ASCII.
        for _ in 0..200 {
            let c = (0x20 + rng.below(0x5F) as u32) as u8 as char;
            if !ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi) {
                return c;
            }
        }
        panic!("negated class covers all of printable ASCII");
    }
    let total: u32 = ranges
        .iter()
        .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
        .sum();
    let mut pick = rng.below(total as usize) as u32;
    for &(lo, hi) in ranges {
        let span = hi as u32 - lo as u32 + 1;
        if pick < span {
            // Skip unassigned gaps by clamping to a valid scalar.
            return char::from_u32(lo as u32 + pick).unwrap_or(lo);
        }
        pick -= span;
    }
    ranges[0].0
}

fn sample_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Class { ranges, negated } => out.push(sample_class(ranges, *negated, rng)),
        Node::AnyPrintable => out.push(printable_char(rng)),
        Node::Group(branches) => {
            let branch = &branches[rng.below(branches.len())];
            for n in branch {
                sample_node(n, rng, out);
            }
        }
        Node::Repeat(inner, lo, hi) => {
            let n = rng.range_inclusive(*lo as usize, *hi as usize);
            for _ in 0..n {
                sample_node(inner, rng, out);
            }
        }
    }
}

/// Generate one string matching `pattern`.
pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut parser = Parser::new(pattern);
    let branches = parser.parse_alternation(false);
    let mut out = String::new();
    let branch = &branches[rng.below(branches.len())];
    for node in branch {
        sample_node(node, rng, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::sample_pattern;
    use crate::test_runner::TestRng;

    fn samples(pattern: &str, n: usize) -> Vec<String> {
        let mut rng = TestRng::seeded(42);
        (0..n).map(|_| sample_pattern(pattern, &mut rng)).collect()
    }

    #[test]
    fn classes_and_counts() {
        for s in samples("[a-z][a-z0-9]{0,11}", 200) {
            assert!((1..=12).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let all: String = samples("[A-Za-z0-9-]{1,4}", 300).concat();
        assert!(all.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'));
        assert!(all.contains('-'), "dash never sampled");
    }

    #[test]
    fn space_to_tilde_range() {
        for s in samples("[ -~]{0,80}", 100) {
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn printable_unicode_never_control() {
        let all: String = samples("\\PC{0,32}", 200).concat();
        assert!(all.chars().all(|c| !c.is_control()));
        assert!(!all.is_ascii(), "no unicode sampled");
    }

    #[test]
    fn alternation_and_groups() {
        for s in samples("(ab|cd)+", 100) {
            assert!(!s.is_empty());
            assert!(s.len() % 2 == 0);
            for chunk in s.as_bytes().chunks(2) {
                assert!(chunk == b"ab" || chunk == b"cd", "{s:?}");
            }
        }
    }

    #[test]
    fn negated_class() {
        for s in samples("[^a-z]{1,10}", 100) {
            assert!(s.chars().all(|c| !c.is_ascii_lowercase()), "{s:?}");
        }
    }
}
