//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// `generate` returns `None` when the draw is rejected (a filter did
/// not hold); the runner then discards the whole case and draws again.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying a predicate.
    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            _reason: reason.into(),
            f,
        }
    }

    /// Build recursive structures: `recurse` receives the strategy for
    /// the previous depth and returns a strategy for one level deeper.
    /// The result mixes all depths up to `depth`.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth.max(1) {
            let deeper = recurse(strat.clone()).boxed();
            strat = Union::new_weighted(vec![(1, strat), (2, deeper)]).boxed();
        }
        strat
    }

    /// Type-erase the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.0.generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// The result of [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    _reason: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // A few local retries before rejecting the whole case.
        for _ in 0..16 {
            if let Some(v) = self.inner.generate(rng) {
                if (self.f)(&v) {
                    return Some(v);
                }
            }
        }
        None
    }
}

/// Weighted choice among strategies (the engine behind `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    /// Uniform choice.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Union::new_weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Weighted choice.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w).sum::<u32>().max(1);
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        let mut pick = rng.below(self.total as usize) as u32;
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        self.arms.last().and_then(|(_, arm)| arm.generate(rng))
    }
}

/// Regex-like string literals are strategies (`"[a-z]{1,8}"`).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> Option<String> {
        Some(crate::string::sample_pattern(self, rng))
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                Some((self.start as i128 + offset as i128) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                Some((lo as i128 + offset as i128) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                Some(self.start + (rng.unit_f64() as $t) * (self.end - self.start))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                Some(lo + (rng.unit_f64() as $t) * (hi - lo))
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
