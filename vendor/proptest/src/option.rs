//! Option strategies (`proptest::option`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generate `Option<T>` from a strategy for `T` (`None` about a quarter
/// of the time).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// The result of [`of`].
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<Option<S::Value>> {
        if rng.below(4) == 0 {
            Some(None)
        } else {
            self.inner.generate(rng).map(Some)
        }
    }
}
