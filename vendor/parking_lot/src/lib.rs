//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `parking_lot` to this crate via a path dependency
//! in `[workspace.dependencies]` in the root `Cargo.toml`. It exposes the subset of the real API the
//! workspace uses — `Mutex` and `RwLock` with panic-free, non-poisoning
//! guards — implemented over `std::sync`. A poisoned std lock (a panic
//! while holding the guard) is recovered transparently, matching
//! parking_lot's "no poisoning" contract.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock with parking_lot's non-poisoning interface.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock with parking_lot's non-poisoning interface.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
